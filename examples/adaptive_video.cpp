// QoS adaptation (paper §3, "QoS adaptation"): a video-ish streaming
// client whose Compression agreement degrades and recovers as server
// resources change, with no application-code involvement.
//
//   server: capacity drop -> shed_overload -> violation push
//   client: AdaptationManager policy halves the level -> renegotiate
#include <iostream>

#include "characteristics/compression.hpp"
#include "core/adaptation.hpp"
#include "net/network.hpp"
#include "support/qos_echo_example.hpp"

using namespace maqs;

int main() {
  sim::EventLoop loop;
  net::Network network(loop);
  orb::Orb server(network, "media-server", 8554);
  orb::Orb player(network, "player", 6000);
  core::QosTransport server_transport(server);
  core::QosTransport player_transport(player);

  core::ProviderRegistry providers;
  providers.add(characteristics::make_compression_provider());
  core::ResourceManager resources;
  resources.declare("cpu", 200.0);
  resources.declare("bandwidth", 1000.0);
  core::NegotiationService negotiation(server_transport, providers,
                                       resources);
  core::Negotiator negotiator(player_transport, providers);
  core::AdaptationManager adaptation(player_transport, negotiator);

  // Server sheds overload whenever capacity changes.
  resources.subscribe([&](const std::string& resource, double, double) {
    negotiation.shed_overload(resource);
  });

  auto servant = std::make_shared<examples::TelemetryImpl>();
  servant->archive.assign(50'000, 0x42);  // "video" frames
  orb::QosProfile profile;
  profile.characteristic = characteristics::compression_name();
  orb::ObjRef ref =
      server.adapter().activate("stream-1", servant, {profile});
  examples::TelemetryStub stream(player, ref);

  core::Agreement agreement = negotiator.negotiate(
      stream, characteristics::compression_name(),
      {{"level", cdr::Any::from_long(128)}});
  std::cout << "player: streaming at quality level "
            << agreement.int_param("level") << "\n";

  // Adaptation policy: halve the quality level; below 1, give up.
  adaptation.manage(
      stream, agreement,
      [](const core::Agreement& current, const std::string& reason)
          -> std::optional<std::map<std::string, cdr::Any>> {
        const std::int64_t level = current.int_param("level");
        std::cout << "player: violation (" << reason << ") at level "
                  << level << "\n";
        if (level <= 1) return std::nullopt;
        return std::map<std::string, cdr::Any>{
            {"level", cdr::Any::from_long(
                          static_cast<std::int32_t>(level / 2))}};
      });

  // The server gets progressively busier.
  for (double capacity : {100.0, 40.0, 20.0}) {
    resources.set_capacity("cpu", capacity);
    loop.run_until_idle();
    const core::Agreement* current =
        adaptation.managed_agreement(agreement.id);
    std::cout << "server: capacity now " << capacity
              << "; player adapted to level "
              << (current ? current->int_param("level") : -1) << "\n";
    // Traffic keeps flowing at the degraded level.
    stream.fetch_archive();
  }
  std::cout << "player: total adaptations: " << adaptation.adaptations()
            << "\n";

  // Recovery: capacity returns, the player renegotiates upward manually
  // (upward adaptation is client-initiated; the server only pushes
  // violations).
  resources.set_capacity("cpu", 200.0);
  const core::Agreement* current = adaptation.managed_agreement(agreement.id);
  core::Agreement upgraded = negotiator.renegotiate(
      stream, *current, {{"level", cdr::Any::from_long(128)}});
  std::cout << "player: capacity recovered, renegotiated up to level "
            << upgraded.int_param("level") << "\n";
  return adaptation.adaptations() == 3 ? 0 : 1;
}

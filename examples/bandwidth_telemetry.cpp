// Telemetry over a narrow link: Compression + Actuality stacked on one
// stub (multi-category QoS, the paper's core motivation).
//
// A field gateway polls a sensor archive over a 64 kbit/s uplink. The
// operator negotiates two characteristics on the same interface:
//   - Compression (bandwidth category) shrinks the bulk transfers,
//   - Actuality (actuality category) serves repeat reads from cache as
//     long as they are younger than the freshness bound.
// The example prints the virtual-time cost of each stage.
#include <iostream>

#include "characteristics/actuality.hpp"
#include "characteristics/compression.hpp"
#include "core/negotiation.hpp"
#include "core/stats.hpp"
#include "net/network.hpp"
#include "support/qos_echo_example.hpp"
#include "trace/trace.hpp"

using namespace maqs;

namespace {

util::Bytes sensor_archive(std::size_t n) {
  util::Bytes data;
  int frame = 0;
  while (data.size() < n) {
    const std::string record = "frame=" + std::to_string(frame++) +
                               " temp=21.5 rh=40.2 pm10=12 status=OK;";
    for (char c : record) data.push_back(static_cast<std::uint8_t>(c));
  }
  data.resize(n);
  return data;
}

}  // namespace

int main() {
  sim::EventLoop loop;
  net::Network network(loop);
  // The narrow uplink: 64 kbit/s, 40 ms one way.
  network.set_default_link(net::LinkParams{
      .latency = 40 * sim::kMillisecond, .bandwidth_bps = 64'000.0});

  orb::Orb sensor(network, "sensor", 9000);
  orb::Orb gateway(network, "gateway", 9001);
  // One recorder shared by both ends: client and server spans of each
  // request land in the same ring, joined by the propagated context.
  trace::TraceRecorder recorder(loop);
  recorder.set_enabled(true);
  sensor.set_trace_recorder(&recorder);
  gateway.set_trace_recorder(&recorder);
  // Bulk transfers over 64 kbit/s take seconds; raise the RPC timeout.
  gateway.set_default_timeout(120 * sim::kSecond);
  core::QosTransport sensor_transport(sensor);
  core::QosTransport gateway_transport(gateway);

  core::ProviderRegistry providers;
  providers.add(characteristics::make_compression_provider());
  providers.add(characteristics::make_actuality_provider());
  core::ResourceManager resources;
  resources.declare("cpu", 1000.0);
  resources.declare("bandwidth", 1000.0);
  core::NegotiationService negotiation(sensor_transport, providers,
                                       resources);
  core::Negotiator negotiator(gateway_transport, providers);

  auto servant = std::make_shared<examples::TelemetryImpl>();
  servant->archive = sensor_archive(60'000);
  orb::QosProfile compression_profile;
  compression_profile.characteristic = characteristics::compression_name();
  orb::QosProfile actuality_profile;
  actuality_profile.characteristic = characteristics::actuality_name();
  orb::ObjRef ref = sensor.adapter().activate(
      "telemetry", servant, {compression_profile, actuality_profile});

  examples::TelemetryStub stub(gateway, ref);

  // --- stage 1: plain fetch ---
  sim::TimePoint t0 = loop.now();
  stub.fetch_archive();
  std::cout << "plain fetch:        " << sim::to_millis(loop.now() - t0)
            << " ms over the 64 kbit/s link\n";

  // --- stage 2: negotiate actuality (caching) ---
  // Aspect ordering matters: mediators weave in negotiation order, and
  // payload-transforming characteristics (Compression) must sit *outside*
  // caching ones so the cache sees plaintext. Hence Actuality first.
  negotiator.negotiate(
      stub, characteristics::actuality_name(),
      {{"max_age_ms", cdr::Any::from_long(30000)},
       {"cacheable_ops", cdr::Any::from_string("fetch_archive,reading")}});
  stub.fetch_archive();  // fills the cache
  t0 = loop.now();
  for (int i = 0; i < 25; ++i) stub.fetch_archive();
  std::cout << "25 cached fetches:  " << sim::to_millis(loop.now() - t0)
            << " ms (Actuality cache, zero wire traffic)\n";

  // --- stage 3: stack compression on top for the cache misses ---
  negotiator.negotiate(stub, characteristics::compression_name(),
                       {{"level", cdr::Any::from_long(64)}});
  t0 = loop.now();
  stub.fetch_archive();  // renegotiation cleared nothing; entry is fresh
  std::cout << "fetch w/ both QoS:  " << sim::to_millis(loop.now() - t0)
            << " ms (still served from cache)\n";

  // --- freshness bound honoured; refetch is now compressed ---
  loop.run_for(40 * sim::kSecond);  // cache entry ages out
  recorder.clear();  // keep only the refetch in the dump below
  t0 = loop.now();
  stub.fetch_archive();
  std::cout << "stale refetch:      " << sim::to_millis(loop.now() - t0)
            << " ms (bound exceeded; went to the wire, compressed)\n";

  const auto composite =
      std::dynamic_pointer_cast<core::CompositeMediator>(stub.mediator());
  std::cout << "mediator chain length on the stub: " << composite->size()
            << " (Compression + Actuality woven together)\n";

  // The unified counter view: one snapshot gathers the gateway ORB's
  // dispatch counters, its transport's routing decisions, the shared
  // network's byte counts and the recorder's sampling totals.
  std::cout << "\n--- gateway stats snapshot ---\n"
            << core::collect_stats(gateway, &gateway_transport).to_string();

  // Where did the stale refetch spend its time? The last trace in the
  // ring shows the woven path stage by stage.
  std::cout << "\n--- last trace (stale refetch) ---\n";
  recorder.dump_tree(std::cout);
  return 0;
}

// F2 — Fig. 2: cost of the QIDL weaving machinery.
//
// Measures the wall-clock CPU overhead each weaving ingredient adds to a
// request on the collocated fast path (loopback, zero virtual latency),
// so the figures isolate mediation cost from network cost:
//   - plain stub -> plain skeleton (baseline)
//   - + empty mediator delegate (client weaving)
//   - + QoS skeleton with empty impl (prolog/epilog + stream lift-out)
//   - + N assigned characteristics (QoS-op table pressure)
//   - NotNegotiated raising for a non-negotiated QoS op
// Expected shape: each delegate adds a small constant; the weaving is
// cheap relative to marshaling + transport, which is the paper's implicit
// claim when it advocates mediator indirection.
#include <benchmark/benchmark.h>

#include "bench/support.hpp"
#include "core/mediator.hpp"
#include "core/qos_skeleton.hpp"

using namespace maqs;
using namespace maqs::bench;

namespace {

core::CharacteristicDescriptor fake_characteristic(int i) {
  return core::CharacteristicDescriptor(
      "C" + std::to_string(i), core::QosCategory::kOther, {},
      {core::QosOpDesc{"qos_op_" + std::to_string(i),
                       core::QosOpKind::kMechanism}});
}

class EmptyMediator : public core::Mediator {
 public:
  EmptyMediator() : core::Mediator("C0") {}
};

class EmptyImpl : public core::QosImpl {
 public:
  EmptyImpl() : core::QosImpl("C0") {}
};

struct Fixture {
  World world;
  std::shared_ptr<maqs::testing::EchoImpl> plain_impl;
  std::shared_ptr<maqs::testing::QosEchoImpl> qos_impl;
  orb::ObjRef plain_ref;
  orb::ObjRef qos_ref;

  explicit Fixture(int assigned_characteristics = 1) {
    world.set_link(0 /*infinite*/, 0);
    world.network.set_loopback_latency(0);
    plain_impl = std::make_shared<maqs::testing::EchoImpl>();
    plain_ref = world.server.adapter().activate("plain", plain_impl);
    qos_impl = std::make_shared<maqs::testing::QosEchoImpl>();
    for (int i = 0; i < assigned_characteristics; ++i) {
      qos_impl->assign_characteristic(fake_characteristic(i));
    }
    qos_ref = world.server.adapter().activate("qos", qos_impl);
  }
};

void BM_PlainStubCall(benchmark::State& state) {
  Fixture fixture;
  maqs::testing::EchoStub stub(fixture.world.client, fixture.plain_ref);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stub.add(1, 2));
  }
}
BENCHMARK(BM_PlainStubCall);

void BM_StubWithEmptyMediator(benchmark::State& state) {
  Fixture fixture;
  maqs::testing::EchoStub stub(fixture.world.client, fixture.plain_ref);
  auto composite = std::make_shared<core::CompositeMediator>();
  composite->add(std::make_shared<EmptyMediator>());
  stub.set_mediator(composite);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stub.add(1, 2));
  }
}
BENCHMARK(BM_StubWithEmptyMediator);

void BM_QosSkeletonNoImpl(benchmark::State& state) {
  Fixture fixture;
  maqs::testing::EchoStub stub(fixture.world.client, fixture.qos_ref);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stub.add(1, 2));
  }
}
BENCHMARK(BM_QosSkeletonNoImpl);

void BM_QosSkeletonEmptyImpl(benchmark::State& state) {
  Fixture fixture;
  fixture.qos_impl->set_active_impl(std::make_shared<EmptyImpl>());
  maqs::testing::EchoStub stub(fixture.world.client, fixture.qos_ref);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stub.add(1, 2));
  }
}
BENCHMARK(BM_QosSkeletonEmptyImpl);

void BM_FullWeavingBothSides(benchmark::State& state) {
  Fixture fixture;
  fixture.qos_impl->set_active_impl(std::make_shared<EmptyImpl>());
  maqs::testing::EchoStub stub(fixture.world.client, fixture.qos_ref);
  auto composite = std::make_shared<core::CompositeMediator>();
  composite->add(std::make_shared<EmptyMediator>());
  stub.set_mediator(composite);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stub.add(1, 2));
  }
}
BENCHMARK(BM_FullWeavingBothSides);

/// More assigned characteristics = larger QoS-op table on the skeleton.
void BM_AssignedCharacteristics(benchmark::State& state) {
  Fixture fixture(static_cast<int>(state.range(0)));
  maqs::testing::EchoStub stub(fixture.world.client, fixture.qos_ref);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stub.add(1, 2));
  }
}
BENCHMARK(BM_AssignedCharacteristics)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Fig. 2's exception path: QoS op of a non-negotiated characteristic.
void BM_NotNegotiatedRaise(benchmark::State& state) {
  Fixture fixture;
  for (auto _ : state) {
    orb::RequestMessage req;
    req.object_key = "qos";
    req.operation = "qos_op_0";
    orb::ReplyMessage rep = fixture.world.client.invoke_plain(
        fixture.world.server.endpoint(), std::move(req));
    benchmark::DoNotOptimize(rep.status);
  }
}
BENCHMARK(BM_NotNegotiatedRaise);

/// Marshaling-heavy call for scale: weaving cost vs payload cost.
void BM_PayloadCall(benchmark::State& state) {
  Fixture fixture;
  fixture.qos_impl->set_active_impl(std::make_shared<EmptyImpl>());
  maqs::testing::EchoStub stub(fixture.world.client, fixture.qos_ref);
  const util::Bytes data = payload(static_cast<std::size_t>(state.range(0)),
                                   0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stub.blob(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PayloadCall)->Arg(64)->Arg(4096)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();

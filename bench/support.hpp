// Shared scaffolding for the MAQS benchmarks: a canned two-host world,
// payload generators, and small table-printing helpers. Each bench binary
// regenerates one experiment from DESIGN.md §4 and prints its rows.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/adaptation.hpp"
#include "core/negotiation.hpp"
#include "net/network.hpp"
#include "support/qos_echo.hpp"
#include "util/rng.hpp"

namespace maqs::bench {

/// Client + server ORB pair with transports on a configurable link.
struct World {
  sim::EventLoop loop;
  net::Network network{loop};
  orb::Orb server{network, "server", 9000};
  orb::Orb client{network, "client", 9001};
  core::QosTransport server_transport{server};
  core::QosTransport client_transport{client};
  core::ResourceManager resources;

  World() {
    resources.declare("cpu", 1e9);
    resources.declare("bandwidth", 1e9);
  }

  void set_link(double bandwidth_bps, sim::Duration latency) {
    network.set_default_link(
        net::LinkParams{.latency = latency, .bandwidth_bps = bandwidth_bps});
    network.set_link("client", "server",
                     net::LinkParams{.latency = latency,
                                     .bandwidth_bps = bandwidth_bps});
  }
};

/// Text payload with tunable redundancy: `compressibility` in [0,1] is the
/// fraction of repeated-phrase content (rest is random noise).
inline util::Bytes payload(std::size_t size, double compressibility,
                           std::uint64_t seed = 7) {
  util::Rng rng(seed);
  const std::string phrase = "quality-of-service middleware frame ";
  util::Bytes out;
  out.reserve(size);
  while (out.size() < size) {
    if (rng.next_double() < compressibility) {
      // Bulk-append the phrase (clipped to the remaining space) instead of
      // pushing byte by byte.
      const std::size_t n = std::min(phrase.size(), size - out.size());
      out.insert(out.end(), phrase.begin(), phrase.begin() + n);
    } else {
      // One RNG draw yields 8 noise bytes at a time.
      const std::uint64_t word = rng.next();
      const auto* bytes = reinterpret_cast<const std::uint8_t*>(&word);
      const std::size_t n = std::min(sizeof(word), size - out.size());
      out.insert(out.end(), bytes, bytes + n);
    }
  }
  return out;
}

inline void header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void row_rule() {
  std::printf("%s\n", std::string(72, '-').c_str());
}

}  // namespace maqs::bench

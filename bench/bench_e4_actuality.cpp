// E4 — actuality of data (paper §6).
//
// A server value changes every 50 ms; a client reads it at 200 Hz for 10
// virtual seconds under different negotiated freshness bounds. Reports:
//   wire requests saved (cache hit rate),
//   observed staleness (mean / max, from server timestamps),
//   read error rate (reads that returned an outdated value).
// Expected shape: a classic freshness/traffic trade-off — larger bounds
// save traffic linearly but raise staleness up to the bound; the bound
// is always honoured (max staleness <= negotiated max_age).
#include "bench/support.hpp"
#include "characteristics/actuality.hpp"
#include "core/negotiation.hpp"

using namespace maqs;
using namespace maqs::bench;

namespace {

/// Telemetry-ish servant whose value ticks on a schedule.
class TickingValue : public core::QosServantBase {
 public:
  TickingValue() {
    assign_characteristic(characteristics::actuality_descriptor());
  }
  const std::string& repo_id() const override {
    static const std::string kId = "IDL:bench/Ticking:1.0";
    return kId;
  }
  std::int32_t value = 0;

 protected:
  void dispatch_app(const std::string& operation, cdr::Decoder& args,
                    cdr::Encoder& out, orb::ServerContext&) override {
    if (operation == "value") {
      args.expect_end();
      out.write_i32(value);
      return;
    }
    throw orb::BadOperation("Ticking: unknown operation " + operation);
  }
};

class TickingStub : public orb::StubBase {
 public:
  using orb::StubBase::StubBase;
  std::int32_t value() const {
    cdr::Decoder result(invoke_operation("value", {}));
    const std::int32_t out = result.read_i32();
    result.expect_end();
    return out;
  }
};

}  // namespace

int main() {
  header("E4: actuality — freshness bound vs traffic and staleness");
  std::printf(
      "server updates every 50 ms; client reads at 200 Hz for 10 s\n");
  std::printf("%11s | %9s %11s %12s %12s\n", "max_age ms", "hit rate",
              "saved reqs", "stale reads", "max stale ms");
  row_rule();

  for (std::int32_t max_age_ms : {0, 10, 25, 50, 100, 250, 1000}) {
    World world;
    world.set_link(10e6, 2 * sim::kMillisecond);
    core::ProviderRegistry providers;
    providers.add(characteristics::make_actuality_provider());
    core::NegotiationService negotiation(world.server_transport, providers,
                                         world.resources);
    core::Negotiator negotiator(world.client_transport, providers);
    auto servant = std::make_shared<TickingValue>();
    orb::QosProfile profile;
    profile.characteristic = characteristics::actuality_name();
    auto ref = world.server.adapter().activate("tick", servant, {profile});
    TickingStub stub(world.client, ref);
    negotiator.negotiate(
        stub, characteristics::actuality_name(),
        {{"max_age_ms", cdr::Any::from_long(max_age_ms)},
         {"cacheable_ops", cdr::Any::from_string("value")}});
    auto composite =
        std::dynamic_pointer_cast<core::CompositeMediator>(stub.mediator());
    auto mediator = std::dynamic_pointer_cast<
        characteristics::ActualityMediator>(
        composite->find(characteristics::actuality_name()));

    // Server update schedule.
    std::function<void()> tick = [&] {
      ++servant->value;
      world.loop.schedule(50 * sim::kMillisecond, tick);
    };
    world.loop.schedule(50 * sim::kMillisecond, tick);

    const int kReads = 2000;  // 200 Hz x 10 s
    int stale_reads = 0;
    double max_staleness_ms = 0;
    world.network.reset_stats();
    for (int i = 0; i < kReads; ++i) {
      const std::int32_t got = stub.value();
      if (got != servant->value) ++stale_reads;
      max_staleness_ms =
          std::max(max_staleness_ms,
                   sim::to_millis(mediator->last_staleness()));
      world.loop.run_for(5 * sim::kMillisecond);
    }
    const double hit_rate =
        static_cast<double>(mediator->cache_hits()) / kReads;
    std::printf("%11d | %8.1f%% %11llu %12d %12.1f\n", max_age_ms,
                100 * hit_rate,
                static_cast<unsigned long long>(mediator->cache_hits()),
                stale_reads, max_staleness_ms);
    if (max_staleness_ms > static_cast<double>(max_age_ms) + 1e-9) {
      std::printf("BOUND VIOLATION!\n");
      return 1;
    }
  }
  std::printf(
      "\nshape check: traffic saved grows with the bound, staleness stays\n"
      "below it — the negotiated level is enforced (paper Sec. 3: QoS\n"
      "adaptation needs monitorable, bounded characteristics).\n");
  return 0;
}

// E3 — compression for channels with small bandwidth (paper §6).
//
// Sweeps link bandwidth and payload compressibility; reports virtual
// transfer time with and without the Compression characteristic, plus
// the measured wall-clock codec cost (the CPU price the simulator does
// not charge in virtual time) and the resulting effective crossover.
// Expected shape: on narrow links compression wins by ~the compression
// ratio; as bandwidth grows the codec CPU cost dominates and the benefit
// crosses over — exactly why the paper treats compression as a
// *negotiated* characteristic rather than an always-on transform.
#include <chrono>

#include "bench/support.hpp"
#include "characteristics/compression.hpp"
#include "compress/lz77.hpp"

using namespace maqs;
using namespace maqs::bench;

namespace {

double measure_codec_ms(const util::Bytes& data) {
  compress::Lz77Codec codec;
  const auto t0 = std::chrono::steady_clock::now();
  int reps = 0;
  util::Bytes out;
  do {
    out = codec.compress(data);
    ++reps;
  } while (std::chrono::steady_clock::now() - t0 <
           std::chrono::milliseconds(20));
  const double total_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  return total_ms / reps;
}

double transfer_ms(double bandwidth_bps, const util::Bytes& data,
                   bool compressed) {
  World world;
  world.set_link(bandwidth_bps, 10 * sim::kMillisecond);
  world.client.set_default_timeout(3600 * sim::kSecond);
  core::ProviderRegistry providers;
  providers.add(characteristics::make_compression_provider());
  core::NegotiationService negotiation(world.server_transport, providers,
                                       world.resources);
  core::Negotiator negotiator(world.client_transport, providers);
  auto servant = std::make_shared<maqs::testing::QosEchoImpl>();
  servant->assign_characteristic(characteristics::compression_descriptor());
  orb::QosProfile profile;
  profile.characteristic = characteristics::compression_name();
  auto ref = world.server.adapter().activate("echo", servant, {profile});
  maqs::testing::EchoStub stub(world.client, ref);
  if (compressed) {
    negotiator.negotiate(stub, characteristics::compression_name(), {});
  }
  const sim::TimePoint t0 = world.loop.now();
  stub.blob(data);
  return sim::to_millis(world.loop.now() - t0);
}

}  // namespace

int main() {
  const std::size_t kSize = 32 * 1024;

  header("E3a: transfer time vs bandwidth (32 KiB payload, 90% redundant)");
  const util::Bytes data = payload(kSize, 0.9);
  const double codec_ms = 2 * measure_codec_ms(data);  // both directions
  std::printf("measured LZ77 codec cost: %.3f ms per round trip\n\n",
              codec_ms);
  std::printf("%12s | %10s %10s %14s | %s\n", "bandwidth", "plain ms",
              "comp ms", "comp+codec ms", "winner");
  row_rule();
  for (double bw : {32e3, 64e3, 256e3, 1e6, 10e6, 100e6, 1e9}) {
    const double plain = transfer_ms(bw, data, false);
    const double comp = transfer_ms(bw, data, true);
    const double effective = comp + codec_ms;
    std::printf("%9.0f kb | %10.2f %10.2f %14.2f | %s\n", bw / 1000, plain,
                comp, effective,
                effective < plain ? "compression" : "plain");
  }

  header("E3b: transfer time vs compressibility (64 kbit/s link)");
  std::printf("%15s | %10s %10s %8s\n", "compressibility", "plain ms",
              "comp ms", "ratio");
  row_rule();
  for (double c : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const util::Bytes p = payload(kSize, c);
    compress::Lz77Codec codec;
    const double ratio = static_cast<double>(codec.compress(p).size()) /
                         static_cast<double>(p.size());
    const double plain = transfer_ms(64e3, p, false);
    const double comp = transfer_ms(64e3, p, true);
    std::printf("%15.2f | %10.1f %10.1f %8.2f\n", c, plain, comp, ratio);
  }
  std::printf(
      "\nshape check: compression wins by ~1/ratio on narrow links and\n"
      "crosses over once the wire is faster than the codec — hence a\n"
      "negotiable characteristic, not a hardwired transform (paper Sec. 6).\n");
  return 0;
}

// L1 — population-scale latency percentiles under QoS scheduling.
//
// The headline experiment for the paper's resource-dependent QoS claim
// (§2.2): a million simulated clients across three QoS classes hammer a
// paced server fleet (one RequestScheduler per shard). Differentiation is
// the whole point — the gold class must hold its p99 inside its deadline
// budget *because* the scheduler sheds best-effort volume, not despite it.
//
// Unlike F4 this measures *virtual-time* latency: every number is a pure
// function of (config, seed), so BENCH_latency.json is a tracked artifact
// and CI checks same-seed reruns byte-for-byte.
//
//   bench_l1_population [clients] [shards] [seed] [horizon_s] [out.json]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "load/harness.hpp"

int main(int argc, char** argv) {
  using namespace maqs;

  load::PopulationConfig config;
  if (argc > 1) config.clients = static_cast<std::uint32_t>(std::atol(argv[1]));
  if (argc > 2) config.shards = static_cast<std::uint32_t>(std::atoi(argv[2]));
  if (argc > 3) config.seed = static_cast<std::uint64_t>(std::atoll(argv[3]));
  if (argc > 4) config.horizon = std::atol(argv[4]) * sim::kSecond;
  const std::string json_path = argc > 5 ? argv[5] : "BENCH_latency.json";

  std::printf("==== L1: %u clients, %u shards, seed %llu, %llds horizon ====\n",
              config.clients, config.shards,
              static_cast<unsigned long long>(config.seed),
              static_cast<long long>(config.horizon / sim::kSecond));

  const load::PopulationResult result = load::run_population(config);

  std::printf("%-12s %10s %10s %10s %9s %9s %9s %10s %7s\n", "class", "sent",
              "ok", "shed", "p50_ms", "p99_ms", "p999_ms", "budget_ms",
              "p99_ok");
  for (const load::ClassOutcome& out : result.classes) {
    sim::Duration budget = 0;
    for (const auto& cls : config.classes) {
      if (cls.name == out.name) budget = cls.deadline_budget;
    }
    std::printf("%-12s %10llu %10llu %10llu %9.1f %9.1f %9.1f %10lld %7s\n",
                out.name.c_str(), static_cast<unsigned long long>(out.sent),
                static_cast<unsigned long long>(out.ok),
                static_cast<unsigned long long>(out.shed),
                static_cast<double>(out.latency.p50()) / 1e6,
                static_cast<double>(out.latency.p99()) / 1e6,
                static_cast<double>(out.latency.p999()) / 1e6,
                static_cast<long long>(budget / sim::kMillisecond),
                out.latency.p99() <= static_cast<std::uint64_t>(budget)
                    ? "yes"
                    : "no");
  }
  std::printf("commands ok/error: %llu/%llu, total shed: %llu, parked: %llu\n",
              static_cast<unsigned long long>(result.commands_ok),
              static_cast<unsigned long long>(result.commands_error),
              static_cast<unsigned long long>(result.sched.total_shed()),
              static_cast<unsigned long long>(result.sched.parked));

  std::ostringstream os;
  load::write_latency_json(config, result, os);
  std::ofstream out(json_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 1;
  }
  out << os.str();
  out.close();
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

// E1 — fault tolerance through replica groups (paper §3.1, §6).
//
// Crash-injection experiment: k replicas serve a client in failover mode
// while nodes crash and recover on a random schedule. Reports per k:
//   availability   = successful requests / total requests
//   failover p99   = worst request latency (crashes surface as timeout +
//                    retry-free first-reply masking)
//   state transfer = virtual cost of re-initializing a joining replica
//                    as a function of state size.
// Expected shape: availability grows steeply with k (k-availability);
// failover latency is bounded by the multicast fan-out, not by timeouts,
// as long as one replica lives.
#include <algorithm>
#include <numeric>

#include "bench/support.hpp"
#include "characteristics/replication.hpp"
#include "support_stock_bench.hpp"

using namespace maqs;
using namespace maqs::bench;

namespace {

struct Result {
  double availability;
  double mean_ms;
  double p99_ms;
};

Result run_with_replicas(int k, double crash_rate, std::uint64_t seed) {
  sim::EventLoop loop;
  net::Network network(loop, seed);
  network.set_default_link(net::LinkParams{
      .latency = 2 * sim::kMillisecond, .bandwidth_bps = 10e6});
  characteristics::register_replication_module();

  orb::Orb client(network, "client", 1);
  client.set_default_timeout(200 * sim::kMillisecond);
  core::QosTransport transport(client);
  characteristics::ReplicaGroup group(network, "grp", "svc");

  std::vector<std::unique_ptr<orb::Orb>> orbs;
  for (int i = 0; i < k; ++i) {
    auto orb = std::make_unique<orb::Orb>(network,
                                          "r" + std::to_string(i), 9);
    auto servant = std::make_shared<maqs::testing::QosEchoImpl>();
    servant->assign_characteristic(characteristics::replication_descriptor());
    group.add_replica(*orb, servant);
    orbs.push_back(std::move(orb));
  }
  transport.load_module(characteristics::replication_module_name())
      .command("configure", {cdr::Any::from_string("grp"),
                             cdr::Any::from_string("failover"),
                             cdr::Any::from_longlong(1)});
  transport.assign("svc", characteristics::replication_module_name());
  maqs::testing::EchoStub stub(client, group.group_reference());

  // Crash/restart schedule: every 50 ms each node flips a biased coin.
  util::Rng rng(seed ^ 0xC4A5);
  std::vector<bool> down(static_cast<std::size_t>(k), false);
  std::function<void()> churn = [&] {
    for (int i = 0; i < k; ++i) {
      const std::string node = "r" + std::to_string(i);
      if (!down[static_cast<std::size_t>(i)] && rng.chance(crash_rate)) {
        network.crash(node);
        down[static_cast<std::size_t>(i)] = true;
      } else if (down[static_cast<std::size_t>(i)] && rng.chance(0.15)) {
        network.restart(node);
        down[static_cast<std::size_t>(i)] = false;
      }
    }
    loop.schedule(50 * sim::kMillisecond, churn);
  };
  loop.schedule(50 * sim::kMillisecond, churn);

  const int kRequests = 300;
  int ok = 0;
  std::vector<double> latencies;
  for (int i = 0; i < kRequests; ++i) {
    const sim::TimePoint t0 = loop.now();
    try {
      stub.echo("probe");
      ++ok;
      latencies.push_back(sim::to_millis(loop.now() - t0));
    } catch (const Error&) {
      // all replicas down (or decision timed out)
    }
    loop.run_for(5 * sim::kMillisecond);
  }
  std::sort(latencies.begin(), latencies.end());
  Result result;
  result.availability = static_cast<double>(ok) / kRequests;
  result.mean_ms = latencies.empty()
                       ? 0
                       : std::accumulate(latencies.begin(), latencies.end(),
                                         0.0) /
                             static_cast<double>(latencies.size());
  result.p99_ms =
      latencies.empty()
          ? 0
          : latencies[static_cast<std::size_t>(
                static_cast<double>(latencies.size() - 1) * 0.99)];
  return result;
}

}  // namespace

int main() {
  header("E1a: k-availability under crash churn (failover mode)");
  std::printf("crash flip every 50 ms; 300 requests; timeout 200 ms\n");
  std::printf("%9s | %13s %10s %10s\n", "replicas", "availability",
              "mean ms", "p99 ms");
  row_rule();
  for (int k : {1, 2, 3, 5, 7}) {
    const Result r = run_with_replicas(k, /*crash_rate=*/0.25, 42);
    std::printf("%9d | %12.1f%% %10.2f %10.2f\n", k, 100 * r.availability,
                r.mean_ms, r.p99_ms);
  }

  header("E1b: availability vs crash aggressiveness (k = 3)");
  std::printf("%11s | %13s\n", "crash rate", "availability");
  row_rule();
  for (double rate : {0.02, 0.05, 0.12, 0.25, 0.5}) {
    const Result r = run_with_replicas(3, rate, 77);
    std::printf("%11.2f | %12.1f%%\n", rate, 100 * r.availability);
  }

  header("E1c: state-transfer cost for a joining replica");
  std::printf("%11s | %12s\n", "state bytes", "virtual ms");
  row_rule();
  for (std::size_t state_size : {256u, 4096u, 65536u, 1048576u}) {
    sim::EventLoop loop;
    net::Network network(loop);
    network.set_default_link(net::LinkParams{
        .latency = 2 * sim::kMillisecond, .bandwidth_bps = 10e6});
    characteristics::register_replication_module();
    characteristics::ReplicaGroup group(network, "grp", "svc");
    orb::Orb seed_orb(network, "seed", 9);
    seed_orb.set_default_timeout(60 * sim::kSecond);
    auto seeded = std::make_shared<BlobStateServant>();
    seeded->state = payload(state_size, 0.0);
    group.add_replica(seed_orb, seeded);

    orb::Orb joiner(network, "joiner", 9);
    joiner.set_default_timeout(60 * sim::kSecond);
    const sim::TimePoint t0 = loop.now();
    group.add_replica(joiner, std::make_shared<BlobStateServant>());
    std::printf("%11zu | %12.2f\n", state_size,
                sim::to_millis(loop.now() - t0));
  }
  std::printf(
      "\nshape check: availability rises steeply with k and degrades\n"
      "gracefully with churn; state transfer scales with state size\n"
      "(the cross-cut the paper resolves via the aspect interface).\n");
  return 0;
}

// Bench-only servants.
#pragma once

#include "characteristics/replication.hpp"
#include "core/qos_skeleton.hpp"
#include "support/qos_echo.hpp"

namespace maqs::bench {

/// Replication-assigned servant whose whole state is one opaque blob;
/// used to measure state-transfer cost vs state size (E1c).
class BlobStateServant : public core::QosServantBase,
                         public core::StateAccess {
 public:
  BlobStateServant() {
    assign_characteristic(characteristics::replication_descriptor());
  }
  const std::string& repo_id() const override {
    static const std::string kId = "IDL:bench/BlobState:1.0";
    return kId;
  }

  util::Bytes state;

  core::StateAccess* state_access() override { return this; }
  util::Bytes get_state() override { return state; }
  void set_state(util::BytesView s) override {
    state.assign(s.begin(), s.end());
  }

 protected:
  void dispatch_app(const std::string& operation, cdr::Decoder& args,
                    cdr::Encoder& out, orb::ServerContext&) override {
    if (operation == "size") {
      args.expect_end();
      out.write_u32(static_cast<std::uint32_t>(state.size()));
      return;
    }
    throw orb::BadOperation("BlobState: unknown operation " + operation);
  }
};

}  // namespace maqs::bench

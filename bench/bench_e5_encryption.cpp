// E5 — privacy through encryption (paper §6) and on-the-fly key change
// (paper §3.2, the flagship "QoS to QoS" interaction).
//
// google-benchmark half: XTEA-CTR seal/open throughput vs payload size,
// with and without the integrity tag; DH handshake cost.
// Custom half (printed after the gbench table): key rotation under
// traffic — requests keep flowing across an epoch change with zero
// failures, and in-flight frames of the old epoch still decrypt.
#include <benchmark/benchmark.h>

#include "bench/support.hpp"
#include "characteristics/encryption.hpp"
#include "crypto/dh.hpp"

using namespace maqs;
using namespace maqs::bench;

namespace {

// Built in place: the module owns a self-referencing streaming stage and
// is intentionally immovable.
void arm_module(characteristics::EncryptionModule& module) {
  module.install_key(1, util::to_bytes("bench-key"));
}

void BM_SealOpen(benchmark::State& state) {
  characteristics::EncryptionModule module;
  arm_module(module);
  const bool integrity = state.range(1) != 0;
  module.command("set_integrity", {cdr::Any::from_bool(integrity)});
  const util::Bytes body = payload(static_cast<std::size_t>(state.range(0)),
                                   0.5);
  std::uint64_t nonce = 1;
  for (auto _ : state) {
    orb::RequestMessage req;
    req.request_id = nonce++;
    req.body = body;
    module.transform_request(req);
    module.restore_request(req);
    benchmark::DoNotOptimize(req.body.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 2);
  state.SetLabel(integrity ? "with-mac" : "no-mac");
}
BENCHMARK(BM_SealOpen)
    ->Args({64, 1})
    ->Args({1024, 1})
    ->Args({16384, 1})
    ->Args({262144, 1})
    ->Args({16384, 0});

void BM_DhHandshake(benchmark::State& state) {
  util::Rng rng(5);
  const crypto::DhGroup& group = crypto::default_group();
  for (auto _ : state) {
    crypto::DhParty alice(group, 2 + rng.next_below(group.p - 4));
    crypto::DhParty bob(group, 2 + rng.next_below(group.p - 4));
    benchmark::DoNotOptimize(alice.shared_secret(bob.public_value()));
  }
}
BENCHMARK(BM_DhHandshake);

void BM_EncryptedRpcLoopback(benchmark::State& state) {
  World world;
  world.set_link(0, 0);
  world.network.set_loopback_latency(0);
  core::ProviderRegistry providers;
  providers.add(characteristics::make_encryption_provider());
  core::NegotiationService negotiation(world.server_transport, providers,
                                       world.resources);
  core::Negotiator negotiator(world.client_transport, providers);
  auto servant = std::make_shared<maqs::testing::QosEchoImpl>();
  servant->assign_characteristic(characteristics::encryption_descriptor());
  orb::QosProfile profile;
  profile.characteristic = characteristics::encryption_name();
  auto ref = world.server.adapter().activate("echo", servant, {profile});
  maqs::testing::EchoStub stub(world.client, ref);
  negotiator.negotiate(stub, characteristics::encryption_name(), {});
  const util::Bytes body = payload(static_cast<std::size_t>(state.range(0)),
                                   0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stub.blob(body));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EncryptedRpcLoopback)->Arg(64)->Arg(16384);

void rotation_under_traffic() {
  header("E5b: on-the-fly key change under traffic");
  World world;
  world.set_link(10e6, 2 * sim::kMillisecond);
  core::ProviderRegistry providers;
  providers.add(characteristics::make_encryption_provider());
  core::NegotiationService negotiation(world.server_transport, providers,
                                       world.resources);
  core::Negotiator negotiator(world.client_transport, providers);
  auto servant = std::make_shared<maqs::testing::QosEchoImpl>();
  servant->assign_characteristic(characteristics::encryption_descriptor());
  orb::QosProfile profile;
  profile.characteristic = characteristics::encryption_name();
  auto ref = world.server.adapter().activate("echo", servant, {profile});
  maqs::testing::EchoStub stub(world.client, ref);
  negotiator.negotiate(stub, characteristics::encryption_name(), {});

  int failures = 0;
  int rotations = 0;
  sim::Duration worst_rotation = 0;
  for (int i = 1; i <= 500; ++i) {
    try {
      stub.echo("traffic");
    } catch (const Error&) {
      ++failures;
    }
    if (i % 50 == 0) {
      const sim::TimePoint t0 = world.loop.now();
      characteristics::encryption_rotate_key(
          world.client, world.client_transport, ref, 2 + rotations,
          0xAB00 + static_cast<std::uint64_t>(rotations));
      ++rotations;
      worst_rotation = std::max(worst_rotation, world.loop.now() - t0);
    }
  }
  std::printf("requests: 500, key rotations: %d, failed requests: %d\n",
              rotations, failures);
  std::printf("worst rotation pause: %.2f ms (one DH command round trip)\n",
              sim::to_millis(worst_rotation));
  std::printf(
      "shape check: rotation is seamless (0 failures) because frames\n"
      "carry their epoch — the QoS-to-QoS channel changes keys without\n"
      "touching application traffic (paper Sec. 3.2).\n");
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  rotation_under_traffic();
  return 0;
}

// E8 — the QIDL compiler as an aspect weaver (paper §3.3).
//
// The weaving claim: separation of concerns is established at compile
// time by qidlc, so the runtime pays only delegate indirection (measured
// in F2). This bench quantifies the compile-time side: front-end and
// emitter throughput as specifications grow, i.e. the cost of weaving.
#include <benchmark/benchmark.h>

#include <sstream>

#include "qidl/emitter.hpp"
#include "qidl/lexer.hpp"
#include "qidl/parser.hpp"
#include "qidl/repository.hpp"
#include "qidl/sema.hpp"

using namespace maqs;

namespace {

std::string synthetic_spec(int interfaces, int ops_per_interface,
                           int characteristics) {
  std::ostringstream out;
  out << "module bench {\n";
  out << "  struct Rec { string name; long long id; double score; };\n";
  out << "  enum Mode { a, b, c };\n";
  for (int c = 0; c < characteristics; ++c) {
    out << "  qos characteristic Q" << c << " {\n"
        << "    category performance;\n"
        << "    param long level" << c << " = 1 range 1 .. 100;\n"
        << "    param string tag" << c << " = \"x\";\n"
        << "    mechanism double qos_metric_" << c << "();\n"
        << "    peer void qos_sync_" << c << "(in long long seq);\n"
        << "  };\n";
  }
  for (int i = 0; i < interfaces; ++i) {
    out << "  interface Service" << i << " {\n";
    for (int o = 0; o < ops_per_interface; ++o) {
      out << "    Rec op_" << o << "(in string key, in long n, in Mode m, "
          << "in sequence<octet> data);\n";
    }
    out << "  };\n";
    if (characteristics > 0) {
      out << "  bind Service" << i << " : Q" << (i % characteristics)
          << ";\n";
    }
  }
  out << "};\n";
  return out.str();
}

void BM_Lex(benchmark::State& state) {
  const std::string source =
      synthetic_spec(static_cast<int>(state.range(0)), 10, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qidl::lex(source));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(source.size()));
}
BENCHMARK(BM_Lex)->Arg(1)->Arg(10)->Arg(50);

void BM_Parse(benchmark::State& state) {
  const std::string source =
      synthetic_spec(static_cast<int>(state.range(0)), 10, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qidl::parse(source));
  }
}
BENCHMARK(BM_Parse)->Arg(1)->Arg(10)->Arg(50);

void BM_Analyze(benchmark::State& state) {
  const std::string source =
      synthetic_spec(static_cast<int>(state.range(0)), 10, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qidl::analyze(source));
  }
}
BENCHMARK(BM_Analyze)->Arg(1)->Arg(10)->Arg(50);

void BM_EmitHeader(benchmark::State& state) {
  const std::string source =
      synthetic_spec(static_cast<int>(state.range(0)), 10, 4);
  const qidl::CheckedUnit unit = qidl::analyze(source);
  std::size_t generated = 0;
  for (auto _ : state) {
    const std::string header = qidl::emit_header(unit);
    generated = header.size();
    benchmark::DoNotOptimize(header.data());
  }
  state.counters["generated_bytes"] = static_cast<double>(generated);
}
BENCHMARK(BM_EmitHeader)->Arg(1)->Arg(10)->Arg(50);

void BM_BuildRepository(benchmark::State& state) {
  const std::string source =
      synthetic_spec(static_cast<int>(state.range(0)), 10, 4);
  const qidl::CheckedUnit unit = qidl::analyze(source);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qidl::InterfaceRepository::build(unit));
  }
}
BENCHMARK(BM_BuildRepository)->Arg(1)->Arg(10)->Arg(50);

/// Full weave: source text -> generated header.
void BM_FullWeave(benchmark::State& state) {
  const std::string source =
      synthetic_spec(static_cast<int>(state.range(0)), 10, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qidl::emit_header(qidl::analyze(source)));
  }
}
BENCHMARK(BM_FullWeave)->Arg(1)->Arg(10)->Arg(50);

}  // namespace

BENCHMARK_MAIN();

// F3 — Fig. 3: "QoS Integration into the ORB" — the invocation-interface
// dispatch taxonomy.
//
// One benchmark per branch of the paper's dispatch diagram:
//   - request, not QoS-aware            -> GIOP/IIOP path
//   - request, QoS-aware, no module     -> QoS transport, plain fallback
//   - request, QoS-aware, module        -> QoS transport, module path
//   - command to the QoS transport      -> transport command
//   - command to a module               -> module command
//   - module loading (the "dynamic loading on request" reflection)
// Expected shape: the QoS transport adds a lookup on top of the plain
// path; commands cost about one request; loading is a one-time cost.
#include <benchmark/benchmark.h>

#include "bench/support.hpp"
#include "orb/dii.hpp"

using namespace maqs;
using namespace maqs::bench;

namespace {

/// Pass-through module: isolates routing cost from transform cost.
class NullModule : public core::QosModule {
 public:
  NullModule() : core::QosModule("null") {}
  cdr::Any command(const std::string& op,
                   const std::vector<cdr::Any>& args) override {
    if (op == "noop") return cdr::Any::make_void();
    return core::QosModule::command(op, args);
  }
};

void register_null_module() {
  auto& registry = core::ModuleFactoryRegistry::instance();
  if (!registry.contains("null")) {
    registry.register_factory(
        "null", [] { return std::make_unique<NullModule>(); });
  }
}

struct Fixture {
  World world;
  orb::ObjRef plain_ref;
  orb::ObjRef qos_ref;

  Fixture() {
    world.set_link(0, 0);
    world.network.set_loopback_latency(0);
    register_null_module();
    auto servant = std::make_shared<maqs::testing::EchoImpl>();
    plain_ref = world.server.adapter().activate("echo", servant);
    qos_ref = plain_ref;
    orb::QosProfile profile;
    profile.characteristic = "Null";
    qos_ref.qos = {profile};
  }
};

void BM_RequestPlainPath(benchmark::State& state) {
  Fixture fixture;
  maqs::testing::EchoStub stub(fixture.world.client, fixture.plain_ref);
  for (auto _ : state) benchmark::DoNotOptimize(stub.add(1, 2));
  state.counters["plain_path"] = static_cast<double>(
      fixture.world.client.stats().plain_path);
}
BENCHMARK(BM_RequestPlainPath);

void BM_RequestQosFallback(benchmark::State& state) {
  Fixture fixture;
  maqs::testing::EchoStub stub(fixture.world.client, fixture.qos_ref);
  for (auto _ : state) benchmark::DoNotOptimize(stub.add(1, 2));
  state.counters["fallback"] = static_cast<double>(
      fixture.world.client_transport.stats().requests_fallback_plain);
}
BENCHMARK(BM_RequestQosFallback);

void BM_RequestViaModule(benchmark::State& state) {
  Fixture fixture;
  fixture.world.client_transport.assign("echo", "null");
  maqs::testing::EchoStub stub(fixture.world.client, fixture.qos_ref);
  for (auto _ : state) benchmark::DoNotOptimize(stub.add(1, 2));
  state.counters["via_module"] = static_cast<double>(
      fixture.world.client_transport.stats().requests_via_module);
}
BENCHMARK(BM_RequestViaModule);

void BM_CommandToTransport(benchmark::State& state) {
  Fixture fixture;
  for (auto _ : state) {
    benchmark::DoNotOptimize(orb::send_command(
        fixture.world.client, fixture.world.server.endpoint(), "", "ping",
        {}));
  }
}
BENCHMARK(BM_CommandToTransport);

void BM_CommandToModule(benchmark::State& state) {
  Fixture fixture;
  fixture.world.server_transport.load_module("null");
  for (auto _ : state) {
    benchmark::DoNotOptimize(orb::send_command(
        fixture.world.client, fixture.world.server.endpoint(), "null",
        "noop", {}));
  }
}
BENCHMARK(BM_CommandToModule);

/// The reflection mechanism: dynamic module load/unload cycle.
void BM_ModuleLoadUnload(benchmark::State& state) {
  Fixture fixture;
  for (auto _ : state) {
    fixture.world.client_transport.load_module("null");
    fixture.world.client_transport.unload_module("null");
  }
}
BENCHMARK(BM_ModuleLoadUnload);

/// Remote load through a transport command ("extension of the ORB at
/// runtime", §4).
void BM_RemoteModuleLoad(benchmark::State& state) {
  Fixture fixture;
  for (auto _ : state) {
    orb::send_command(fixture.world.client,
                      fixture.world.server.endpoint(), "", "load_module",
                      {cdr::Any::from_string("null")});
    orb::send_command(fixture.world.client,
                      fixture.world.server.endpoint(), "", "unload_module",
                      {cdr::Any::from_string("null")});
  }
}
BENCHMARK(BM_RemoteModuleLoad);

}  // namespace

BENCHMARK_MAIN();

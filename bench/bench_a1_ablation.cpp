// A1 — ablations of the design decisions in DESIGN.md §5.
//
//  D2  delegate-based weaving: cost of mediator-chain length (1..8
//      stacked no-op mediators) — the price of composing characteristics
//      at runtime instead of generating a fused interceptor.
//  D4  dual-use request: command marshaling (self-describing Anys)
//      vs. typed CDR for the same logical payload — bytes and ns.
//  D5  bootstrap over the plain path: full negotiation round trip
//      vs. a pre-provisioned binding (what a static, compile-time-only
//      weaving would pay vs. our runtime negotiation).
#include <benchmark/benchmark.h>

#include "bench/support.hpp"
#include "characteristics/compression.hpp"
#include "core/mediator.hpp"
#include "core/negotiation.hpp"
#include "orb/dii.hpp"

using namespace maqs;
using namespace maqs::bench;

namespace {

class NoopMediator : public core::Mediator {
 public:
  explicit NoopMediator(int i)
      : core::Mediator("Noop" + std::to_string(i)) {}
};

/// D2: mediator-chain length scaling on the loopback fast path.
void BM_MediatorChainLength(benchmark::State& state) {
  World world;
  world.set_link(0, 0);
  world.network.set_loopback_latency(0);
  auto servant = std::make_shared<maqs::testing::EchoImpl>();
  auto ref = world.server.adapter().activate("echo", servant);
  maqs::testing::EchoStub stub(world.client, ref);
  auto composite = std::make_shared<core::CompositeMediator>();
  for (int i = 0; i < state.range(0); ++i) {
    composite->add(std::make_shared<NoopMediator>(i));
  }
  stub.set_mediator(composite);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stub.add(1, 2));
  }
}
BENCHMARK(BM_MediatorChainLength)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// D4: typed CDR argument stream vs. self-describing command Anys for
/// the same logical arguments (string + two longs).
void BM_TypedCdrEncoding(benchmark::State& state) {
  std::size_t bytes = 0;
  for (auto _ : state) {
    cdr::Encoder enc;
    enc.write_string("configure-target");
    enc.write_i32(42);
    enc.write_i32(7);
    bytes = enc.size();
    benchmark::DoNotOptimize(enc.buffer().data());
  }
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_TypedCdrEncoding);

void BM_SelfDescribingCommandEncoding(benchmark::State& state) {
  std::size_t bytes = 0;
  for (auto _ : state) {
    const util::Bytes body = orb::encode_command_args(
        {cdr::Any::from_string("configure-target"),
         cdr::Any::from_long(42), cdr::Any::from_long(7)});
    bytes = body.size();
    benchmark::DoNotOptimize(body.data());
  }
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_SelfDescribingCommandEncoding);

void BM_SelfDescribingCommandDecoding(benchmark::State& state) {
  const util::Bytes body = orb::encode_command_args(
      {cdr::Any::from_string("configure-target"), cdr::Any::from_long(42),
       cdr::Any::from_long(7)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(orb::decode_command_args(body));
  }
}
BENCHMARK(BM_SelfDescribingCommandDecoding);

/// D5: what runtime negotiation costs vs. a pre-provisioned binding
/// (compile-time-only weaving would hardcode the level and skip the
/// round trips; MAQS pays them once per agreement).
void BM_FullNegotiationRoundTrip(benchmark::State& state) {
  World world;
  world.set_link(0, 0);
  world.network.set_loopback_latency(0);
  core::ProviderRegistry providers;
  providers.add(characteristics::make_compression_provider());
  core::NegotiationService negotiation(world.server_transport, providers,
                                       world.resources);
  core::Negotiator negotiator(world.client_transport, providers);
  auto servant = std::make_shared<maqs::testing::QosEchoImpl>();
  servant->assign_characteristic(characteristics::compression_descriptor());
  orb::QosProfile profile;
  profile.characteristic = characteristics::compression_name();
  auto ref = world.server.adapter().activate("echo", servant, {profile});
  for (auto _ : state) {
    maqs::testing::EchoStub stub(world.client, ref);
    core::Agreement agreement = negotiator.negotiate(
        stub, characteristics::compression_name(), {});
    negotiator.terminate(stub, agreement);
  }
}
BENCHMARK(BM_FullNegotiationRoundTrip);

void BM_PreProvisionedBinding(benchmark::State& state) {
  World world;
  world.set_link(0, 0);
  world.network.set_loopback_latency(0);
  auto servant = std::make_shared<maqs::testing::QosEchoImpl>();
  servant->assign_characteristic(characteristics::compression_descriptor());
  auto ref = world.server.adapter().activate("echo", servant);
  core::Agreement agreement;
  agreement.id = 1;
  agreement.characteristic = characteristics::compression_name();
  agreement.params = characteristics::compression_descriptor()
                         .default_params();
  for (auto _ : state) {
    maqs::testing::EchoStub stub(world.client, ref);
    auto impl = std::make_shared<characteristics::CompressionImpl>();
    impl->bind_agreement(agreement);
    servant->set_active_impl(impl);
    auto mediator = std::make_shared<characteristics::CompressionMediator>();
    mediator->bind_agreement(agreement);
    auto composite = std::make_shared<core::CompositeMediator>();
    composite->add(mediator);
    stub.set_mediator(composite);
    benchmark::DoNotOptimize(stub.mediator());
    servant->set_active_impl(nullptr);
  }
}
BENCHMARK(BM_PreProvisionedBinding);

}  // namespace

BENCHMARK_MAIN();

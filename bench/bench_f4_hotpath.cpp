// F4 — request hot path: requests/sec and allocations/request.
//
// Tracks the cost of one blocking request end to end (stub marshal ->
// ORB -> simulated loopback wire -> adapter dispatch -> reply) for the
// three paths of Fig. 3 that matter for the weaving-overhead story:
//   - plain            GIOP/IIOP path, no QoS anywhere
//   - qos_unmodified   QoS-aware reference, transport installed, no
//                      module assigned (the "QoS costs nothing when
//                      unused" claim)
//   - woven            compression + encryption mediators/impls woven on
//                      both sides (application-centered, Fig. 2)
// Unlike the virtual-time benches this measures wall-clock throughput and
// real heap traffic (global operator new interposition), and emits a
// machine-readable BENCH_hotpath.json so the perf trajectory is diffable
// across PRs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>

#include "bench/support.hpp"
#include "characteristics/compression.hpp"
#include "characteristics/encryption.hpp"
#include "core/mediator.hpp"
#include "core/negotiation.hpp"
#include "core/retry.hpp"
#include "gateway/gateway.hpp"
#include "gateway/mtom.hpp"
#include "naming/selector.hpp"
#include "qidl/repository.hpp"
#include "support/http_client.hpp"
#include "sched/scheduler.hpp"
#include "trace/trace.hpp"
#include "util/buffer_pool.hpp"

// ---- allocation counters (single-threaded bench, plain globals) ----

namespace {
std::size_t g_alloc_count = 0;
std::size_t g_alloc_bytes = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  g_alloc_bytes += size;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace maqs;
using namespace maqs::bench;

struct Row {
  std::string scenario;
  std::string op;
  double requests_per_sec = 0;
  double bytes_alloc_per_request = 0;
  double allocs_per_request = 0;
};

/// Runs `call` through kRepetitions timed windows (each ~kMinSeconds of
/// wall clock, at least kMinIters calls) and reports the *fastest* window.
/// Best-of-N is what the throughput-floor gate needs: a scheduler blip on
/// a shared box slows one window, not all of them, so the max survives
/// noise that would flake a single-window measurement. Alloc counts are
/// deterministic per call, so they are averaged over every window.
template <typename Fn>
Row measure(std::string scenario, std::string op, Fn&& call) {
  using clock = std::chrono::steady_clock;
  constexpr int kWarmup = 200;
  constexpr int kMinIters = 2000;
  constexpr double kMinSeconds = 0.25;
  constexpr int kRepetitions = 3;

  for (int i = 0; i < kWarmup; ++i) call();

  double best_rps = 0;
  std::size_t total_iters = 0;
  const std::size_t count0 = g_alloc_count;
  const std::size_t bytes0 = g_alloc_bytes;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    std::size_t iters = 0;
    const clock::time_point t0 = clock::now();
    double elapsed = 0;
    do {
      for (int i = 0; i < kMinIters; ++i) call();
      iters += kMinIters;
      elapsed = std::chrono::duration<double>(clock::now() - t0).count();
    } while (elapsed < kMinSeconds);
    best_rps = std::max(best_rps, static_cast<double>(iters) / elapsed);
    total_iters += iters;
  }

  Row row;
  row.scenario = std::move(scenario);
  row.op = std::move(op);
  row.requests_per_sec = best_rps;
  row.allocs_per_request = static_cast<double>(g_alloc_count - count0) /
                           static_cast<double>(total_iters);
  row.bytes_alloc_per_request = static_cast<double>(g_alloc_bytes - bytes0) /
                                static_cast<double>(total_iters);
  return row;
}

/// Inert custom interceptors for the chain-overhead rows: every hook keeps
/// its default kContinue/no-op body, so the measured cost is the walk
/// itself (one vector entry + two virtual calls per stage).
class NoopClientInterceptor final : public orb::ClientInterceptor {
 public:
  const char* name() const noexcept override { return "bench.noop"; }
};

class NoopServerInterceptor final : public orb::ServerInterceptor {
 public:
  const char* name() const noexcept override { return "bench.noop"; }
};

core::Agreement make_agreement(const std::string& characteristic,
                               std::map<std::string, cdr::Any> params) {
  core::Agreement agreement;
  agreement.id = 1;
  agreement.characteristic = characteristic;
  agreement.object_key = "echo";
  agreement.params = std::move(params);
  agreement.state = core::AgreementState::kActive;
  return agreement;
}

/// Fast loopback world: zero virtual latency, infinite bandwidth, so the
/// wall-clock cost is pure software overhead.
void make_fast(World& world) {
  world.set_link(0, 0);
  world.network.set_loopback_latency(0);
}

void run_scenarios(std::vector<Row>& rows) {
  const util::Bytes blob_data = payload(4096, 0.9);

  {  // plain: no QoS tag, router never consulted
    World world;
    make_fast(world);
    auto servant = std::make_shared<maqs::testing::EchoImpl>();
    orb::ObjRef ref = world.server.adapter().activate("echo", servant);
    maqs::testing::EchoStub stub(world.client, ref);
    rows.push_back(measure("plain", "add", [&] { stub.add(1, 2); }));
    rows.push_back(
        measure("plain", "blob4k", [&] { stub.blob(blob_data); }));

    // Frame-pool contrast: dropping the pool before every request sends
    // each 4K request/reply frame (and the stub's argument buffer) back
    // to the allocator. The gap to the plain blob4k row above is what
    // slab recycling buys on the large-payload path.
    rows.push_back(measure("plain_pool_cold", "blob4k", [&] {
      util::BufferPool::instance().clear();
      stub.blob(blob_data);
    }));

    // Tracing overhead, same world: recorder installed but disabled (the
    // branch-and-skip cost the zero-cost-when-off claim is about), then
    // enabled with head sampling at 1 (every request fully traced).
    trace::TraceRecorder recorder(world.loop);
    world.client.set_trace_recorder(&recorder);
    world.server.set_trace_recorder(&recorder);
    rows.push_back(
        measure("plain_trace_off", "add", [&] { stub.add(1, 2); }));
    recorder.set_enabled(true);
    rows.push_back(
        measure("plain_trace_sampled", "add", [&] { stub.add(1, 2); }));
    world.client.set_trace_recorder(nullptr);
    world.server.set_trace_recorder(nullptr);

    // Resilience armed but idle: retry governor + circuit breaker
    // installed on a healthy link. The happy path pays only the advisor
    // branch and one breaker map lookup (the interceptor terminal never
    // copies the request between attempts).
    core::RetryGovernor governor(core::RetryPolicy::idempotent(), 42);
    world.client.set_retry_advisor(&governor);
    world.client.set_breaker_config(orb::BreakerConfig{});
    rows.push_back(
        measure("plain_resilient", "add", [&] { stub.add(1, 2); }));
    world.client.set_retry_advisor(nullptr);
    world.client.set_breaker_config(std::nullopt);

    // Chain overhead: extra no-op interceptors registered on both sides,
    // every built-in stage armed-but-idle. Must hold the 8 allocs/request
    // line — the walk is branches and virtual calls, never heap.
    NoopClientInterceptor noop_client;
    NoopServerInterceptor noop_server;
    world.client.register_client_interceptor(&noop_client, 275);
    world.server.register_server_interceptor(&noop_server, 175);
    rows.push_back(
        measure("plain_interceptors", "add", [&] { stub.add(1, 2); }));

    // Everything at once: customs + retry + breaker + recorder installed
    // but disabled. The row to diff against plain_resilient — the full
    // chain must not regress it.
    trace::TraceRecorder full_chain_recorder(world.loop);
    world.client.set_trace_recorder(&full_chain_recorder);
    world.server.set_trace_recorder(&full_chain_recorder);
    world.client.set_retry_advisor(&governor);
    world.client.set_breaker_config(orb::BreakerConfig{});
    rows.push_back(
        measure("full_chain", "add", [&] { stub.add(1, 2); }));
    world.client.set_retry_advisor(nullptr);
    world.client.set_breaker_config(std::nullopt);
    world.client.set_trace_recorder(nullptr);
    world.server.set_trace_recorder(nullptr);
    world.client.unregister_client_interceptor(&noop_client);
    world.server.unregister_server_interceptor(&noop_server);
  }

  {  // sched: the QoS-class request scheduler armed on the dispatch path.
    // Uncontended (unpaced, idle server), every request classifies and
    // inline-dispatches — the row pins the scheduler's hot-path tax at
    // zero heap traffic against the sched_off baseline in the same world.
    World world;
    make_fast(world);
    auto servant = std::make_shared<maqs::testing::EchoImpl>();
    orb::ObjRef ref = world.server.adapter().activate("echo", servant);
    maqs::testing::EchoStub stub(world.client, ref);
    rows.push_back(measure("sched_off", "add", [&] { stub.add(1, 2); }));

    sched::SchedulerConfig config;  // unpaced: no virtual service time
    sched::ClassConfig gold;
    gold.name = "gold";
    gold.weight = 3.0;
    config.classes.push_back(gold);  // best_effort is added by the scheduler
    sched::RequestScheduler scheduler(world.server, config);
    scheduler.classifier().bind_object("echo", "gold");
    rows.push_back(
        measure("sched_wfq_2class", "add", [&] { stub.add(1, 2); }));
  }

  {  // plain_replicated: a two-profile reference with the replica
    // selector armed (round-robin). Selection must ride the plain alloc
    // budget — picking a profile is a slot write plus an endpoint
    // redirect, never a reference copy on the non-QoS path.
    World world;
    make_fast(world);
    orb::Orb server2{world.network, "server2", 9000};
    auto servant_a = std::make_shared<maqs::testing::EchoImpl>();
    auto servant_b = std::make_shared<maqs::testing::EchoImpl>();
    orb::ObjRef ref = world.server.adapter().activate("echo", servant_a);
    server2.adapter().activate("echo", servant_b);
    ref.alternates.push_back(orb::AltProfile{server2.endpoint(), "echo"});

    naming::ReplicaSelector selector(world.client, {});
    maqs::testing::EchoStub stub(world.client, ref);
    rows.push_back(
        measure("plain_replicated", "add", [&] { stub.add(1, 2); }));
  }

  {  // qos_unmodified: QoS-aware reference, no module assigned -> fallback
    World world;
    make_fast(world);
    auto servant = std::make_shared<maqs::testing::EchoImpl>();
    orb::ObjRef ref = world.server.adapter().activate("echo", servant);
    orb::QosProfile profile;
    profile.characteristic = "Unassigned";
    ref.qos = {profile};
    maqs::testing::EchoStub stub(world.client, ref);
    rows.push_back(
        measure("qos_unmodified", "add", [&] { stub.add(1, 2); }));
    rows.push_back(
        measure("qos_unmodified", "blob4k", [&] { stub.blob(blob_data); }));
  }

  {  // woven: compression + encryption at the stub/skeleton layer
    World world;
    make_fast(world);
    auto servant = std::make_shared<maqs::testing::QosEchoImpl>();
    servant->assign_characteristic(characteristics::compression_descriptor());
    servant->assign_characteristic(characteristics::encryption_descriptor());
    orb::QosProfile compression;
    compression.characteristic = characteristics::compression_name();
    orb::QosProfile encryption;
    encryption.characteristic = characteristics::encryption_name();
    orb::ObjRef ref = world.server.adapter().activate(
        "echo", servant, {compression, encryption});

    const core::Agreement compress_agreement = make_agreement(
        characteristics::compression_name(),
        {{"algorithm", cdr::Any::from_string("lz77")},
         {"level", cdr::Any::from_long(32)},
         {"min_size", cdr::Any::from_long(64)}});
    const core::Agreement encrypt_agreement =
        make_agreement(characteristics::encryption_name(),
                       {{"psk", cdr::Any::from_string("bench-psk")},
                        {"integrity", cdr::Any::from_bool(true)}});

    // Client side: mediator chain [compression, encryption] -> the wire
    // carries encrypt(compress(x)). Server side: impls installed in the
    // same order; transform_args runs reversed (decrypt, then inflate).
    auto mediator = std::make_shared<core::CompositeMediator>();
    auto compress_mediator =
        std::make_shared<characteristics::CompressionMediator>();
    compress_mediator->bind_agreement(compress_agreement);
    mediator->add(compress_mediator);
    auto encrypt_mediator =
        std::make_shared<characteristics::EncryptionMediator>();
    encrypt_mediator->bind_agreement(encrypt_agreement);
    mediator->add(encrypt_mediator);

    auto compress_impl = std::make_shared<characteristics::CompressionImpl>();
    compress_impl->bind_agreement(compress_agreement);
    servant->install_impl(compress_impl);
    auto encrypt_impl = std::make_shared<characteristics::EncryptionImpl>();
    encrypt_impl->bind_agreement(encrypt_agreement);
    servant->install_impl(encrypt_impl);

    maqs::testing::EchoStub stub(world.client, ref);
    stub.set_mediator(mediator);
    rows.push_back(measure("woven_compress_encrypt", "add",
                           [&] { stub.add(1, 2); }));
    rows.push_back(measure("woven_compress_encrypt", "blob4k",
                           [&] { stub.blob(blob_data); }));

    // Same stub, explicit label: the woven path runs the streaming
    // TransformChain (fused mediator chain, arena-backed stages) — there
    // is no copy-per-stage path left. The woven_compress_encrypt rows
    // above keep the historical name for cross-PR comparability; these
    // are the rows the alloc-regression gate pins.
    rows.push_back(
        measure("woven_streaming", "add", [&] { stub.add(1, 2); }));
    rows.push_back(
        measure("woven_streaming", "blob4k", [&] { stub.blob(blob_data); }));

    // Tracing cost on the woven path: ~19 spans per request (mediators,
    // transport, transits, skeleton stages) when sampled.
    trace::TraceRecorder recorder(world.loop);
    world.client.set_trace_recorder(&recorder);
    world.server.set_trace_recorder(&recorder);
    rows.push_back(
        measure("woven_trace_off", "add", [&] { stub.add(1, 2); }));
    recorder.set_enabled(true);
    rows.push_back(
        measure("woven_trace_sampled", "add", [&] { stub.add(1, 2); }));
  }

  {  // gateway: the HTTP/1.1 + JSON edge front-end. Each call is one
    // keep-alive request on a persistent connection: HttpParser -> route
    // table -> JSON -> Any marshal -> DII invocation through the client
    // chain -> reply -> JSON (or multipart) response. The rows price the
    // whole protocol translation against the plain rows above; the blob4k
    // row additionally rides the MTOM out-of-band path both ways (request
    // part borrowed zero-copy, response assembled in a ChainBuf region).
    World world;
    make_fast(world);
    auto servant = std::make_shared<maqs::testing::EchoImpl>();
    orb::ObjRef ref = world.server.adapter().activate("echo", servant);
    const qidl::InterfaceRepository repo = qidl::InterfaceRepository::build(
        qidl::analyze(maqs::testing::kGatewayEchoQidl));
    orb::Orb edge{world.network, "edge", 9100};
    gateway::Gateway gw(edge, repo, 8080);
    gw.expose("Echo", ref);
    maqs::testing::HttpTestClient web(world.network, {"web", 80},
                                      gw.endpoint());

    const util::Bytes add_frame = maqs::testing::HttpTestClient::
        encode_request("POST", "/api/Echo/add", "{\"a\":1,\"b\":2}");
    rows.push_back(measure("gateway_json", "add", [&] {
      web.send_raw(add_frame);
      web.await_response();
      web.discard_delivered();
    }));

    const util::Bytes echo_frame = maqs::testing::HttpTestClient::
        encode_request("POST", "/api/Echo/echo",
                       "{\"s\":\"quality-of-service middleware frame\"}");
    rows.push_back(measure("gateway_json", "echo", [&] {
      web.send_raw(echo_frame);
      web.await_response();
      web.discard_delivered();
    }));

    // MTOM round trip: a 4K blob rides out-of-band in both directions.
    gateway::MultipartBuilder builder("bench-b0");
    builder.add_json_root("{\"data\":{\"$blob\":\"cid:b0\"}}");
    builder.add_blob_part("b0", blob_data);  // view: blob_data outlives it
    const std::string multipart_body = [&] {
      const util::Bytes wire = builder.finish();
      return std::string(wire.begin(), wire.end());
    }();
    const util::Bytes blob_frame = maqs::testing::HttpTestClient::
        encode_request("POST", "/api/Echo/blob", multipart_body,
                       {{"content-type", builder.content_type()},
                        {"accept", "multipart/related"}});
    rows.push_back(measure("gateway_blob4k", "blob4k", [&] {
      web.send_raw(blob_frame);
      web.await_response();
      web.discard_delivered();
    }));
  }

  {  // negotiate_matrix: the full capability-matrix handshake over a
    // three-dimension lattice (offer -> review -> accept, then terminate
    // so the next iteration starts clean). No mediator factories: the row
    // isolates protocol + matrix marshaling cost from weaving cost.
    World world;
    make_fast(world);
    core::ProviderRegistry providers;
    core::CharacteristicProvider provider;
    provider.descriptor = core::CharacteristicDescriptor(
        "Matrix3", core::QosCategory::kOther,
        {core::ParamDesc{"level", cdr::TypeCode::long_tc(),
                         cdr::Any::from_long(8), 1, 64}},
        {core::DimensionDesc{"algorithm",
                             {cdr::Any::from_string("lz77"),
                              cdr::Any::from_string("rle"),
                              cdr::Any::from_string("none")},
                             0},
         core::DimensionDesc{"key_bits",
                             {cdr::Any::from_long(128),
                              cdr::Any::from_long(64)},
                             1},
         core::DimensionDesc{"integrity",
                             {cdr::Any::from_bool(true),
                              cdr::Any::from_bool(false)},
                             2}},
        {});
    providers.add(std::move(provider));
    core::NegotiationService negotiation(world.server_transport, providers,
                                         world.resources);
    core::Negotiator negotiator(world.client_transport, providers);
    auto servant = std::make_shared<maqs::testing::QosEchoImpl>();
    servant->assign_characteristic(
        providers.get("Matrix3").descriptor);
    orb::ObjRef ref = world.server.adapter().activate("echo", servant);
    maqs::testing::EchoStub stub(world.client, ref);
    rows.push_back(measure("negotiate_matrix", "handshake", [&] {
      const core::Agreement agreement =
          negotiator.negotiate(stub, "Matrix3", {});
      negotiator.terminate(stub, agreement);
    }));
  }

  {  // woven_renegotiated: the woven steady state after a lattice step.
    // Compression and encryption are negotiated (versioned agreements on
    // a fused channel), then compression renegotiates lz77 -> rle; the
    // rows pin the post-switch request path — the rebound codec under the
    // bumped channel version must cost the same as the first binding.
    World world;
    make_fast(world);
    core::ProviderRegistry providers;
    providers.add(characteristics::make_compression_provider());
    providers.add(characteristics::make_encryption_psk_provider());
    core::NegotiationService negotiation(world.server_transport, providers,
                                         world.resources);
    core::Negotiator negotiator(world.client_transport, providers);
    auto servant = std::make_shared<maqs::testing::QosEchoImpl>();
    servant->assign_characteristic(characteristics::compression_descriptor());
    servant->assign_characteristic(characteristics::encryption_descriptor());
    orb::QosProfile compression;
    compression.characteristic = characteristics::compression_name();
    orb::QosProfile encryption;
    encryption.characteristic = characteristics::encryption_name();
    orb::ObjRef ref = world.server.adapter().activate(
        "echo", servant, {compression, encryption});
    maqs::testing::EchoStub stub(world.client, ref);
    core::Agreement compress_agreement = negotiator.negotiate(
        stub, characteristics::compression_name(),
        {{"level", cdr::Any::from_long(32)}});
    negotiator.negotiate(stub, characteristics::encryption_name(),
                         {{"psk", cdr::Any::from_string("bench-psk")}});
    negotiator.renegotiate(stub, compress_agreement,
                           {{"algorithm", cdr::Any::from_string("rle")}});
    rows.push_back(
        measure("woven_renegotiated", "add", [&] { stub.add(1, 2); }));
    rows.push_back(measure("woven_renegotiated", "blob4k",
                           [&] { stub.blob(blob_data); }));
  }
}

void write_json(const std::vector<Row>& rows, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"f4_hotpath\",\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"scenario\": \"%s\", \"op\": \"%s\", "
                 "\"requests_per_sec\": %.0f, "
                 "\"bytes_alloc_per_request\": %.1f, "
                 "\"allocs_per_request\": %.2f}%s\n",
                 r.scenario.c_str(), r.op.c_str(), r.requests_per_sec,
                 r.bytes_alloc_per_request, r.allocs_per_request,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_hotpath.json";

  header("F4: request hot path (wall clock, heap traffic)");
  std::vector<Row> rows;
  run_scenarios(rows);

  std::printf("%-24s %-8s %14s %12s %10s\n", "scenario", "op", "req/s",
              "bytes/req", "allocs/req");
  row_rule();
  for (const Row& r : rows) {
    std::printf("%-24s %-8s %14.0f %12.1f %10.2f\n", r.scenario.c_str(),
                r.op.c_str(), r.requests_per_sec, r.bytes_alloc_per_request,
                r.allocs_per_request);
  }
  write_json(rows, json_path);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

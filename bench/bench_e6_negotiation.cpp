// E6 — per-agreement negotiation and adaptation (paper §3).
//
// Measures the infrastructure-service costs:
//   a) negotiation latency (virtual round trips) vs parameter count,
//   b) concurrent independent agreements ("no system wide view"),
//   c) an adaptation storm: capacity collapses, every managed agreement
//      renegotiates; reports time until the system settles.
#include "bench/support.hpp"
#include "characteristics/compression.hpp"
#include "core/adaptation.hpp"
#include "util/log.hpp"

using namespace maqs;
using namespace maqs::bench;

namespace {

core::CharacteristicDescriptor wide_descriptor(int params) {
  std::vector<core::ParamDesc> descs;
  for (int i = 0; i < params; ++i) {
    descs.push_back(core::ParamDesc{"p" + std::to_string(i),
                                    cdr::TypeCode::long_tc(),
                                    cdr::Any::from_long(1), 0, 1000});
  }
  return core::CharacteristicDescriptor("Wide", core::QosCategory::kOther,
                                        std::move(descs), {});
}

}  // namespace

int main() {
  // Adaptation rejections under extreme pressure are part of the
  // experiment; keep the log quiet.
  util::Logger::instance().set_level(util::LogLevel::kError);

  header("E6a: negotiation latency vs parameter count (2 ms link)");
  std::printf("%8s | %12s\n", "params", "virtual ms");
  row_rule();
  for (int params : {1, 4, 16, 64}) {
    World world;
    world.set_link(10e6, 2 * sim::kMillisecond);
    core::ProviderRegistry providers;
    core::CharacteristicProvider provider;
    provider.descriptor = wide_descriptor(params);
    providers.add(std::move(provider));
    core::NegotiationService negotiation(world.server_transport, providers,
                                         world.resources);
    core::Negotiator negotiator(world.client_transport, providers);
    auto servant = std::make_shared<maqs::testing::QosEchoImpl>();
    servant->assign_characteristic(wide_descriptor(params));
    auto ref = world.server.adapter().activate("obj", servant);
    maqs::testing::EchoStub stub(world.client, ref);
    const sim::TimePoint t0 = world.loop.now();
    negotiator.negotiate(stub, "Wide", {});
    std::printf("%8d | %12.2f\n", params,
                sim::to_millis(world.loop.now() - t0));
  }

  header("E6b: independent agreements on one server");
  std::printf("%12s | %14s %14s\n", "agreements", "total ms",
              "ms/agreement");
  row_rule();
  for (int n : {1, 8, 32, 128}) {
    World world;
    world.set_link(10e6, 2 * sim::kMillisecond);
    core::ProviderRegistry providers;
    providers.add(characteristics::make_compression_provider());
    core::NegotiationService negotiation(world.server_transport, providers,
                                         world.resources);
    core::Negotiator negotiator(world.client_transport, providers);
    std::vector<std::unique_ptr<maqs::testing::EchoStub>> stubs;
    for (int i = 0; i < n; ++i) {
      auto servant = std::make_shared<maqs::testing::QosEchoImpl>();
      servant->assign_characteristic(
          characteristics::compression_descriptor());
      orb::QosProfile profile;
      profile.characteristic = characteristics::compression_name();
      auto ref = world.server.adapter().activate(
          "obj" + std::to_string(i), servant, {profile});
      stubs.push_back(std::make_unique<maqs::testing::EchoStub>(
          world.client, ref));
    }
    const sim::TimePoint t0 = world.loop.now();
    for (auto& stub : stubs) {
      negotiator.negotiate(*stub, characteristics::compression_name(),
                           {{"level", cdr::Any::from_long(1)}});
    }
    const double total = sim::to_millis(world.loop.now() - t0);
    std::printf("%12d | %14.1f %14.2f\n", n, total, total / n);
  }

  header("E6c: adaptation storm (capacity collapse)");
  std::printf("%12s | %12s %14s\n", "agreements", "adapted", "settle ms");
  row_rule();
  for (int n : {4, 16, 64}) {
    World world;
    world.set_link(10e6, 2 * sim::kMillisecond);
    world.resources.declare("cpu", 1e9);
    core::ProviderRegistry providers;
    providers.add(characteristics::make_compression_provider());
    core::NegotiationService negotiation(world.server_transport, providers,
                                         world.resources);
    core::Negotiator negotiator(world.client_transport, providers);
    core::AdaptationManager adaptation(world.client_transport, negotiator);
    world.resources.subscribe(
        [&](const std::string& resource, double, double) {
          negotiation.shed_overload(resource);
        });

    std::vector<std::unique_ptr<maqs::testing::EchoStub>> stubs;
    for (int i = 0; i < n; ++i) {
      auto servant = std::make_shared<maqs::testing::QosEchoImpl>();
      servant->assign_characteristic(
          characteristics::compression_descriptor());
      orb::QosProfile profile;
      profile.characteristic = characteristics::compression_name();
      auto ref = world.server.adapter().activate(
          "obj" + std::to_string(i), servant, {profile});
      stubs.push_back(std::make_unique<maqs::testing::EchoStub>(
          world.client, ref));
      core::Agreement agreement = negotiator.negotiate(
          *stubs.back(), characteristics::compression_name(),
          {{"level", cdr::Any::from_long(64)}});
      adaptation.manage(
          *stubs.back(), agreement,
          [](const core::Agreement& current, const std::string&)
              -> std::optional<std::map<std::string, cdr::Any>> {
            if (current.int_param("level") <= 1) return std::nullopt;
            // Emergency degrade: drop straight to the floor level.
            return std::map<std::string, cdr::Any>{
                {"level", cdr::Any::from_long(1)}};
          });
    }
    // Collapse: room for one agreement at level 64 plus everyone else at
    // the floor level — the shed policy keeps the oldest survivor and
    // every victim must adapt.
    const sim::TimePoint t0 = world.loop.now();
    world.resources.set_capacity("cpu", 64.0 + (n - 1));
    world.loop.run_until_idle();
    std::printf("%12d | %12llu %14.1f   (expected %d)\n", n,
                static_cast<unsigned long long>(adaptation.adaptations()),
                sim::to_millis(world.loop.now() - t0), n - 1);
  }
  std::printf(
      "\nshape check: negotiation cost is one command round trip and\n"
      "scales linearly in agreements (each negotiated independently);\n"
      "adaptation settles within a few round trips per victim.\n");
  return 0;
}

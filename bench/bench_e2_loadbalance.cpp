// E2 — performance through load balancing (paper §6).
//
// Workload: 8 concurrent clients fire 50 requests each (16 KiB replies)
// at a pool of workers; one worker is degraded (slow link + synthetic
// load). Clients run asynchronously so requests genuinely contend on the
// worker links (bandwidth serialization = queueing).
//
// Reports per (workers, policy): makespan, mean and p99 latency.
// Expected shape: more workers help every policy; on the heterogeneous
// pool least-loaded < round-robin < random in tail latency, because only
// least-loaded steers around the degraded worker.
#include <numeric>

#include "bench/support.hpp"
#include "characteristics/loadbalancing.hpp"
#include "util/strings.hpp"

using namespace maqs;
using namespace maqs::bench;

namespace {

struct Result {
  double makespan_ms;
  double mean_ms;
  double p99_ms;
};

Result run(int workers, const std::string& policy) {
  sim::EventLoop loop;
  net::Network network(loop, 99);
  network.set_default_link(net::LinkParams{
      .latency = 1 * sim::kMillisecond, .bandwidth_bps = 50e6});

  // Worker pool; worker 0 degraded.
  std::vector<std::unique_ptr<orb::Orb>> worker_orbs;
  std::vector<orb::ObjRef> refs;
  std::vector<std::shared_ptr<characteristics::LoadReportingImpl>> reporting;
  for (int i = 0; i < workers; ++i) {
    auto orb = std::make_unique<orb::Orb>(network, "w" + std::to_string(i),
                                          9000);
    auto servant = std::make_shared<maqs::testing::QosEchoImpl>();
    servant->assign_characteristic(
        characteristics::loadbalancing_descriptor());
    auto impl = std::make_shared<characteristics::LoadReportingImpl>();
    servant->set_active_impl(impl);
    refs.push_back(orb->adapter().activate("worker", servant));
    reporting.push_back(impl);
    worker_orbs.push_back(std::move(orb));
  }
  // Degrade worker 0: slow links from every client + standing load.
  reporting[0]->add_synthetic_load(50.0);

  const int kClients = 8;
  const int kRequestsPerClient = 50;
  const util::Bytes reply_payload = payload(16 * 1024, 0.0);

  std::vector<std::unique_ptr<orb::Orb>> client_orbs;
  std::vector<std::shared_ptr<characteristics::LoadBalancingMediator>>
      mediators;
  std::vector<std::string> iors;
  for (const auto& ref : refs) iors.push_back(ref.to_string());

  std::vector<double> latencies;
  int outstanding = 0;

  for (int c = 0; c < kClients; ++c) {
    auto orb = std::make_unique<orb::Orb>(network, "c" + std::to_string(c),
                                          1);
    orb->set_default_timeout(60 * sim::kSecond);
    network.set_link("c" + std::to_string(c), "w0",
                     net::LinkParams{.latency = 1 * sim::kMillisecond,
                                     .bandwidth_bps = 4e6});  // degraded
    auto mediator =
        std::make_shared<characteristics::LoadBalancingMediator>();
    mediator->attach_orb(orb.get());
    core::Agreement agreement;
    agreement.characteristic = characteristics::loadbalancing_name();
    agreement.params =
        characteristics::loadbalancing_descriptor().validate_params(
            {{"policy", cdr::Any::from_string(policy)},
             {"probe_interval", cdr::Any::from_long(8)},
             {"replicas",
              cdr::Any::from_string(util::join(iors, ";"))}});
    mediator->bind_agreement(agreement);
    client_orbs.push_back(std::move(orb));
    mediators.push_back(std::move(mediator));
  }

  // Closed-loop clients: each issues its next request when the previous
  // one completes (callback chaining keeps the 8 clients concurrent).
  std::function<void(int, int)> issue = [&](int client, int remaining) {
    if (remaining == 0) return;
    orb::Orb& orb = *client_orbs[static_cast<std::size_t>(client)];
    orb::RequestMessage req;
    req.operation = "blob";
    cdr::Encoder args;
    args.write_bytes(reply_payload);
    req.body = args.take();
    orb::ObjRef target = refs[0];
    mediators[static_cast<std::size_t>(client)]->outbound(req, target);
    req.object_key = target.object_key;
    ++outstanding;
    const sim::TimePoint t0 = loop.now();
    orb.send_request(target.endpoint, std::move(req),
                     [&, client, remaining, t0](const orb::ReplyMessage&) {
                       latencies.push_back(sim::to_millis(loop.now() - t0));
                       --outstanding;
                       issue(client, remaining - 1);
                     });
  };
  for (int c = 0; c < kClients; ++c) issue(c, kRequestsPerClient);
  loop.run_until_idle();

  std::sort(latencies.begin(), latencies.end());
  Result result;
  result.makespan_ms = sim::to_millis(loop.now());
  result.mean_ms =
      std::accumulate(latencies.begin(), latencies.end(), 0.0) /
      static_cast<double>(latencies.size());
  result.p99_ms = latencies[static_cast<std::size_t>(
      static_cast<double>(latencies.size() - 1) * 0.99)];
  return result;
}

}  // namespace

int main() {
  header("E2: load balancing — 8 clients, 16 KiB replies, worker 0 degraded");
  std::printf("%8s %13s | %12s %10s %10s\n", "workers", "policy",
              "makespan ms", "mean ms", "p99 ms");
  row_rule();
  for (int workers : {2, 4, 8}) {
    for (const char* policy : {"round-robin", "random", "least-loaded"}) {
      const Result r = run(workers, policy);
      std::printf("%8d %13s | %12.1f %10.2f %10.2f\n", workers, policy,
                  r.makespan_ms, r.mean_ms, r.p99_ms);
    }
    row_rule();
  }
  std::printf(
      "shape check: throughput scales with workers; least-loaded avoids\n"
      "the degraded worker and wins the tail (paper: 'performance by\n"
      "load-balancing' as an application-layer mechanism).\n");
  return 0;
}

// F1 — Fig. 1: "Layers of potential QoS in CORBA".
//
// The paper's Fig. 1 claims QoS can be integrated application-centered
// (stub/skeleton layer: mediator + QoS skeleton) or network-centered
// (ORB transport layer: QoS module). This bench runs the SAME mechanism
// (LZ77 payload compression) at both layers and at no layer, over a
// 1 Mbit/s link, and reports wire bytes and virtual transfer time per
// payload size. Expected shape: both integration layers achieve the same
// wire savings — the separation-of-concerns choice is free in terms of
// the QoS delivered, which is exactly the architectural point.
#include "bench/support.hpp"
#include "characteristics/compression.hpp"

using namespace maqs;
using namespace maqs::bench;

namespace {

struct Sample {
  std::uint64_t wire_bytes;
  double virtual_ms;
};

Sample run(World& world, maqs::testing::EchoStub& stub,
           const util::Bytes& data) {
  world.network.reset_stats();
  const sim::TimePoint t0 = world.loop.now();
  stub.blob(data);
  return {world.network.stats().bytes_sent,
          sim::to_millis(world.loop.now() - t0)};
}

}  // namespace

int main() {
  header("F1: application-centered vs network-centered QoS integration");
  std::printf("link: 1 Mbit/s, 5 ms; payload compressibility 0.9\n");
  std::printf("%8s | %13s %9s | %13s %9s | %13s %9s\n", "size",
              "none:bytes", "ms", "app:bytes", "ms", "net:bytes", "ms");
  row_rule();

  for (std::size_t size : {64u, 1024u, 8192u, 65536u, 262144u}) {
    const util::Bytes data = payload(size, 0.9);
    Sample none{}, app{}, net{};

    {  // no QoS
      World world;
      world.set_link(1e6, 5 * sim::kMillisecond);
      world.client.set_default_timeout(600 * sim::kSecond);
      auto servant = std::make_shared<maqs::testing::QosEchoImpl>();
      servant->assign_characteristic(
          characteristics::compression_descriptor());
      auto ref = world.server.adapter().activate("echo", servant);
      maqs::testing::EchoStub stub(world.client, ref);
      none = run(world, stub, data);
    }
    {  // application-centered: mediator + QoS skeleton weaving
      World world;
      world.set_link(1e6, 5 * sim::kMillisecond);
      world.client.set_default_timeout(600 * sim::kSecond);
      core::ProviderRegistry providers;
      providers.add(characteristics::make_compression_provider());
      core::NegotiationService negotiation(world.server_transport, providers,
                                           world.resources);
      core::Negotiator negotiator(world.client_transport, providers);
      auto servant = std::make_shared<maqs::testing::QosEchoImpl>();
      servant->assign_characteristic(
          characteristics::compression_descriptor());
      orb::QosProfile profile;
      profile.characteristic = characteristics::compression_name();
      auto ref = world.server.adapter().activate("echo", servant, {profile});
      maqs::testing::EchoStub stub(world.client, ref);
      negotiator.negotiate(stub, characteristics::compression_name(), {});
      app = run(world, stub, data);
    }
    {  // network-centered: transport module below the ORB
      World world;
      world.set_link(1e6, 5 * sim::kMillisecond);
      world.client.set_default_timeout(600 * sim::kSecond);
      core::ProviderRegistry providers;
      providers.add(characteristics::make_compression_module_provider());
      core::NegotiationService negotiation(world.server_transport, providers,
                                           world.resources);
      core::Negotiator negotiator(world.client_transport, providers);
      auto servant = std::make_shared<maqs::testing::QosEchoImpl>();
      servant->assign_characteristic(
          characteristics::compression_descriptor());
      orb::QosProfile profile;
      profile.characteristic = characteristics::compression_name();
      auto ref = world.server.adapter().activate("echo", servant, {profile});
      maqs::testing::EchoStub stub(world.client, ref);
      negotiator.negotiate(stub, characteristics::compression_name(), {});
      net = run(world, stub, data);
    }

    std::printf("%8zu | %13llu %9.2f | %13llu %9.2f | %13llu %9.2f\n", size,
                static_cast<unsigned long long>(none.wire_bytes),
                none.virtual_ms,
                static_cast<unsigned long long>(app.wire_bytes),
                app.virtual_ms,
                static_cast<unsigned long long>(net.wire_bytes),
                net.virtual_ms);
  }
  std::printf(
      "\nshape check: app- and net-centered integration deliver the same\n"
      "wire savings; the layer choice is a separation-of-concerns choice,\n"
      "not a QoS trade-off (paper Fig. 1 / Section 4).\n");
  return 0;
}

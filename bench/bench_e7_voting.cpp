// E7 — diversity through majority votes, reusing the replication
// multicast (paper §6: "a multicast on network layer can be used for
// k-availability as well as for diversity through majority votes on
// results").
//
// The SAME transport module serves both modes; this bench quantifies the
// price of voting (wait for quorum) over failover (first reply) and the
// correctness it buys against replicas that return wrong results rather
// than crashing.
#include "bench/support.hpp"
#include "characteristics/replication.hpp"

using namespace maqs;
using namespace maqs::bench;

namespace {

class FaultyEcho : public maqs::testing::QosEchoImpl {
 public:
  std::int32_t add(std::int32_t a, std::int32_t b) override {
    return a + b + 7777;  // wrong answer, healthy timing
  }
};

struct Result {
  double correct_rate;
  double mean_ms;
  std::uint64_t late_replies;
  int no_quorum;
};

Result run(int replicas, int faulty, const std::string& mode, int quorum) {
  sim::EventLoop loop;
  net::Network network(loop, 1234);
  network.set_default_link(net::LinkParams{
      .latency = 2 * sim::kMillisecond,
      .bandwidth_bps = 10e6,
      .jitter = sim::kMillisecond});
  characteristics::register_replication_module();
  orb::Orb client(network, "client", 1);
  client.set_default_timeout(200 * sim::kMillisecond);
  core::QosTransport transport(client);
  characteristics::ReplicaGroup group(network, "grp", "svc");

  std::vector<std::unique_ptr<orb::Orb>> orbs;
  for (int i = 0; i < replicas; ++i) {
    auto orb = std::make_unique<orb::Orb>(network, "r" + std::to_string(i),
                                          9);
    std::shared_ptr<maqs::testing::QosEchoImpl> servant;
    if (i < faulty) {
      servant = std::make_shared<FaultyEcho>();
    } else {
      servant = std::make_shared<maqs::testing::QosEchoImpl>();
    }
    servant->assign_characteristic(characteristics::replication_descriptor());
    group.add_replica(*orb, servant);
    orbs.push_back(std::move(orb));
  }
  auto& module = dynamic_cast<characteristics::ReplicationModule&>(
      transport.load_module(characteristics::replication_module_name()));
  module.command("configure", {cdr::Any::from_string("grp"),
                               cdr::Any::from_string(mode),
                               cdr::Any::from_longlong(quorum)});
  transport.assign("svc", characteristics::replication_module_name());
  maqs::testing::EchoStub stub(client, group.group_reference());

  const int kRequests = 200;
  int correct = 0;
  int no_quorum = 0;
  double total_ms = 0;
  for (int i = 0; i < kRequests; ++i) {
    const sim::TimePoint t0 = loop.now();
    try {
      if (stub.add(i, i) == 2 * i) ++correct;
    } catch (const Error&) {
      ++no_quorum;
    }
    total_ms += sim::to_millis(loop.now() - t0);
    loop.run_until_idle();  // drain late replies between requests
  }
  return {static_cast<double>(correct) / kRequests, total_ms / kRequests,
          module.late_replies(), no_quorum};
}

}  // namespace

int main() {
  header("E7: failover vs majority voting against faulty replicas");
  std::printf("%9s %7s %10s %7s | %9s %9s %7s %9s\n", "replicas", "faulty",
              "mode", "quorum", "correct", "mean ms", "noquo",
              "late-rep");
  row_rule();
  struct Config {
    int replicas, faulty, quorum;
    const char* mode;
  };
  const Config configs[] = {
      {3, 0, 1, "failover"}, {3, 1, 1, "failover"}, {3, 1, 2, "voting"},
      {5, 1, 3, "voting"},   {5, 2, 3, "voting"},   {7, 2, 4, "voting"},
      {7, 3, 4, "voting"},   {3, 2, 2, "voting"},
  };
  for (const Config& config : configs) {
    const Result r =
        run(config.replicas, config.faulty, config.mode, config.quorum);
    std::printf("%9d %7d %10s %7d | %8.1f%% %9.2f %7d %9llu\n",
                config.replicas, config.faulty, config.mode, config.quorum,
                100 * r.correct_rate, r.mean_ms, r.no_quorum,
                static_cast<unsigned long long>(r.late_replies));
  }
  std::printf(
      "\nshape check: failover is fastest but believes the first (possibly\n"
      "wrong) reply; voting pays ~quorum-th reply latency and stays 100%%\n"
      "correct while faulty < quorum; 2 faulty of 3 with quorum 2 shows\n"
      "the failure mode (faulty majority / no quorum). Same multicast\n"
      "mechanism underneath in every row — the paper's reuse argument.\n");
  return 0;
}

#!/bin/sh
# Runs the chaos (fault-injection) suite across a seed matrix: loss,
# crash/restart, partition, module quarantine, overload shedding,
# mid-chunk streaming failure, bandwidth collapse, replica storms and the
# gateway_churn scenario (malformed-HTTP storm + mid-body disconnects
# against the edge gateway while gold native traffic runs). Each seed
# fixes every stochastic input of the simulator (link loss, jitter, retry
# backoff jitter, attacker junk), so a failing seed is a deterministic
# repro:
#
#   MAQS_CHAOS_SEED=<seed> ctest --test-dir <build> -R ChaosTest
#
# Usage: scripts/chaos.sh [build-dir] [seed...]
#   build-dir  defaults to ./build
#   seeds      positional seeds win; otherwise the CHAOS_SEEDS env var
#              (space-separated); otherwise the CI matrix: 41 42 1337
set -e

cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
if [ $# -gt 0 ]; then shift; fi
SEEDS=${*:-${CHAOS_SEEDS:-"41 42 1337"}}

if [ ! -d "$BUILD_DIR" ]; then
  echo "build dir '$BUILD_DIR' not found; configure first:" >&2
  echo "  cmake -B $BUILD_DIR -S ." >&2
  exit 1
fi

cmake --build "$BUILD_DIR" -j "$(nproc)" --target chaos_tests

for seed in $SEEDS; do
  echo "==== chaos suite, seed $seed ===="
  MAQS_CHAOS_SEED=$seed ctest --test-dir "$BUILD_DIR" -R ChaosTest \
    --output-on-failure
done

#!/bin/sh
# Rebuilds the tracked perf benches in Release and refreshes
# BENCH_hotpath.json at the repo root. Run after touching the request hot
# path (cdr/, orb/message, orb/orb, net/network, sim/event_loop, trace/)
# and commit the refreshed JSON alongside the change. The *_trace_off rows
# guard the zero-cost-when-off claim: they must stay within noise of the
# untraced rows.
set -e

cd "$(dirname "$0")/.."

cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j "$(nproc)" --target maqs_bench

# The gated artifact runs FIRST: the f2/f3 google-benchmark binaries peg
# the CPU long enough to trip container bandwidth throttling, and a
# throttled tail flakes the throughput floor below.
./build-release/bench/bench_f4_hotpath BENCH_hotpath.json
./build-release/bench/bench_f2_weaving
./build-release/bench/bench_f3_dispatch

# Hard gate: the streaming pipeline's allocation budget (plain add <= 8,
# woven add <= 12 allocs/request) and throughput floors (woven blob4k
# >= 100k req/s). Fails the run on regression.
./scripts/check_alloc_budget.sh BENCH_hotpath.json

echo "wrote $(pwd)/BENCH_hotpath.json"

#!/bin/sh
# Rebuilds bench_l1_population in Release and refreshes BENCH_latency.json
# at the repo root: the 1M-client / 8-shard / seed-42 headline run. All
# numbers are virtual-time, so the artifact is a pure function of
# (config, seed) — rerun after touching src/load/, src/sched/, or the orb
# request path and commit the refreshed JSON alongside the change. Pass
# smaller argv to smoke-test (see .github/workflows/ci.yml).
set -e

cd "$(dirname "$0")/.."

CLIENTS="${1:-1000000}"
SHARDS="${2:-8}"
SEED="${3:-42}"
HORIZON_S="${4:-30}"
OUT="${5:-BENCH_latency.json}"

cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j "$(nproc)" --target bench_l1_population

./build-release/bench/bench_l1_population \
    "$CLIENTS" "$SHARDS" "$SEED" "$HORIZON_S" "$OUT"

# Schema + invariant gate: required keys, per-class percentile
# monotonicity, and the headline QoS-differentiation claims.
./scripts/check_latency_schema.sh "$OUT"

echo "wrote $(pwd)/$OUT"

#!/bin/sh
# Alloc-budget regression gate over BENCH_hotpath.json.
#
# The streaming transform pipeline holds the request hot path to a fixed
# allocation budget; this check fails (exit 1) when a tracked row exceeds
# it, so CI catches an alloc regression even when throughput noise hides
# it. Budgets are allocs/request upper bounds, deliberately a little
# above steady state to absorb warm-up amortization, never throughput.
#
# It also gates throughput floors (req/s lower bounds) on the rows where a
# scale regression once slipped past the alloc budget: floors are set well
# below tracked numbers so only a real regression (not machine noise)
# trips them.
#
# usage: check_alloc_budget.sh [path-to-BENCH_hotpath.json]
set -e

json="${1:-BENCH_hotpath.json}"

python3 - "$json" <<'EOF'
import json
import sys

# (scenario, op) -> max allocs/request.
BUDGETS = {
    ("plain", "add"): 8.0,
    ("plain", "blob4k"): 8.0,
    ("plain_replicated", "add"): 8.0,
    ("woven_streaming", "add"): 12.0,
    ("woven_compress_encrypt", "add"): 12.0,
    # Steady state after a renegotiated lattice step (lz77 -> rle on the
    # fused channel): rebinding under the bumped channel version must not
    # add per-request heap traffic over the first binding.
    ("woven_renegotiated", "add"): 12.0,
    # Edge gateway rows: one keep-alive HTTP round trip including JSON
    # (or MTOM multipart) translation and the DII bridge. Tracked steady
    # state is 22/30/36 allocs/request; budgets leave ~25% headroom so a
    # copy sneaking into the parse->marshal->invoke path still trips.
    ("gateway_json", "add"): 28.0,
    ("gateway_json", "echo"): 38.0,
    ("gateway_blob4k", "blob4k"): 45.0,
}

# (scenario, op) -> min requests/sec. The woven blob4k floor is the
# regression that motivated this gate: pool fragmentation once dropped it
# under 100k req/s while allocs/request stayed flat.
FLOORS = {
    ("woven_streaming", "blob4k"): 100_000.0,
    ("plain", "add"): 200_000.0,
    # Gateway floors: tracked ~260k (json add) and ~145k (MTOM blob4k)
    # req/s; a floor breach means the HTTP front-end stopped riding the
    # zero-copy pipeline, not machine noise.
    ("gateway_json", "add"): 100_000.0,
    ("gateway_blob4k", "blob4k"): 50_000.0,
}

with open(sys.argv[1]) as f:
    rows = json.load(f)["rows"]

seen = set()
floors_seen = set()
failed = False
for row in rows:
    key = (row["scenario"], row["op"])
    if key in BUDGETS:
        seen.add(key)
        allocs = row["allocs_per_request"]
        budget = BUDGETS[key]
        status = "FAIL" if allocs > budget else "ok"
        print(f"[{status}] {key[0]}/{key[1]}: {allocs:.2f} allocs/request "
              f"(budget {budget:.0f})")
        if allocs > budget:
            failed = True
    if key in FLOORS:
        floors_seen.add(key)
        rps = row["requests_per_sec"]
        floor = FLOORS[key]
        status = "FAIL" if rps < floor else "ok"
        print(f"[{status}] {key[0]}/{key[1]}: {rps:.0f} req/s "
              f"(floor {floor:.0f})")
        if rps < floor:
            failed = True

for key in sorted(BUDGETS.keys() - seen):
    print(f"[FAIL] {key[0]}/{key[1]}: row missing from {sys.argv[1]}")
    failed = True
for key in sorted(FLOORS.keys() - floors_seen):
    print(f"[FAIL] {key[0]}/{key[1]}: row missing from {sys.argv[1]}")
    failed = True

sys.exit(1 if failed else 0)
EOF

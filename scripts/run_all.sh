#!/bin/sh
# Builds everything, runs the full test suite, every experiment, and every
# CI gate, and captures the outputs the repo's EXPERIMENTS.md refers to.
# A clean exit here means CI will be green (modulo sanitizer jobs).
set -e
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  [ -x "$b" ] && "$b"
done 2>&1 | tee bench_output.txt

# The perf gates CI runs, locally. bench_hotpath.sh rebuilds the tracked
# benches in Release, refreshes BENCH_hotpath.json at the repo root and
# runs the alloc-budget/throughput-floor gate over it (the loop above ran
# the default build's benches for the experiment tables only — its f4
# numbers are not the gated artifact).
./scripts/bench_hotpath.sh

# Latency artifact gate: schema, percentile monotonicity, per-class
# accounting and the headline QoS-differentiation claims over the tracked
# 1M-client BENCH_latency.json.
./scripts/check_latency_schema.sh BENCH_latency.json

# Chaos suite across the CI seed matrix (41 42 1337).
./scripts/chaos.sh build

#!/bin/sh
# Schema + invariant gate over BENCH_latency.json (bench_l1_population).
#
# Fails (exit 1) when the artifact drops a required key, a class's
# percentiles stop being monotone (p50 <= p99 <= p999 <= max), or the
# per-class accounting stops conserving (sent == ok+shed+timeout+error).
# For full-size runs (>= 100k clients) it additionally asserts the
# headline QoS-differentiation claims: gold's p99 holds inside its
# deadline budget while best_effort sheds real volume.
#
# usage: check_latency_schema.sh [path-to-BENCH_latency.json]
set -e

json="${1:-BENCH_latency.json}"

python3 - "$json" <<'EOF'
import json
import sys

TOP_KEYS = [
    "bench", "clients", "shards", "seed", "horizon_ms",
    "service_rate_rps_per_shard", "classes", "commands",
    "open_loop_arrivals", "sched",
]
CLASS_KEYS = [
    "class", "sent", "ok", "shed", "timeout", "error",
    "p50_us", "p99_us", "p999_us", "max_us",
    "deadline_budget_us", "p99_within_budget",
]
SCHED_KEYS = [
    "dispatched_inline", "parked", "dispatched_queued", "shed_no_tokens",
    "shed_queue_full", "shed_deadline", "shed_evicted", "overload_signals",
    "commands_bypassed",
]

with open(sys.argv[1]) as f:
    doc = json.load(f)

failed = False


def fail(msg):
    global failed
    failed = True
    print(f"[FAIL] {msg}")


for key in TOP_KEYS:
    if key not in doc:
        fail(f"missing top-level key '{key}'")
for key in SCHED_KEYS:
    if key not in doc.get("sched", {}):
        fail(f"missing sched key '{key}'")
if doc.get("bench") != "l1_population":
    fail(f"bench is {doc.get('bench')!r}, expected 'l1_population'")

by_name = {}
for cls in doc.get("classes", []):
    for key in CLASS_KEYS:
        if key not in cls:
            fail(f"class {cls.get('class')!r}: missing key '{key}'")
    name = cls.get("class")
    by_name[name] = cls
    if not (cls["p50_us"] <= cls["p99_us"] <= cls["p999_us"]
            <= cls["max_us"]):
        fail(f"class {name!r}: percentiles not monotone: "
             f"p50={cls['p50_us']} p99={cls['p99_us']} "
             f"p999={cls['p999_us']} max={cls['max_us']}")
    accounted = cls["ok"] + cls["shed"] + cls["timeout"] + cls["error"]
    if cls["sent"] != accounted:
        fail(f"class {name!r}: sent={cls['sent']} but "
             f"ok+shed+timeout+error={accounted}")
    print(f"[ok] {name}: sent={cls['sent']} ok={cls['ok']} "
          f"shed={cls['shed']} p50={cls['p50_us']}us p99={cls['p99_us']}us "
          f"p999={cls['p999_us']}us")

if len(by_name) < 3:
    fail(f"expected >= 3 QoS classes, found {sorted(by_name)}")

# Headline claims only hold once the population is large enough to
# overload the paced servers; skip for CI smoke runs.
if doc.get("clients", 0) >= 100_000 and {"gold", "best_effort"} <= set(by_name):
    gold = by_name["gold"]
    best = by_name["best_effort"]
    if not gold["p99_within_budget"]:
        fail(f"gold p99 {gold['p99_us']}us exceeds its "
             f"{gold['deadline_budget_us']}us budget")
    if best["shed"] == 0:
        fail("best_effort shed nothing despite population-scale overload")
    if best["shed"] <= gold["shed"]:
        fail(f"shedding not differentiated: best_effort={best['shed']} "
             f"<= gold={gold['shed']}")

sys.exit(1 if failed else 0)
EOF

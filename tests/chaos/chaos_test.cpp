// Chaos suite: seeded fault-injection scenarios for the resilience layer
// (retry/backoff, circuit breaking, graceful QoS degradation).
//
// Each scenario runs on the deterministic simulator: the seed (default 42,
// overridable via MAQS_CHAOS_SEED for the CI seed matrix) fixes the loss
// pattern and therefore every retry, breaker transition, and quarantine in
// the timeline.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/module.hpp"
#include "core/transform.hpp"
#include "gateway/gateway.hpp"
#include "qidl/repository.hpp"
#include "support/chaos.hpp"
#include "support/http_client.hpp"
#include "support/replica_world.hpp"
#include "trace/trace.hpp"

namespace maqs::testing {
namespace {

TEST(ChaosTest, SustainedLossRetriedWithinDeadlineBudget) {
  ChaosWorld world;
  // 5% per-attempt loss; a single lost transmission pushes the reliable
  // link's delivery past the 4ms ORB timeout, surfacing as a local
  // timeout the retry layer must absorb.
  net::LinkParams lossy;
  lossy.latency = sim::kMillisecond;
  lossy.loss_rate = 0.05;
  world.net.set_link("client", "server", lossy);
  world.client.set_default_timeout(4 * sim::kMillisecond);

  core::RetryPolicy policy = core::RetryPolicy::idempotent();
  policy.max_attempts = 5;
  policy.initial_backoff = sim::kMillisecond;
  policy.deadline_budget = 60 * sim::kMillisecond;
  core::RetryGovernor governor(policy, chaos_seed());
  world.client.set_retry_advisor(&governor);

  EchoStub stub(world.client, world.plain_ref);
  const WorkloadReport report =
      run_workload(world.loop, 200, sim::kMillisecond, [&](int i) {
        const std::string msg = "m" + std::to_string(i);
        ASSERT_EQ(stub.echo(msg), msg);
      });

  EXPECT_EQ(report.succeeded, 200);
  EXPECT_EQ(report.failed, 0);
  // The loss rate makes some timeouts (and hence retries) certain.
  EXPECT_GE(world.client.stats().timeouts, 1u);
  EXPECT_GE(world.client.stats().requests_retried, 1u);
  EXPECT_EQ(world.client.stats().requests_retried, governor.retries_granted());
  // The governor bounds elapsed+backoff by the budget; the last attempt
  // itself can add at most one more ORB timeout.
  EXPECT_LE(report.max_latency,
            policy.deadline_budget + world.client.default_timeout());
}

TEST(ChaosTest, CrashMidFlightOpensBreakerRestartRecovers) {
  ChaosWorld world;
  world.client.set_default_timeout(5 * sim::kMillisecond);
  orb::BreakerConfig breaker;
  breaker.failure_threshold = 2;
  breaker.open_period = 50 * sim::kMillisecond;
  world.client.set_breaker_config(breaker);

  EchoStub stub(world.client, world.plain_ref);
  ASSERT_EQ(stub.echo("warm"), "warm");

  // The server dies while the next request is on the wire.
  world.crash_at(world.loop.now() + 500 * sim::kMicrosecond, "server");
  const WorkloadReport during = run_workload(
      world.loop, 6, 2 * sim::kMillisecond, [&](int) { stub.echo("x"); });
  EXPECT_EQ(during.failed, 6);

  // Deterministic transition arithmetic: two timeouts trip the breaker,
  // the remaining four calls fail fast without arming a timeout.
  const orb::OrbStats& mid = world.client.stats();
  EXPECT_EQ(mid.timeouts, 2u);
  EXPECT_EQ(mid.breaker_opens, 1u);
  EXPECT_EQ(mid.breaker_fast_fails, 4u);
  EXPECT_EQ(world.client.breaker_state(world.server.endpoint()),
            orb::BreakerState::kOpen);

  // Restart with a new incarnation; once the open period elapses the
  // half-open probe goes through and closes the circuit.
  world.net.restart("server");
  world.loop.run_for(breaker.open_period);
  EXPECT_EQ(stub.echo("probe"), "probe");
  const orb::OrbStats& after = world.client.stats();
  EXPECT_EQ(after.breaker_half_opens, 1u);
  EXPECT_EQ(after.breaker_closes, 1u);
  EXPECT_EQ(world.client.breaker_state(world.server.endpoint()),
            orb::BreakerState::kClosed);
}

TEST(ChaosTest, PartitionDuringNegotiationHealsAndNegotiationSucceeds) {
  ChaosWorld world;
  world.client.set_default_timeout(5 * sim::kMillisecond);
  EchoStub stub(world.client, world.qos_ref);

  // Partition strikes while the negotiate command is in flight.
  world.partition_at(world.loop.now() + 500 * sim::kMicrosecond, "server", 1);
  EXPECT_THROW(world.negotiator.negotiate(
                   stub, flaky_name(), {{"level", cdr::Any::from_long(8)}}),
               orb::TransportError);

  // Transient partition: heal and negotiate again from a clean slate.
  world.net.heal_partitions();
  const core::Agreement agreement = world.negotiator.negotiate(
      stub, flaky_name(), {{"level", cdr::Any::from_long(8)}});
  EXPECT_EQ(agreement.int_param("level"), 8);
  EXPECT_EQ(stub.echo("after-heal"), "after-heal");
  EXPECT_GE(world.client_transport.stats().requests_via_module, 1u);
}

TEST(ChaosTest, ModuleFailuresQuarantineDegradeAndRenegotiateOnce) {
  ChaosWorld world;
  core::DegradationConfig degradation;
  degradation.failure_threshold = 3;
  degradation.quarantine_period = 500 * sim::kMillisecond;
  world.client_transport.set_degradation(degradation);

  EchoStub stub(world.client, world.qos_ref);
  const core::Agreement agreement = world.negotiator.negotiate(
      stub, flaky_name(), {{"level", cdr::Any::from_long(8)}});
  world.adaptation.manage(stub, agreement, world.lattice_policy());

  ASSERT_EQ(stub.echo("healthy"), "healthy");
  EXPECT_EQ(world.client_transport.stats().requests_via_module, 1u);

  // The assigned mechanism starts failing: every request still succeeds
  // via the plain path, the third failure quarantines the module, and the
  // quarantine triggers exactly one downward renegotiation (8 -> 4).
  world.flaky_state->failing = true;
  const WorkloadReport during = run_workload(
      world.loop, 5, sim::kMillisecond, [&](int) { stub.echo("degraded"); });
  EXPECT_EQ(during.succeeded, 5);

  const core::TransportStats& stats = world.client_transport.stats();
  EXPECT_EQ(stats.modules_quarantined, 1u);
  EXPECT_EQ(stats.requests_degraded, 5u);
  EXPECT_TRUE(world.client_transport.is_quarantined("chaos-echo"));
  EXPECT_EQ(world.adaptation.adaptations(), 1u);
  const core::Agreement* adapted =
      world.adaptation.managed_agreement(agreement.id);
  ASSERT_NE(adapted, nullptr);
  EXPECT_EQ(adapted->int_param("level"), 4);

  // The mechanism heals; after the quarantine lifts, traffic flows
  // through the module again with no further renegotiation.
  world.flaky_state->failing = false;
  world.loop.run_for(degradation.quarantine_period);
  EXPECT_EQ(stub.echo("recovered"), "recovered");
  EXPECT_EQ(world.client_transport.stats().requests_via_module, 2u);
  EXPECT_EQ(world.adaptation.adaptations(), 1u);
}

// A mechanism that stays broken across quarantine boundaries must keep
// stepping the agreement down: every quarantine episode is one violation,
// so episode N takes lattice/policy step N. Guards against the transport
// "remembering" the first quarantine and swallowing later transitions.
TEST(ChaosTest, RepeatedQuarantineEpisodesEachRenegotiateOnce) {
  ChaosWorld world;
  core::DegradationConfig degradation;
  degradation.failure_threshold = 3;
  degradation.quarantine_period = 100 * sim::kMillisecond;
  world.client_transport.set_degradation(degradation);

  EchoStub stub(world.client, world.qos_ref);
  const core::Agreement agreement = world.negotiator.negotiate(
      stub, flaky_name(), {{"level", cdr::Any::from_long(8)}});
  world.adaptation.manage(stub, agreement, world.lattice_policy());

  // Episode 1: three failures trip the quarantine, one renegotiation.
  world.flaky_state->failing = true;
  const WorkloadReport first = run_workload(
      world.loop, 4, sim::kMillisecond, [&](int) { stub.echo("ep1"); });
  EXPECT_EQ(first.succeeded, 4);
  EXPECT_EQ(world.client_transport.stats().modules_quarantined, 1u);
  EXPECT_EQ(world.adaptation.adaptations(), 1u);
  EXPECT_TRUE(world.client_transport.is_quarantined("chaos-echo"));

  // The quarantine lifts while the mechanism is still broken. The module
  // gets its fresh chance, fails three more times, and the SECOND
  // quarantine must fire — with its own renegotiation (8 -> 4 -> 2).
  world.loop.run_for(degradation.quarantine_period);
  const WorkloadReport second = run_workload(
      world.loop, 4, sim::kMillisecond, [&](int) { stub.echo("ep2"); });
  EXPECT_EQ(second.succeeded, 4);
  EXPECT_EQ(world.client_transport.stats().modules_quarantined, 2u);
  EXPECT_TRUE(world.client_transport.is_quarantined("chaos-echo"));
  EXPECT_EQ(world.adaptation.adaptations(), 2u);
  const core::Agreement* adapted =
      world.adaptation.managed_agreement(agreement.id);
  ASSERT_NE(adapted, nullptr);
  EXPECT_EQ(adapted->int_param("level"), 2);

  // Heal: after the second quarantine lifts, traffic rides the module
  // again and no further renegotiation happens.
  world.flaky_state->failing = false;
  world.loop.run_for(degradation.quarantine_period);
  EXPECT_EQ(stub.echo("healed"), "healed");
  EXPECT_EQ(world.client_transport.stats().modules_quarantined, 2u);
  EXPECT_EQ(world.adaptation.adaptations(), 2u);
}

TEST(ChaosTest, CrashedModuleCountedAsMissingNotAsFallback) {
  ChaosWorld world;
  EchoStub stub(world.client, world.qos_ref);
  const core::Agreement agreement = world.negotiator.negotiate(
      stub, flaky_name(), {{"level", cdr::Any::from_long(8)}});
  (void)agreement;

  ASSERT_EQ(stub.echo("via-module"), "via-module");
  const core::TransportStats before = world.client_transport.stats();
  EXPECT_EQ(before.requests_via_module, 1u);
  EXPECT_EQ(before.requests_module_missing, 0u);

  // The mechanism crashes out from under its binding: the assignment
  // still names the module, but the table no longer holds it. Traffic
  // must keep flowing (plain), and the broken binding must be counted
  // apart from the deliberate no-assignment fallback.
  world.client_transport.crash_module(flaky_module_name());
  ASSERT_EQ(world.client_transport.assignment("chaos-echo"),
            flaky_module_name());
  EXPECT_EQ(stub.echo("still-works"), "still-works");
  const core::TransportStats after = world.client_transport.stats();
  EXPECT_EQ(after.requests_module_missing, 1u);
  EXPECT_EQ(after.requests_fallback_plain, before.requests_fallback_plain);
  EXPECT_EQ(after.requests_via_module, 1u);
}

// The interceptor pipeline must not perturb the deterministic timeline:
// the same seeded chaos run, traced twice, exports byte-identical Chrome
// traces (span set, ordering, timestamps, retry/breaker points and all).
TEST(ChaosTest, TracedLossyRunExportsAreByteIdentical) {
  auto traced_run = [] {
    ChaosWorld world;
    trace::TraceRecorder recorder(world.loop);
    recorder.set_enabled(true);
    world.client.set_trace_recorder(&recorder);
    world.server.set_trace_recorder(&recorder);

    net::LinkParams lossy;
    lossy.latency = sim::kMillisecond;
    lossy.loss_rate = 0.05;
    world.net.set_link("client", "server", lossy);
    world.client.set_default_timeout(4 * sim::kMillisecond);

    core::RetryPolicy policy = core::RetryPolicy::idempotent();
    policy.max_attempts = 5;
    policy.initial_backoff = sim::kMillisecond;
    policy.deadline_budget = 60 * sim::kMillisecond;
    core::RetryGovernor governor(policy, chaos_seed());
    world.client.set_retry_advisor(&governor);

    EchoStub stub(world.client, world.plain_ref);
    const WorkloadReport report =
        run_workload(world.loop, 50, sim::kMillisecond, [&](int i) {
          const std::string msg = "m" + std::to_string(i);
          ASSERT_EQ(stub.echo(msg), msg);
        });
    EXPECT_EQ(report.succeeded, 50);

    std::ostringstream out;
    recorder.export_chrome_trace(out);
    return out.str();
  };

  const std::string first = traced_run();
  const std::string second = traced_run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// Overload: offered load at 2x the server's service rate for 150ms of
// virtual time, split evenly between the gold class (weight 3) and
// untagged best-effort traffic. The scheduler must (a) answer every
// request — served or rejected with maqs/OVERLOAD, never a silent drop,
// (b) shed best-effort first (including evictions under the global
// bound), (c) keep gold's completion share at its WFQ weight, and
// (d) signal overload exactly once per episode so the managed agreement
// renegotiates downward exactly once.
TEST(ChaosTest, OverloadShedsBestEffortFirstAndRenegotiatesOnce) {
  ChaosWorld world;
  EchoStub stub(world.client, world.qos_ref);
  const core::Agreement agreement = world.negotiator.negotiate(
      stub, flaky_name(), {{"level", cdr::Any::from_long(8)}});
  world.adaptation.manage(stub, agreement, world.lattice_policy());

  sched::RequestScheduler& scheduler = world.arm_scheduler(800.0);

  // 1000 rps per class against an 800 rps server: 2.5x capacity. Gold
  // alone outruns the server, so its queue overflows (the overload
  // signal); best-effort mostly expires in queue and its lazy sheds give
  // their service slots back to gold.
  StormReport gold;
  StormReport best_effort;
  const sim::TimePoint start = world.loop.now() + sim::kMillisecond;
  schedule_storm(world, "chaos-echo", 150, sim::kMillisecond, start, gold);
  schedule_storm(world, "chaos-plain", 150, sim::kMillisecond, start,
                 best_effort);
  world.loop.run_until_idle();

  // (a) Zero silent drops, and the sheds really happened.
  EXPECT_EQ(gold.answered(), gold.sent);
  EXPECT_EQ(best_effort.answered(), best_effort.sent);
  EXPECT_EQ(gold.other, 0);
  EXPECT_EQ(best_effort.other, 0);
  const sched::SchedStats& stats = scheduler.stats();
  EXPECT_GT(stats.total_shed(), 0u);
  EXPECT_EQ(stats.total_shed() + stats.total_dispatched(),
            static_cast<std::uint64_t>(gold.sent + best_effort.sent));

  // (b) Best-effort bears the shedding: it loses more than gold does,
  // and the global bound evicted queued best-effort for gold arrivals.
  EXPECT_GT(best_effort.overload, gold.overload);
  EXPECT_GT(stats.shed_evicted, 0u);

  // (c) Gold's completions hold its 3-of-4 WFQ share.
  EXPECT_GE(gold.ok * 1.0,
            0.75 * static_cast<double>(gold.ok + best_effort.ok));

  // (d) One overload episode, one signal, one downward renegotiation.
  EXPECT_EQ(stats.overload_signals, 1u);
  EXPECT_EQ(world.adaptation.adaptations(), 1u);
  const core::Agreement* adapted =
      world.adaptation.managed_agreement(agreement.id);
  ASSERT_NE(adapted, nullptr);
  EXPECT_EQ(adapted->int_param("level"), 4);
}

// ---- streaming-stage failure mid-chunk ----

/// Failure switch + forensic counters for MidChunkFaultTransform.
struct MidChunkState {
  bool armed = false;
  /// Bytes the stage scrambled in place before throwing (proves the
  /// payload was already partially transformed when the fault hit).
  std::size_t scrambled_before_throw = 0;
  int forward_runs = 0;
};

/// A streaming stage that dies partway through its chunk walk: it
/// scrambles the first chunks of the payload in place and then throws,
/// leaving the body half-transformed. Healthy (disarmed) it is the
/// identity transform, so recovered traffic flows through the module.
class MidChunkFaultTransform final : public core::StreamingTransform {
 public:
  explicit MidChunkFaultTransform(std::shared_ptr<MidChunkState> state)
      : state_(std::move(state)) {}

  const std::string& label() const override {
    static const std::string kLabel = "chaos.midchunk";
    return kLabel;
  }
  std::size_t forward_overhead() const noexcept override { return 0; }

  void forward(core::ChainBuf& buf, const core::TransformContext&) override {
    ++state_->forward_runs;
    if (!state_->armed) return;
    std::span<std::uint8_t> data = buf.mutable_span();
    constexpr std::size_t kChunk = 64;
    std::size_t done = 0;
    while (done < data.size()) {
      const std::size_t n = std::min(kChunk, data.size() - done);
      for (std::size_t i = 0; i < n; ++i) data[done + i] ^= 0xA5;
      done += n;
      if (done >= 2 * kChunk) {
        state_->scrambled_before_throw = done;
        throw core::QosError("chaos: stage failed mid-chunk");
      }
    }
    state_->scrambled_before_throw = done;
    throw core::QosError("chaos: stage failed mid-chunk");
  }

  void reverse(core::ChainBuf&, const core::TransformContext&) override {}

 private:
  std::shared_ptr<MidChunkState> state_;
};

/// Module wrapping the faulty stage in a real TransformChain, exercising
/// the same streaming pipeline the compression/encryption modules use.
class MidChunkModule final : public core::QosModule {
 public:
  explicit MidChunkModule(std::shared_ptr<MidChunkState> state)
      : core::QosModule("chaos.midchunk.module"), stage_(std::move(state)) {
    chain_.add(&stage_);
  }

  void transform_request(orb::RequestMessage& req) override {
    chain_.run_forward(req.body, {req.request_id, false});
  }

 private:
  MidChunkFaultTransform stage_;
  core::TransformChain chain_;
};

TEST(ChaosTest, StreamingStageMidChunkFailureQuarantinesAndRoutesPlain) {
  const std::string module_name = "chaos.midchunk.module";
  auto state = std::make_shared<MidChunkState>();
  auto& registry = core::ModuleFactoryRegistry::instance();
  registry.register_factory(module_name, [state] {
    return std::make_unique<MidChunkModule>(state);
  });

  {
    ChaosWorld world;
    core::DegradationConfig degradation;
    degradation.failure_threshold = 2;
    degradation.quarantine_period = 500 * sim::kMillisecond;
    world.client_transport.set_degradation(degradation);
    world.client_transport.load_module(module_name);
    world.client_transport.assign("chaos-echo", module_name);
    // The server side must know the module too: once the stage heals,
    // frames arrive stamped with its name for restore_request.
    world.server_transport.load_module(module_name);

    EchoStub stub(world.client, world.qos_ref);
    util::Rng rng(chaos_seed());
    util::Bytes payload(1024);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());

    // The stage dies mid-walk on every attempt; the transport's pristine
    // copy must keep each request intact on the plain fallback even
    // though the module half-scrambled its view of the body.
    state->armed = true;
    ASSERT_EQ(stub.blob(payload), payload);
    EXPECT_GT(state->scrambled_before_throw, 0u);
    EXPECT_LT(state->scrambled_before_throw, payload.size());
    ASSERT_EQ(stub.blob(payload), payload);

    const core::TransportStats& stats = world.client_transport.stats();
    EXPECT_EQ(stats.requests_degraded, 2u);
    EXPECT_EQ(stats.modules_quarantined, 1u);
    EXPECT_EQ(stats.requests_via_module, 0u);
    EXPECT_TRUE(world.client_transport.is_quarantined("chaos-echo"));

    // Quarantined: traffic routes plain without touching the module.
    ASSERT_EQ(stub.blob(payload), payload);
    EXPECT_EQ(world.client_transport.stats().requests_degraded, 3u);
    EXPECT_EQ(state->forward_runs, 2);

    // The stage heals; after the quarantine lifts the module carries
    // traffic again (its healthy transform is the identity).
    state->armed = false;
    world.loop.run_for(degradation.quarantine_period);
    ASSERT_EQ(stub.blob(payload), payload);
    EXPECT_EQ(world.client_transport.stats().requests_via_module, 1u);
    EXPECT_FALSE(world.client_transport.is_quarantined("chaos-echo"));
  }

  registry.unregister(module_name);
}

// ---- bandwidth_collapse (negotiated algorithm walk under pressure) ----

/// Shared bandwidth_collapse timeline: compression + encryption weave one
/// fused channel on the stream servant, then the bandwidth budget
/// collapses twice mid-workload. Each collapse sheds the compression
/// reservation (the only bandwidth holder), the violation reaches the
/// adaptation manager, and the lattice policy renegotiates exactly one
/// algorithm step down — lz77 -> rle -> none — while gold traffic keeps
/// flowing through the woven compress+encrypt path. `mismatches` counts
/// silently corrupted round-trips (decode errors surface as workload
/// failures instead).
struct BandwidthCollapseOutcome {
  WorkloadReport report;
  int mismatches = 0;
  std::uint64_t adaptations = 0;
  std::string final_algorithm;
  std::int64_t final_version = 0;
};

BandwidthCollapseOutcome run_bandwidth_collapse(ChaosWorld& world) {
  BandwidthCollapseOutcome outcome;
  EchoStub stub(world.client, world.stream_ref);
  const core::Agreement compression = world.negotiator.negotiate(
      stub, characteristics::compression_name(),
      {{"level", cdr::Any::from_long(8)}});
  world.negotiator.negotiate(
      stub, characteristics::encryption_name(),
      {{"psk", cdr::Any::from_string("bandwidth-collapse")}});
  world.adaptation.manage(stub, compression, world.lattice_policy());

  // Compressible payload, comfortably above min_size (64).
  util::Bytes payload;
  while (payload.size() < 2048) {
    for (char c : std::string("stream-frame temperature=21.5C ")) {
      payload.push_back(static_cast<std::uint8_t>(c));
    }
  }

  // The collapses land between workload iterations: first below lz77's
  // bandwidth demand (48), then below rle's (16). none (4) always fits.
  world.at(world.loop.now() + 10 * sim::kMillisecond, [&world] {
    world.resources.set_capacity("bandwidth", 40.0);
    world.negotiation.shed_overload("bandwidth");
  });
  world.at(world.loop.now() + 25 * sim::kMillisecond, [&world] {
    world.resources.set_capacity("bandwidth", 10.0);
    world.negotiation.shed_overload("bandwidth");
  });

  outcome.report = run_workload(world.loop, 40, sim::kMillisecond, [&](int) {
    if (stub.blob(payload) != payload) ++outcome.mismatches;
  });
  outcome.adaptations = world.adaptation.adaptations();
  if (const core::Agreement* adapted =
          world.adaptation.managed_agreement(compression.id)) {
    outcome.final_algorithm = adapted->string_param("algorithm");
    outcome.final_version = adapted->version();
  }
  return outcome;
}

TEST(ChaosTest, BandwidthCollapseWalksCompressionLatticeWithoutCorruption) {
  ChaosWorld world;
  const BandwidthCollapseOutcome outcome = run_bandwidth_collapse(world);
  // The acceptance bar: zero failed gold requests and zero corrupted
  // round-trips although the wire format changed twice under traffic.
  EXPECT_EQ(outcome.report.succeeded, 40);
  EXPECT_EQ(outcome.report.failed, 0);
  EXPECT_EQ(outcome.mismatches, 0);
  // Two collapses, two violations, two lattice steps.
  EXPECT_EQ(outcome.adaptations, 2u);
  EXPECT_EQ(outcome.final_algorithm, "none");
  EXPECT_EQ(outcome.final_version, 3);  // v1 + one renegotiation per collapse
}

// The whole collapse timeline — negotiations, sheds, violations,
// renegotiated epoch rotations — is a pure function of the chaos seed:
// two traced runs export byte-identical Chrome traces.
TEST(ChaosTest, BandwidthCollapseTraceExportsAreByteIdentical) {
  auto traced_run = [] {
    ChaosWorld world;
    trace::TraceRecorder recorder(world.loop);
    recorder.set_enabled(true);
    world.client.set_trace_recorder(&recorder);
    world.server.set_trace_recorder(&recorder);
    const BandwidthCollapseOutcome outcome = run_bandwidth_collapse(world);
    EXPECT_EQ(outcome.report.failed, 0);
    EXPECT_EQ(outcome.mismatches, 0);
    EXPECT_EQ(outcome.final_algorithm, "none");
    std::ostringstream out;
    recorder.export_chrome_trace(out);
    return out.str();
  };

  const std::string first = traced_run();
  const std::string second = traced_run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// replica_storm: a gold-class workload rides a three-replica group through
// a best-effort request storm while two replicas crash mid-run. The
// acceptance bar is absolute — zero failed gold requests: the selector's
// failover (timeout-gated as idempotent, CIRCUIT_OPEN always) re-targets
// every affected invocation onto a live replica, and quarantine plus the
// per-(endpoint, profile) breakers keep later selections away from the
// dead ones.
naming::SelectorConfig replica_storm_selector() {
  naming::SelectorConfig config;
  config.failover_on_timeout = true;  // echo is idempotent
  config.quarantine_period = sim::kSecond;
  return config;
}

void run_replica_storm(ReplicaWorld& world, WorkloadReport& gold,
                       StormReport& bulk) {
  world.arm_schedulers(/*service_rps=*/4000.0);
  world.register_all();
  world.start_heartbeats(25 * sim::kMillisecond);
  const orb::ObjRef ref = world.lookup();
  ASSERT_EQ(ref.profile_count(), 3u);

  world.client.set_default_timeout(8 * sim::kMillisecond);
  orb::BreakerConfig breaker;
  breaker.failure_threshold = 1;
  breaker.open_period = sim::kSecond;
  world.client.set_breaker_config(breaker);

  // Best-effort storm: async requests against every replica's bulk
  // servant, one per millisecond for 100ms. Requests to crashed replicas
  // time out or fast-fail — only the gold class must stay spotless.
  for (int i = 0; i < 100; ++i) {
    world.loop.schedule(i * sim::kMillisecond, [&world, &bulk, i] {
      const std::size_t r = static_cast<std::size_t>(i) % 3;
      orb::RequestMessage req;
      req.operation = "echo";
      req.object_key = "bulk-" + std::to_string(r + 1);
      cdr::Encoder enc;
      enc.write_string("b" + std::to_string(i));
      req.body = enc.take();
      ++bulk.sent;
      world.client.send_request(
          world.replicas[r].orb->endpoint(), std::move(req),
          [&bulk](const orb::ReplyMessage& rep) {
            if (rep.status == orb::ReplyStatus::kOk) {
              ++bulk.ok;
            } else if (rep.exception.rfind(sched::kOverloadException, 0) ==
                       0) {
              ++bulk.overload;
            } else {
              ++bulk.other;
            }
          });
    });
  }

  // Two of three replicas die mid-storm.
  world.crash_at(world.loop.now() + 30 * sim::kMillisecond, "server-1");
  world.crash_at(world.loop.now() + 60 * sim::kMillisecond, "server-2");

  EchoStub stub(world.client, ref);
  gold = run_workload(world.loop, 150, sim::kMillisecond, [&](int i) {
    const std::string msg = "g" + std::to_string(i);
    ASSERT_EQ(stub.echo(msg), msg);
  });
  world.loop.run_for(100 * sim::kMillisecond);  // drain storm stragglers
}

TEST(ChaosTest, ReplicaStormZeroGoldFailuresWhileReplicasCrash) {
  ReplicaWorld world(3, chaos_seed(), replica_storm_selector());
  WorkloadReport gold;
  StormReport bulk;
  run_replica_storm(world, gold, bulk);

  // The acceptance bar: every gold request succeeded although two of the
  // three replicas crashed mid-run.
  EXPECT_EQ(gold.attempted, 150);
  EXPECT_EQ(gold.succeeded, 150);
  EXPECT_EQ(gold.failed, 0);
  EXPECT_GE(world.selector.stats().failovers, 1u);
  // The survivor carried the tail of the workload.
  EXPECT_GT(world.replicas[2].servant->calls, 80);
  // No silent drops in the storm either: served, shed, or failed — every
  // request was answered.
  EXPECT_EQ(bulk.answered(), bulk.sent);
  // The directory noticed the crashes: only the survivor holds a lease.
  world.loop.run_for(sim::kSecond);
  EXPECT_EQ(world.directory->member_count(kReplicaService), 1u);
}

// The replica_storm timeline — selections, failovers, breaker transitions,
// scheduler decisions, heartbeats — is a pure function of the chaos seed:
// two traced runs export byte-identical Chrome traces.
TEST(ChaosTest, ReplicaStormTraceExportsAreByteIdentical) {
  auto traced_run = [] {
    ReplicaWorld world(3, chaos_seed(), replica_storm_selector());
    trace::TraceRecorder recorder(world.loop);
    recorder.set_enabled(true);
    world.client.set_trace_recorder(&recorder);
    for (auto& replica : world.replicas) {
      replica.orb->set_trace_recorder(&recorder);
    }
    world.registry.set_trace_recorder(&recorder);

    WorkloadReport gold;
    StormReport bulk;
    run_replica_storm(world, gold, bulk);
    EXPECT_EQ(gold.failed, 0);

    std::ostringstream out;
    recorder.export_chrome_trace(out);
    return out.str();
  };

  const std::string first = traced_run();
  const std::string second = traced_run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// ---- gateway_churn (edge abuse while native gold traffic runs) ----

/// Shared gateway_churn timeline: an edge gateway bridges HTTP tenants
/// into the chaos world while (a) attacker clients fire a seeded
/// malformed-request storm, (b) torn clients open requests, send half a
/// body, and crash mid-transfer, and (c) a legitimate HTTP tenant and a
/// native gold workload run through the same scheduled server. The bar:
/// zero failed gold requests, every malformed frame answered 400 (never a
/// crash or hang), abandoned connections reaped, and the whole timeline a
/// pure function of the chaos seed.
struct GatewayChurnOutcome {
  WorkloadReport gold;
  int malformed_sent = 0;
  int malformed_answered_400 = 0;
  int legit_sent = 0;
  int legit_ok = 0;
  int legit_overload = 0;
  int legit_other = 0;
  gateway::GatewayStats stats;
  std::size_t open_after_sweep = 0;
};

/// Runs the scenario; when `trace_out` is non-null, records the whole run
/// and exports the Chrome trace into it (the recorder must share the
/// world's loop, so it lives here).
GatewayChurnOutcome run_gateway_churn(std::string* trace_out) {
  GatewayChurnOutcome out;
  ChaosWorld world;
  world.arm_scheduler(/*service_rps=*/2000.0);
  std::unique_ptr<trace::TraceRecorder> recorder;
  if (trace_out != nullptr) {
    recorder = std::make_unique<trace::TraceRecorder>(world.loop);
    recorder->set_enabled(true);
    world.client.set_trace_recorder(recorder.get());
    world.server.set_trace_recorder(recorder.get());
  }

  // The edge node: its own ORB so HTTP tenants ride the full client
  // interceptor chain toward the server.
  orb::Orb edge(world.net, "edge", 9100);
  if (recorder != nullptr) edge.set_trace_recorder(recorder.get());
  const qidl::InterfaceRepository repo =
      qidl::InterfaceRepository::build(qidl::analyze(kGatewayEchoQidl));
  gateway::GatewayConfig config;
  config.idle_timeout = 100 * sim::kMillisecond;
  gateway::Gateway gw(edge, repo, 8080, config);
  gw.expose("Echo", world.plain_ref);

  const sim::TimePoint start = world.loop.now() + sim::kMillisecond;

  // (a) Malformed-request storm: three attackers, ten seeded junk frames
  // each. Every frame must come back 400 on a freshly poisoned-and-closed
  // connection.
  constexpr int kAttackers = 3;
  constexpr int kFramesPerAttacker = 10;
  util::Rng rng(chaos_seed());
  std::vector<std::unique_ptr<HttpTestClient>> attackers;
  for (int i = 0; i < kAttackers; ++i) {
    attackers.push_back(std::make_unique<HttpTestClient>(
        world.net, net::Address{"attacker-" + std::to_string(i), 80},
        gw.endpoint()));
    for (int j = 0; j < kFramesPerAttacker; ++j) {
      std::string junk = "JUNK";
      const std::size_t n = 4 + rng.next_below(12);
      for (std::size_t k = 0; k < n; ++k) {
        junk.push_back(static_cast<char>('a' + rng.next_below(26)));
      }
      junk += "\r\n\r\n";
      world.at(start + j * 7 * sim::kMillisecond + i * 2 * sim::kMillisecond,
               [client = attackers.back().get(), junk] {
                 client->send_text(junk);
               });
      ++out.malformed_sent;
    }
  }

  // (b) Mid-body disconnects: a well-formed head, half a body, then the
  // client node dies. The gateway must neither answer nor hang — the
  // half-open connection is reaped by the idle sweep.
  std::vector<std::unique_ptr<HttpTestClient>> torn;
  for (int i = 0; i < 2; ++i) {
    const std::string node = "torn-" + std::to_string(i);
    torn.push_back(std::make_unique<HttpTestClient>(
        world.net, net::Address{node, 80}, gw.endpoint()));
    world.at(start + (5 + 4 * i) * sim::kMillisecond,
             [client = torn.back().get()] {
               client->send_text(
                   "POST /api/Echo/echo HTTP/1.1\r\n"
                   "content-length: 64\r\n\r\npartial-");
             });
    world.crash_at(start + (40 + 10 * i) * sim::kMillisecond, node);
  }

  // (c) A legitimate HTTP tenant keeps calling through the storm.
  HttpTestClient web(world.net, net::Address{"web", 80}, gw.endpoint());
  constexpr int kLegit = 20;
  for (int i = 0; i < kLegit; ++i) {
    world.at(start + i * 5 * sim::kMillisecond, [&web, i] {
      web.send_raw(HttpTestClient::encode_request(
          "POST", "/api/Echo/add",
          "{\"a\":" + std::to_string(i) + ",\"b\":1}"));
    });
    ++out.legit_sent;
  }

  // Native gold workload through the same scheduled server.
  EchoStub stub(world.client, world.qos_ref);
  out.gold = run_workload(world.loop, 150, sim::kMillisecond, [&](int i) {
    const std::string msg = "g" + std::to_string(i);
    EXPECT_EQ(stub.echo(msg), msg);
  });
  world.loop.run_until_idle();

  for (auto& attacker : attackers) {
    while (auto resp = attacker->await_response(sim::kMillisecond)) {
      if (resp->status == 400) ++out.malformed_answered_400;
    }
  }
  while (auto resp = web.await_response(sim::kMillisecond)) {
    if (resp->status == 200) {
      ++out.legit_ok;
    } else if (resp->status == 503) {
      ++out.legit_overload;
    } else {
      ++out.legit_other;
    }
  }

  // The abandoned mid-body connections outlive the storm until the idle
  // sweep collects them.
  world.loop.run_for(config.idle_timeout + sim::kMillisecond);
  gw.sweep_idle();
  out.open_after_sweep = gw.open_connections();
  out.stats = gw.stats();

  if (trace_out != nullptr) {
    std::ostringstream exported;
    recorder->export_chrome_trace(exported);
    *trace_out = exported.str();
    world.client.set_trace_recorder(nullptr);
    world.server.set_trace_recorder(nullptr);
    edge.set_trace_recorder(nullptr);
  }
  return out;
}

TEST(ChaosTest, GatewayChurnGoldSpotlessAndEveryMalformedAnswered) {
  const GatewayChurnOutcome out = run_gateway_churn(nullptr);

  // Zero failed gold requests although the storm shared the server.
  EXPECT_EQ(out.gold.attempted, 150);
  EXPECT_EQ(out.gold.succeeded, 150);
  EXPECT_EQ(out.gold.failed, 0);

  // Every malformed frame was answered 400 — never a crash or a hang.
  EXPECT_EQ(out.malformed_answered_400, out.malformed_sent);
  EXPECT_EQ(out.stats.malformed,
            static_cast<std::uint64_t>(out.malformed_sent));

  // The legitimate tenant was answered in full: served, or shed with an
  // honest 503 — nothing dropped, nothing unexplained.
  EXPECT_EQ(out.legit_ok + out.legit_overload, out.legit_sent);
  EXPECT_EQ(out.legit_other, 0);
  EXPECT_GE(out.legit_ok, out.legit_sent / 2);

  // The mid-body disconnects left half-open connections; the idle sweep
  // collected every one.
  EXPECT_GE(out.stats.idle_reaped, 2u);
  EXPECT_EQ(out.open_after_sweep, 0u);
}

// The churn timeline — storm arrivals, gateway invocations, scheduler
// decisions, sweeps — is a pure function of the chaos seed: two traced
// runs export byte-identical Chrome traces.
TEST(ChaosTest, GatewayChurnTraceExportsAreByteIdentical) {
  auto traced_run = [] {
    std::string exported;
    const GatewayChurnOutcome out = run_gateway_churn(&exported);
    EXPECT_EQ(out.gold.failed, 0);
    EXPECT_EQ(out.malformed_answered_400, out.malformed_sent);
    return exported;
  };

  const std::string first = traced_run();
  const std::string second = traced_run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace maqs::testing

// Encoder/Decoder primitive round-trips and malformed-stream handling.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "cdr/decoder.hpp"
#include "cdr/encoder.hpp"

namespace maqs::cdr {
namespace {

TEST(Cdr, PrimitiveRoundTrip) {
  Encoder enc;
  enc.write_u8(0xAB);
  enc.write_bool(true);
  enc.write_bool(false);
  enc.write_u16(0xBEEF);
  enc.write_u32(0xDEADBEEF);
  enc.write_u64(0x0123456789ABCDEFULL);
  enc.write_i16(-12345);
  enc.write_i32(-123456789);
  enc.write_i64(-1234567890123456789LL);
  enc.write_f32(3.5f);
  enc.write_f64(-2.25);
  enc.write_string("héllo");
  enc.write_bytes(util::Bytes{1, 2, 3});

  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.read_u8(), 0xAB);
  EXPECT_TRUE(dec.read_bool());
  EXPECT_FALSE(dec.read_bool());
  EXPECT_EQ(dec.read_u16(), 0xBEEF);
  EXPECT_EQ(dec.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(dec.read_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(dec.read_i16(), -12345);
  EXPECT_EQ(dec.read_i32(), -123456789);
  EXPECT_EQ(dec.read_i64(), -1234567890123456789LL);
  EXPECT_EQ(dec.read_f32(), 3.5f);
  EXPECT_EQ(dec.read_f64(), -2.25);
  EXPECT_EQ(dec.read_string(), "héllo");
  EXPECT_EQ(dec.read_bytes(), (util::Bytes{1, 2, 3}));
  EXPECT_TRUE(dec.at_end());
}

TEST(Cdr, ExtremeValues) {
  Encoder enc;
  enc.write_i64(std::numeric_limits<std::int64_t>::min());
  enc.write_i64(std::numeric_limits<std::int64_t>::max());
  enc.write_f64(std::numeric_limits<double>::infinity());
  enc.write_f64(std::numeric_limits<double>::denorm_min());
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.read_i64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(dec.read_i64(), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(dec.read_f64(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(dec.read_f64(), std::numeric_limits<double>::denorm_min());
}

TEST(Cdr, NanRoundTripsBitExact) {
  Encoder enc;
  enc.write_f64(std::numeric_limits<double>::quiet_NaN());
  Decoder dec(enc.buffer());
  EXPECT_TRUE(std::isnan(dec.read_f64()));
}

TEST(Cdr, EmptyStringAndBytes) {
  Encoder enc;
  enc.write_string("");
  enc.write_bytes(util::Bytes{});
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.read_string(), "");
  EXPECT_TRUE(dec.read_bytes().empty());
}

TEST(Cdr, StringWithEmbeddedNul) {
  Encoder enc;
  const std::string s("a\0b", 3);
  enc.write_string(s);
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.read_string(), s);
}

TEST(Cdr, UnderflowThrows) {
  Encoder enc;
  enc.write_u16(7);
  Decoder dec(enc.buffer());
  EXPECT_THROW(dec.read_u32(), CdrError);
}

TEST(Cdr, TruncatedStringThrows) {
  Encoder enc;
  enc.write_u32(100);  // claims 100 bytes follow
  enc.write_u8('x');
  Decoder dec(enc.buffer());
  EXPECT_THROW(dec.read_string(), CdrError);
}

TEST(Cdr, ExpectEndRejectsTrailingBytes) {
  Encoder enc;
  enc.write_u8(1);
  enc.write_u8(2);
  Decoder dec(enc.buffer());
  dec.read_u8();
  EXPECT_THROW(dec.expect_end(), CdrError);
  dec.read_u8();
  EXPECT_NO_THROW(dec.expect_end());
}

TEST(Cdr, RemainingTracksPosition) {
  Encoder enc;
  enc.write_u32(1);
  enc.write_u32(2);
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.remaining(), 8u);
  dec.read_u32();
  EXPECT_EQ(dec.remaining(), 4u);
}

TEST(Cdr, WriteRawHasNoLengthPrefix) {
  Encoder enc;
  enc.write_raw(util::Bytes{9, 8, 7});
  EXPECT_EQ(enc.size(), 3u);
}

TEST(Cdr, TakeMovesBuffer) {
  Encoder enc;
  enc.write_u32(42);
  util::Bytes buf = enc.take();
  EXPECT_EQ(buf.size(), 4u);
}

}  // namespace
}  // namespace maqs::cdr

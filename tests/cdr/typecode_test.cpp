#include "cdr/typecode.hpp"

#include <gtest/gtest.h>

#include "cdr/decoder.hpp"
#include "cdr/encoder.hpp"

namespace maqs::cdr {
namespace {

TEST(TypeCode, BasicSingletonsShareIdentity) {
  EXPECT_EQ(TypeCode::long_tc().get(), TypeCode::long_tc().get());
  EXPECT_EQ(TypeCode::string_tc().get(), TypeCode::string_tc().get());
}

TEST(TypeCode, KindNames) {
  EXPECT_EQ(TypeCode::long_tc()->to_string(), "long");
  EXPECT_EQ(TypeCode::sequence_tc(TypeCode::octet_tc())->to_string(),
            "sequence<octet>");
}

TEST(TypeCode, StructuralEqualityForSequences) {
  auto a = TypeCode::sequence_tc(TypeCode::long_tc());
  auto b = TypeCode::sequence_tc(TypeCode::long_tc());
  auto c = TypeCode::sequence_tc(TypeCode::short_tc());
  EXPECT_TRUE(a->equal(*b));
  EXPECT_FALSE(a->equal(*c));
}

TEST(TypeCode, StructEquality) {
  auto make = [](const std::string& name) {
    return TypeCode::struct_tc(
        name, {{"x", TypeCode::long_tc()}, {"y", TypeCode::string_tc()}});
  };
  EXPECT_TRUE(make("P")->equal(*make("P")));
  EXPECT_FALSE(make("P")->equal(*make("Q")));
  auto different_member = TypeCode::struct_tc(
      "P", {{"x", TypeCode::long_tc()}, {"z", TypeCode::string_tc()}});
  EXPECT_FALSE(make("P")->equal(*different_member));
}

TEST(TypeCode, EnumEquality) {
  auto a = TypeCode::enum_tc("Color", {"red", "green"});
  auto b = TypeCode::enum_tc("Color", {"red", "green"});
  auto c = TypeCode::enum_tc("Color", {"red", "blue"});
  EXPECT_TRUE(a->equal(*b));
  EXPECT_FALSE(a->equal(*c));
}

TEST(TypeCode, ObjRefEqualityByRepoId) {
  auto a = TypeCode::objref_tc("IDL:demo/Hello:1.0");
  auto b = TypeCode::objref_tc("IDL:demo/Hello:1.0");
  auto c = TypeCode::objref_tc("IDL:demo/Other:1.0");
  EXPECT_TRUE(a->equal(*b));
  EXPECT_FALSE(a->equal(*c));
}

TEST(TypeCode, DifferentKindsNeverEqual) {
  EXPECT_FALSE(TypeCode::long_tc()->equal(*TypeCode::short_tc()));
}

TEST(TypeCode, NullSequenceElementThrows) {
  EXPECT_THROW(TypeCode::sequence_tc(nullptr), Error);
}

TEST(TypeCode, EmptyEnumThrows) {
  EXPECT_THROW(TypeCode::enum_tc("E", {}), Error);
}

TEST(TypeCode, MarshalingRoundTripsComposite) {
  auto tc = TypeCode::struct_tc(
      "Sample",
      {{"id", TypeCode::longlong_tc()},
       {"tags", TypeCode::sequence_tc(TypeCode::string_tc())},
       {"color", TypeCode::enum_tc("Color", {"r", "g", "b"})},
       {"peer", TypeCode::objref_tc("IDL:x/Y:1.0")}});
  Encoder enc;
  tc->encode(enc);
  Decoder dec(enc.buffer());
  auto back = TypeCode::decode(dec);
  EXPECT_TRUE(dec.at_end());
  EXPECT_TRUE(tc->equal(*back));
}

TEST(TypeCode, MarshalingRoundTripsBasics) {
  for (auto tc : {TypeCode::void_tc(), TypeCode::boolean_tc(),
                  TypeCode::octet_tc(), TypeCode::short_tc(),
                  TypeCode::long_tc(), TypeCode::longlong_tc(),
                  TypeCode::float_tc(), TypeCode::double_tc(),
                  TypeCode::string_tc()}) {
    Encoder enc;
    tc->encode(enc);
    Decoder dec(enc.buffer());
    EXPECT_TRUE(tc->equal(*TypeCode::decode(dec)));
  }
}

TEST(TypeCode, DecodeRejectsBadKindOctet) {
  Encoder enc;
  enc.write_u8(0xFF);
  Decoder dec(enc.buffer());
  EXPECT_THROW(TypeCode::decode(dec), CdrError);
}

TEST(TypeCode, NestedSequenceRoundTrip) {
  auto tc = TypeCode::sequence_tc(
      TypeCode::sequence_tc(TypeCode::double_tc()));
  Encoder enc;
  tc->encode(enc);
  Decoder dec(enc.buffer());
  EXPECT_TRUE(tc->equal(*TypeCode::decode(dec)));
}

}  // namespace
}  // namespace maqs::cdr

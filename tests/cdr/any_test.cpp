#include "cdr/any.hpp"

#include <gtest/gtest.h>

#include "cdr/decoder.hpp"
#include "cdr/encoder.hpp"

namespace maqs::cdr {
namespace {

Any roundtrip(const Any& a) {
  Encoder enc;
  a.encode(enc);
  Decoder dec(enc.buffer());
  Any back = Any::decode(dec);
  EXPECT_TRUE(dec.at_end());
  return back;
}

TEST(Any, DefaultIsVoid) {
  Any a;
  EXPECT_EQ(a.kind(), TCKind::kVoid);
  EXPECT_EQ(a, Any::make_void());
}

TEST(Any, ScalarFactoriesAndAccessors) {
  EXPECT_EQ(Any::from_bool(true).as_bool(), true);
  EXPECT_EQ(Any::from_octet(200).as_octet(), 200);
  EXPECT_EQ(Any::from_short(-7).as_short(), -7);
  EXPECT_EQ(Any::from_long(123456).as_long(), 123456);
  EXPECT_EQ(Any::from_longlong(-5e15).as_longlong(), -5000000000000000LL);
  EXPECT_EQ(Any::from_float(1.5f).as_float(), 1.5f);
  EXPECT_EQ(Any::from_double(2.75).as_double(), 2.75);
  EXPECT_EQ(Any::from_string("abc").as_string(), "abc");
}

TEST(Any, WrongAccessorThrowsTypeMismatch) {
  EXPECT_THROW(Any::from_long(1).as_string(), TypeMismatch);
  EXPECT_THROW(Any::from_string("x").as_long(), TypeMismatch);
  EXPECT_THROW(Any::from_bool(true).as_double(), TypeMismatch);
}

TEST(Any, AsIntegerWidens) {
  EXPECT_EQ(Any::from_octet(5).as_integer(), 5);
  EXPECT_EQ(Any::from_short(-2).as_integer(), -2);
  EXPECT_EQ(Any::from_long(7).as_integer(), 7);
  EXPECT_EQ(Any::from_longlong(9).as_integer(), 9);
  EXPECT_EQ(Any::from_bool(true).as_integer(), 1);
  EXPECT_THROW(Any::from_double(1.0).as_integer(), TypeMismatch);
}

TEST(Any, EnumConstruction) {
  auto color = TypeCode::enum_tc("Color", {"red", "green", "blue"});
  Any a = Any::from_enum(color, 1);
  EXPECT_EQ(a.as_enum_ordinal(), 1u);
  EXPECT_EQ(a.as_enum_name(), "green");
  EXPECT_THROW(Any::from_enum(color, 3), TypeMismatch);
  EXPECT_THROW(Any::from_enum(TypeCode::long_tc(), 0), TypeMismatch);
}

TEST(Any, StructFieldCountEnforced) {
  auto point = TypeCode::struct_tc(
      "Point", {{"x", TypeCode::long_tc()}, {"y", TypeCode::long_tc()}});
  EXPECT_THROW(Any::from_struct(point, {Any::from_long(1)}), TypeMismatch);
  Any ok = Any::from_struct(point, {Any::from_long(1), Any::from_long(2)});
  EXPECT_EQ(ok.as_elements()[1].as_long(), 2);
}

TEST(Any, ScalarMarshalingRoundTrip) {
  for (const Any& a :
       {Any::make_void(), Any::from_bool(false), Any::from_octet(9),
        Any::from_short(-1), Any::from_long(42), Any::from_longlong(1LL << 40),
        Any::from_float(0.5f), Any::from_double(-1e100),
        Any::from_string("hello world")}) {
    EXPECT_EQ(roundtrip(a), a) << a.to_string();
  }
}

TEST(Any, CompositeMarshalingRoundTrip) {
  auto color = TypeCode::enum_tc("Color", {"red", "green", "blue"});
  auto point = TypeCode::struct_tc(
      "Point", {{"x", TypeCode::long_tc()},
                {"label", TypeCode::string_tc()},
                {"c", color}});
  Any p = Any::from_struct(
      point, {Any::from_long(3), Any::from_string("origin"),
              Any::from_enum(color, 2)});
  Any seq = Any::from_sequence(point->members().empty() ? point : point,
                               {p, p});
  EXPECT_EQ(roundtrip(p), p);
  EXPECT_EQ(roundtrip(seq), seq);
}

TEST(Any, EmptySequenceRoundTrip) {
  Any seq = Any::from_sequence(TypeCode::long_tc(), {});
  EXPECT_EQ(roundtrip(seq), seq);
  EXPECT_TRUE(seq.as_elements().empty());
}

TEST(Any, ObjRefRoundTrip) {
  Any ref = Any::from_objref("IDL:demo/Hello:1.0", "IOR:cafe");
  Any back = roundtrip(ref);
  EXPECT_EQ(back.as_objref_ior(), "IOR:cafe");
  EXPECT_EQ(back.type()->name(), "IDL:demo/Hello:1.0");
}

TEST(Any, DecodeValueWithKnownType) {
  Encoder enc;
  Any::from_long(99).encode_value(enc);
  Decoder dec(enc.buffer());
  Any back = Any::decode_value(dec, TypeCode::long_tc());
  EXPECT_EQ(back.as_long(), 99);
}

TEST(Any, DecodeRejectsOutOfRangeEnumOnWire) {
  auto color = TypeCode::enum_tc("Color", {"r", "g"});
  Encoder enc;
  enc.write_u32(7);  // invalid ordinal
  Decoder dec(enc.buffer());
  EXPECT_THROW(Any::decode_value(dec, color), CdrError);
}

TEST(Any, EqualityIncludesType) {
  EXPECT_NE(Any::from_long(1), Any::from_longlong(1));
  EXPECT_EQ(Any::from_long(1), Any::from_long(1));
  EXPECT_NE(Any::from_long(1), Any::from_long(2));
}

TEST(Any, ToStringForms) {
  EXPECT_EQ(Any::from_long(42).to_string(), "long(42)");
  EXPECT_EQ(Any::from_string("s").to_string(), "\"s\"");
  auto color = TypeCode::enum_tc("Color", {"r", "g"});
  EXPECT_EQ(Any::from_enum(color, 0).to_string(), "Color::r");
}

}  // namespace
}  // namespace maqs::cdr

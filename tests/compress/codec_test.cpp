#include "compress/codec.hpp"

#include <gtest/gtest.h>

#include "compress/lz77.hpp"
#include "compress/rle.hpp"
#include "util/rng.hpp"

namespace maqs::compress {
namespace {

using util::Bytes;

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Bytes b(n);
  for (auto& byte : b) byte = static_cast<std::uint8_t>(rng.next());
  return b;
}

Bytes compressible_bytes(std::size_t n, std::uint64_t seed) {
  // Repeating phrases with occasional noise: typical structured payload.
  util::Rng rng(seed);
  const std::string phrase = "quality-of-service middleware telemetry ";
  Bytes b;
  while (b.size() < n) {
    if (rng.chance(0.1)) {
      b.push_back(static_cast<std::uint8_t>(rng.next()));
    } else {
      for (char c : phrase) {
        if (b.size() >= n) break;
        b.push_back(static_cast<std::uint8_t>(c));
      }
    }
  }
  b.resize(n);
  return b;
}

// ---- parameterized round-trip sweep over all codecs ----

class CodecRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(CodecRoundTrip, EmptyInput) {
  auto codec = make_codec(GetParam());
  EXPECT_TRUE(codec->decompress(codec->compress(Bytes{})).empty());
}

TEST_P(CodecRoundTrip, SingleByte) {
  auto codec = make_codec(GetParam());
  const Bytes in{0x42};
  EXPECT_EQ(codec->decompress(codec->compress(in)), in);
}

TEST_P(CodecRoundTrip, AllByteValues) {
  auto codec = make_codec(GetParam());
  Bytes in;
  for (int i = 0; i < 256; ++i) in.push_back(static_cast<std::uint8_t>(i));
  EXPECT_EQ(codec->decompress(codec->compress(in)), in);
}

TEST_P(CodecRoundTrip, LongUniformRun) {
  auto codec = make_codec(GetParam());
  const Bytes in(100000, 0xAA);
  EXPECT_EQ(codec->decompress(codec->compress(in)), in);
}

TEST_P(CodecRoundTrip, RandomData) {
  auto codec = make_codec(GetParam());
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Bytes in = random_bytes(4096, seed);
    EXPECT_EQ(codec->decompress(codec->compress(in)), in) << "seed " << seed;
  }
}

TEST_P(CodecRoundTrip, CompressibleData) {
  auto codec = make_codec(GetParam());
  const Bytes in = compressible_bytes(20000, 7);
  EXPECT_EQ(codec->decompress(codec->compress(in)), in);
}

TEST_P(CodecRoundTrip, ManySmallSizes) {
  auto codec = make_codec(GetParam());
  for (std::size_t n = 0; n < 64; ++n) {
    const Bytes in = random_bytes(n, 100 + n);
    EXPECT_EQ(codec->decompress(codec->compress(in)), in) << "size " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecRoundTrip,
                         ::testing::Values("identity", "rle", "lz77"));

// ---- codec-specific behaviour ----

TEST(Identity, IsByteExactAndSizePreserving) {
  IdentityCodec codec;
  const Bytes in = random_bytes(100, 1);
  EXPECT_EQ(codec.compress(in), in);
  EXPECT_EQ(codec.name(), "identity");
}

TEST(Rle, CompressesRunsWell) {
  RleCodec codec;
  const Bytes in(10000, 0x00);
  const Bytes out = codec.compress(in);
  EXPECT_LT(out.size(), 100u);  // ~40 pairs of (255, 0)
}

TEST(Rle, WorstCaseBoundedAtTwoX) {
  RleCodec codec;
  Bytes in;
  for (int i = 0; i < 1000; ++i) in.push_back(static_cast<std::uint8_t>(i));
  EXPECT_LE(codec.compress(in).size(), 2 * in.size());
}

TEST(Rle, RejectsTruncatedStream) {
  RleCodec codec;
  EXPECT_THROW(codec.decompress(Bytes{5}), CodecError);
}

TEST(Rle, RejectsZeroRun) {
  RleCodec codec;
  EXPECT_THROW(codec.decompress(Bytes{0, 0x41}), CodecError);
}

TEST(Lz77, CompressesRepetitiveTextWell) {
  Lz77Codec codec;
  const Bytes in = compressible_bytes(50000, 3);
  const Bytes out = codec.compress(in);
  EXPECT_LT(out.size(), in.size() / 3);
}

TEST(Lz77, HandlesOverlappingMatches) {
  Lz77Codec codec;
  // "abcabcabc..." forces overlapping back-references.
  Bytes in;
  for (int i = 0; i < 5000; ++i) in.push_back("abc"[i % 3]);
  EXPECT_EQ(codec.decompress(codec.compress(in)), in);
  EXPECT_LT(codec.compress(in).size(), 100u);
}

TEST(Lz77, ProbeDepthTradesRatioForSpeed) {
  const Bytes in = compressible_bytes(30000, 9);
  const auto shallow = Lz77Codec(1).compress(in);
  const auto deep = Lz77Codec(128).compress(in);
  EXPECT_LE(deep.size(), shallow.size());
  EXPECT_EQ(Lz77Codec().decompress(shallow), in);
  EXPECT_EQ(Lz77Codec().decompress(deep), in);
}

TEST(Lz77, RejectsBadTag) {
  Lz77Codec codec;
  EXPECT_THROW(codec.decompress(Bytes{0x02, 0, 0}), CodecError);
}

TEST(Lz77, RejectsOutOfWindowReference) {
  Lz77Codec codec;
  // match token: offset 10 with empty output so far
  EXPECT_THROW(codec.decompress(Bytes{0x01, 10, 0, 8, 0}), CodecError);
}

TEST(Lz77, RejectsTruncatedLiteralRun) {
  Lz77Codec codec;
  EXPECT_THROW(codec.decompress(Bytes{0x00, 10, 0, 'a'}), CodecError);
}

TEST(Lz77, RejectsZeroLengthLiteralRun) {
  Lz77Codec codec;
  EXPECT_THROW(codec.decompress(Bytes{0x00, 0, 0}), CodecError);
}

// ---- streaming-path contracts: output bounds and compress_into ----

TEST(Lz77, CompressedSizeNeverExceedsAdvertisedBound) {
  // The streaming transform sizes its arena region by
  // max_compressed_size(); the expansion guard (stored-block fallback)
  // must hold the promise even on adversarial inputs where match tokens
  // would expand the stream.
  Lz77Codec codec;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (std::size_t n : {std::size_t{4}, std::size_t{5}, std::size_t{64},
                          std::size_t{1000}, std::size_t{70000}}) {
      // Worst case for token expansion: minimum-length (4-byte) matches
      // everywhere, each costing a 5-byte token.
      util::Rng rng(seed);
      Bytes nasty(n);
      for (std::size_t i = 0; i < n; ++i) {
        nasty[i] = static_cast<std::uint8_t>((i / 4) % 2 == 0
                                                 ? 0xAB
                                                 : rng.next());
      }
      const Bytes packed = codec.compress(nasty);
      EXPECT_LE(packed.size(), codec.max_compressed_size(n))
          << "seed " << seed << " n " << n;
      EXPECT_EQ(codec.decompress(packed), nasty);
    }
  }
}

TEST(Lz77, CompressIntoMatchesCompressAndChecksCapacity) {
  Lz77Codec codec;
  const Bytes input = compressible_bytes(4096, 3);
  const Bytes via_compress = codec.compress(input);

  Bytes buf(codec.max_compressed_size(input.size()));
  const std::size_t written = codec.compress_into(input, buf);
  buf.resize(written);
  EXPECT_EQ(buf, via_compress);

  Bytes small(codec.max_compressed_size(input.size()) - 1);
  EXPECT_THROW(codec.compress_into(input, small), CodecError);
}

TEST(Rle, CompressIntoMatchesCompressAndChecksCapacity) {
  RleCodec codec;
  const Bytes input = compressible_bytes(1024, 5);
  const Bytes via_compress = codec.compress(input);

  Bytes buf(codec.max_compressed_size(input.size()));
  const std::size_t written = codec.compress_into(input, buf);
  buf.resize(written);
  EXPECT_EQ(buf, via_compress);

  Bytes small(via_compress.size() > 0 ? 1 : 0);
  EXPECT_THROW(codec.compress_into(input, small), CodecError);
}

TEST(Lz77, IncompressibleInputStaysWithinStoredForm) {
  // Pure noise: no matches survive, so the stored form (3-byte run
  // headers) is the worst case and the guard must keep us at it.
  Lz77Codec codec;
  const Bytes noise = random_bytes(100000, 17);
  const Bytes packed = codec.compress(noise);
  EXPECT_LE(packed.size(), codec.max_compressed_size(noise.size()));
  EXPECT_EQ(codec.decompress(packed), noise);
}

TEST(Factory, UnknownNameThrows) {
  EXPECT_THROW(make_codec("zstd"), CodecError);
}

TEST(Factory, NamesMatch) {
  EXPECT_EQ(make_codec("rle")->name(), "rle");
  EXPECT_EQ(make_codec("lz77")->name(), "lz77");
}

}  // namespace
}  // namespace maqs::compress

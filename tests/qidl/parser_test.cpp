#include "qidl/parser.hpp"

#include <gtest/gtest.h>

namespace maqs::qidl {
namespace {

template <typename T>
const T& only(const Specification& spec) {
  EXPECT_EQ(spec.declarations.size(), 1u);
  return std::get<T>(spec.declarations.front());
}

TEST(Parser, EmptySpecification) {
  EXPECT_TRUE(parse("").declarations.empty());
}

TEST(Parser, InterfaceWithOperations) {
  const auto spec = parse(R"(
    interface Hello {
      string greet(in string name);
      long add(in long a, in long b);
      void reset();
    };
  )");
  const auto& iface = only<InterfaceDecl>(spec);
  EXPECT_EQ(iface.name, "Hello");
  ASSERT_EQ(iface.operations.size(), 3u);
  EXPECT_EQ(iface.operations[0].name, "greet");
  EXPECT_EQ(iface.operations[0].result->kind, TypeKind::kString);
  ASSERT_EQ(iface.operations[1].params.size(), 2u);
  EXPECT_EQ(iface.operations[1].params[1].name, "b");
  EXPECT_EQ(iface.operations[2].result->kind, TypeKind::kVoid);
  EXPECT_TRUE(iface.operations[2].params.empty());
}

TEST(Parser, AllBasicTypes) {
  const auto spec = parse(R"(
    interface T {
      boolean f1(in octet a, in short b, in long c, in long long d);
      float f2(in double x, in string s);
    };
  )");
  const auto& iface = only<InterfaceDecl>(spec);
  const auto& p = iface.operations[0].params;
  EXPECT_EQ(p[0].type->kind, TypeKind::kOctet);
  EXPECT_EQ(p[1].type->kind, TypeKind::kShort);
  EXPECT_EQ(p[2].type->kind, TypeKind::kLong);
  EXPECT_EQ(p[3].type->kind, TypeKind::kLongLong);
  EXPECT_EQ(iface.operations[0].result->kind, TypeKind::kBoolean);
  EXPECT_EQ(iface.operations[1].result->kind, TypeKind::kFloat);
}

TEST(Parser, SequencesNest) {
  const auto spec = parse(R"(
    interface T { sequence<sequence<octet>> blobs(); };
  )");
  const auto& op = only<InterfaceDecl>(spec).operations[0];
  ASSERT_EQ(op.result->kind, TypeKind::kSequence);
  ASSERT_EQ(op.result->element->kind, TypeKind::kSequence);
  EXPECT_EQ(op.result->element->element->kind, TypeKind::kOctet);
}

TEST(Parser, StructsEnumsExceptions) {
  const auto spec = parse(R"(
    struct Point { long x; long y; };
    enum Color { red, green, blue };
    exception Oops { string why; };
  )");
  ASSERT_EQ(spec.declarations.size(), 3u);
  const auto& s = std::get<StructDecl>(spec.declarations[0]);
  EXPECT_EQ(s.fields.size(), 2u);
  const auto& e = std::get<EnumDecl>(spec.declarations[1]);
  EXPECT_EQ(e.enumerators,
            (std::vector<std::string>{"red", "green", "blue"}));
  const auto& x = std::get<ExceptionDecl>(spec.declarations[2]);
  EXPECT_EQ(x.name, "Oops");
}

TEST(Parser, RaisesClause) {
  const auto spec = parse(R"(
    exception A { }; exception B { };
    interface T { void f() raises (A, B); };
  )");
  const auto& iface = std::get<InterfaceDecl>(spec.declarations[2]);
  EXPECT_EQ(iface.operations[0].raises,
            (std::vector<std::string>{"A", "B"}));
}

TEST(Parser, NestedModules) {
  const auto spec = parse(R"(
    module outer {
      module inner {
        interface X { void f(); };
      };
    };
  )");
  const auto& outer =
      *std::get<std::shared_ptr<ModuleDecl>>(spec.declarations[0]);
  EXPECT_EQ(outer.name, "outer");
  const auto& inner =
      *std::get<std::shared_ptr<ModuleDecl>>(outer.declarations[0]);
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(std::get<InterfaceDecl>(inner.declarations[0]).name, "X");
}

TEST(Parser, CharacteristicFull) {
  const auto spec = parse(R"(
    qos characteristic Compression {
      category bandwidth;
      param string codec = "lz77";
      param long level = 32 range 1 .. 128;
      param boolean verbose = false;
      param double target = 0.5;
      dimension string algorithm = { "lz77", "rle", "none" } degrade 0;
      dimension long window = { 64, 32, 16 } degrade 1;
      dimension boolean checksum = { true, false };
      mechanism double ratio();
      peer void sync(in long long seqno);
      aspect sequence<octet> get_state();
    };
  )");
  const auto& c = only<CharacteristicDecl>(spec);
  EXPECT_EQ(c.name, "Compression");
  EXPECT_EQ(c.category, "bandwidth");
  ASSERT_EQ(c.params.size(), 4u);
  EXPECT_EQ(std::get<std::string>(c.params[0].default_value), "lz77");
  EXPECT_EQ(std::get<std::int64_t>(c.params[1].default_value), 32);
  EXPECT_EQ(c.params[1].range_min, 1);
  EXPECT_EQ(c.params[1].range_max, 128);
  EXPECT_EQ(std::get<bool>(c.params[2].default_value), false);
  EXPECT_EQ(std::get<double>(c.params[3].default_value), 0.5);
  ASSERT_EQ(c.dimensions.size(), 3u);
  EXPECT_EQ(c.dimensions[0].name, "algorithm");
  ASSERT_EQ(c.dimensions[0].ranked.size(), 3u);
  EXPECT_EQ(std::get<std::string>(c.dimensions[0].ranked[0]), "lz77");
  EXPECT_EQ(std::get<std::string>(c.dimensions[0].ranked[2]), "none");
  EXPECT_EQ(c.dimensions[0].degrade_rank, 0);
  EXPECT_EQ(std::get<std::int64_t>(c.dimensions[1].ranked[1]), 32);
  EXPECT_EQ(c.dimensions[1].degrade_rank, 1);
  // Degrade rank defaults to 0 when omitted.
  EXPECT_EQ(std::get<bool>(c.dimensions[2].ranked[1]), false);
  EXPECT_EQ(c.dimensions[2].degrade_rank, 0);
  ASSERT_EQ(c.operations.size(), 3u);
  EXPECT_EQ(c.operations[0].group, QosOpGroup::kMechanism);
  EXPECT_EQ(c.operations[1].group, QosOpGroup::kPeer);
  EXPECT_EQ(c.operations[2].group, QosOpGroup::kAspect);
}

TEST(Parser, ParamWithoutDefault) {
  const auto spec = parse(R"(
    qos characteristic X { param long n; };
  )");
  const auto& c = only<CharacteristicDecl>(spec);
  EXPECT_TRUE(
      std::holds_alternative<std::monostate>(c.params[0].default_value));
}

TEST(Parser, BindStatement) {
  const auto spec = parse(R"(
    qos characteristic A { };
    qos characteristic B { };
    interface X { void f(); };
    bind X : A, B;
  )");
  const auto& bind = std::get<BindDecl>(spec.declarations[3]);
  EXPECT_EQ(bind.interface_name, "X");
  EXPECT_EQ(bind.characteristics, (std::vector<std::string>{"A", "B"}));
}

// ---- syntax errors ----

TEST(Parser, RejectsOutParameters) {
  EXPECT_THROW(parse("interface T { void f(out long x); };"), QidlError);
  EXPECT_THROW(parse("interface T { void f(inout long x); };"), QidlError);
}

TEST(Parser, RejectsVoidParamAndField) {
  EXPECT_THROW(parse("interface T { void f(in void x); };"), QidlError);
  EXPECT_THROW(parse("struct S { void x; };"), QidlError);
  EXPECT_THROW(parse("interface T { sequence<void> f(); };"), QidlError);
}

TEST(Parser, RejectsMissingSemicolons) {
  EXPECT_THROW(parse("interface T { void f() }"), QidlError);
  EXPECT_THROW(parse("struct S { long x; }"), QidlError);
}

TEST(Parser, RejectsUnterminatedBlocks) {
  EXPECT_THROW(parse("interface T { void f();"), QidlError);
  EXPECT_THROW(parse("module m { interface T { void f(); };"), QidlError);
  EXPECT_THROW(parse("qos characteristic C { param long x;"), QidlError);
}

TEST(Parser, RejectsGarbageDeclarations) {
  EXPECT_THROW(parse("banana;"), QidlError);
  EXPECT_THROW(parse("qos interface X {};"), QidlError);
}

TEST(Parser, RejectsMalformedDimensions) {
  // No ranked-value list.
  EXPECT_THROW(parse("qos characteristic C { dimension string a; };"),
               QidlError);
  // Empty braces: at least one ranked value is required.
  EXPECT_THROW(parse("qos characteristic C { dimension string a = { }; };"),
               QidlError);
  // Degrade rank must be an integer literal.
  EXPECT_THROW(
      parse(R"(qos characteristic C {
        dimension string a = { "x" } degrade fast; };)"),
      QidlError);
  // Void dimensions are meaningless.
  EXPECT_THROW(parse("qos characteristic C { dimension void a = { 1 }; };"),
               QidlError);
}

TEST(Parser, RejectsBadRange) {
  EXPECT_THROW(parse("qos characteristic C { param long x range a .. 3; };"),
               QidlError);
  EXPECT_THROW(parse("qos characteristic C { param long x range 1 . 3; };"),
               QidlError);
}

TEST(Parser, ErrorMentionsPosition) {
  try {
    parse("interface T {\n  void f(\n}");
    FAIL();
  } catch (const QidlError& e) {
    EXPECT_GE(e.line(), 2);
  }
}

}  // namespace
}  // namespace maqs::qidl

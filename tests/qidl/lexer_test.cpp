#include "qidl/lexer.hpp"

#include <gtest/gtest.h>

namespace maqs::qidl {
namespace {

TEST(Lexer, EmptySourceYieldsEnd) {
  const auto tokens = lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEnd);
}

TEST(Lexer, KeywordsAndIdentifiers) {
  const auto tokens = lex("interface Hello qos characteristic my_name");
  EXPECT_TRUE(tokens[0].is_keyword("interface"));
  EXPECT_TRUE(tokens[1].is_identifier());
  EXPECT_EQ(tokens[1].text, "Hello");
  EXPECT_TRUE(tokens[2].is_keyword("qos"));
  EXPECT_TRUE(tokens[3].is_keyword("characteristic"));
  EXPECT_TRUE(tokens[4].is_identifier());
}

TEST(Lexer, QosExtensionKeywords) {
  for (const char* kw :
       {"qos", "characteristic", "param", "mechanism", "peer", "aspect",
        "category", "bind", "range", "dimension", "degrade"}) {
    EXPECT_TRUE(is_qidl_keyword(kw)) << kw;
  }
  EXPECT_FALSE(is_qidl_keyword("quality"));
}

TEST(Lexer, IntAndFloatLiterals) {
  const auto tokens = lex("42 -7 3.25 -0.5");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIntLiteral);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].int_value, -7);
  EXPECT_EQ(tokens[2].kind, TokenKind::kFloatLiteral);
  EXPECT_EQ(tokens[2].float_value, 3.25);
  EXPECT_EQ(tokens[3].float_value, -0.5);
}

TEST(Lexer, RangeDotsNotConfusedWithDecimalPoint) {
  const auto tokens = lex("1 .. 128");
  EXPECT_EQ(tokens[0].int_value, 1);
  EXPECT_TRUE(tokens[1].is_punct(".."));
  EXPECT_EQ(tokens[2].int_value, 128);
  // Adjacent form too.
  const auto adjacent = lex("1..128");
  EXPECT_EQ(adjacent[0].int_value, 1);
  EXPECT_TRUE(adjacent[1].is_punct(".."));
  EXPECT_EQ(adjacent[2].int_value, 128);
}

TEST(Lexer, StringLiteralsWithEscapes) {
  const auto tokens = lex(R"("hello" "a\"b" "line\nbreak")");
  EXPECT_EQ(tokens[0].string_value, "hello");
  EXPECT_EQ(tokens[1].string_value, "a\"b");
  EXPECT_EQ(tokens[2].string_value, "line\nbreak");
}

TEST(Lexer, BoolLiterals) {
  const auto tokens = lex("true false");
  EXPECT_EQ(tokens[0].kind, TokenKind::kBoolLiteral);
  EXPECT_TRUE(tokens[0].bool_value);
  EXPECT_FALSE(tokens[1].bool_value);
}

TEST(Lexer, CommentsSkipped) {
  const auto tokens = lex(
      "// line comment\n"
      "module /* block\ncomment */ m");
  EXPECT_TRUE(tokens[0].is_keyword("module"));
  EXPECT_EQ(tokens[1].text, "m");
  EXPECT_EQ(tokens[2].kind, TokenKind::kEnd);
}

TEST(Lexer, PunctuationIncludingScopeOperator) {
  const auto tokens = lex("{ } ( ) < > , ; : = ::");
  const char* expected[] = {"{", "}", "(", ")", "<", ">",
                            ",", ";", ":", "=", "::"};
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_TRUE(tokens[i].is_punct(expected[i])) << i;
  }
}

TEST(Lexer, TracksLineAndColumn) {
  const auto tokens = lex("module\n  demo");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(Lexer, RejectsStrayCharacters) {
  EXPECT_THROW(lex("module @"), QidlError);
  EXPECT_THROW(lex("#include"), QidlError);
}

TEST(Lexer, RejectsUnterminatedString) {
  EXPECT_THROW(lex("\"abc"), QidlError);
  EXPECT_THROW(lex("\"abc\ndef\""), QidlError);
}

TEST(Lexer, RejectsUnterminatedBlockComment) {
  EXPECT_THROW(lex("/* never ends"), QidlError);
}

TEST(Lexer, RejectsBadEscape) {
  EXPECT_THROW(lex(R"("\q")"), QidlError);
}

TEST(Lexer, ErrorCarriesPosition) {
  try {
    lex("module\n   @");
    FAIL();
  } catch (const QidlError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.column(), 4);
  }
}

}  // namespace
}  // namespace maqs::qidl

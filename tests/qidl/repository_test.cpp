#include "qidl/repository.hpp"

#include <gtest/gtest.h>

namespace maqs::qidl {
namespace {

InterfaceRepository build(const std::string& source) {
  return InterfaceRepository::build(analyze(source));
}

TEST(Repository, OperationSignaturesAsTypeCodes) {
  const auto repo = build(R"(
    module demo {
      interface Calc {
        long add(in long a, in long b);
        sequence<double> stats(in string name);
      };
    };
  )");
  const InterfaceEntry* calc = repo.find_interface("Calc");
  ASSERT_NE(calc, nullptr);
  EXPECT_EQ(calc->repo_id, "IDL:demo/Calc:1.0");
  const OperationSignature* add = calc->find_operation("add");
  ASSERT_NE(add, nullptr);
  EXPECT_EQ(add->result->kind(), cdr::TCKind::kLong);
  ASSERT_EQ(add->params.size(), 2u);
  EXPECT_EQ(add->params[0].first, "a");
  EXPECT_EQ(add->params[0].second->kind(), cdr::TCKind::kLong);
  const OperationSignature* stats = calc->find_operation("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->result->kind(), cdr::TCKind::kSequence);
  EXPECT_EQ(stats->result->element()->kind(), cdr::TCKind::kDouble);
  EXPECT_EQ(calc->find_operation("nope"), nullptr);
}

TEST(Repository, FindByRepoId) {
  const auto repo = build("interface X { void f(); };");
  EXPECT_NE(repo.find_by_repo_id("IDL:X:1.0"), nullptr);
  EXPECT_EQ(repo.find_by_repo_id("IDL:Y:1.0"), nullptr);
}

TEST(Repository, StructAndEnumTypeCodes) {
  const auto repo = build(R"(
    enum Color { red, green };
    struct Point { long x; long y; Color c; };
    interface T { Point origin(); };
  )");
  const cdr::TypeCodePtr point = repo.named_type("Point");
  ASSERT_NE(point, nullptr);
  EXPECT_EQ(point->kind(), cdr::TCKind::kStruct);
  ASSERT_EQ(point->members().size(), 3u);
  EXPECT_EQ(point->members()[2].second->kind(), cdr::TCKind::kEnum);
  EXPECT_EQ(repo.named_type("Color")->enumerators().size(), 2u);
  EXPECT_EQ(repo.named_type("Nope"), nullptr);
}

TEST(Repository, StructsResolveRegardlessOfOrder) {
  const auto repo = build(R"(
    struct Outer { Inner i; };
    struct Inner { long x; };
  )");
  const cdr::TypeCodePtr outer = repo.named_type("Outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->members()[0].second->kind(), cdr::TCKind::kStruct);
}

TEST(Repository, RaisesCarryExceptionRepoIds) {
  const auto repo = build(R"(
    module m {
      exception Bad { };
      interface T { void f() raises (Bad); };
    };
  )");
  const auto* op = repo.find_interface("T")->find_operation("f");
  ASSERT_EQ(op->raises.size(), 1u);
  EXPECT_EQ(op->raises[0], "IDL:m/Bad:1.0");
}

TEST(Repository, CharacteristicsBecomeDescriptors) {
  const auto repo = build(R"(
    qos characteristic Compression {
      category bandwidth;
      dimension string algorithm = { "lz77", "rle", "none" } degrade 0;
      dimension long window = { 64, 16 } degrade 1;
      param long level = 32 range 1 .. 128;
      mechanism double qos_ratio();
      peer void qos_sync(in long long seqno);
      aspect sequence<octet> qos_get_state();
    };
  )");
  const core::CharacteristicDescriptor& d =
      repo.characteristic("Compression");
  EXPECT_EQ(d.category(), core::QosCategory::kBandwidth);
  ASSERT_NE(d.find_param("level"), nullptr);
  EXPECT_EQ(d.find_param("level")->default_value.as_long(), 32);
  EXPECT_EQ(d.find_param("level")->min, 1);
  EXPECT_EQ(d.find_param("level")->max, 128);
  ASSERT_NE(d.find_operation("qos_sync"), nullptr);
  EXPECT_EQ(d.find_operation("qos_sync")->kind, core::QosOpKind::kPeer);
  EXPECT_EQ(d.find_operation("qos_get_state")->kind,
            core::QosOpKind::kAspect);
  // Declared dimensions become the descriptor's preference lattice,
  // preserving ranked order and degradation priority.
  ASSERT_EQ(d.dimensions().size(), 2u);
  const core::DimensionDesc* algorithm = d.find_dimension("algorithm");
  ASSERT_NE(algorithm, nullptr);
  ASSERT_EQ(algorithm->ranked.size(), 3u);
  EXPECT_EQ(algorithm->ranked[0].as_string(), "lz77");
  EXPECT_EQ(algorithm->ranked[2].as_string(), "none");
  EXPECT_EQ(algorithm->degrade_rank, 0);
  const core::DimensionDesc* window = d.find_dimension("window");
  ASSERT_NE(window, nullptr);
  EXPECT_EQ(window->ranked[1].as_long(), 16);
  EXPECT_EQ(window->degrade_rank, 1);
  // The lattice drives a working matrix: most-preferred point by default,
  // algorithm sacrificed before window under degradation.
  core::CapabilityMatrix matrix = d.default_matrix();
  EXPECT_EQ(matrix.find_value("algorithm")->as_string(), "lz77");
  EXPECT_EQ(matrix.find_value("window")->as_long(), 64);
  EXPECT_EQ(matrix.degrade_step(), "algorithm");
  EXPECT_EQ(matrix.find_value("algorithm")->as_string(), "rle");
}

TEST(Repository, SynthesizedDefaultsRespectRanges) {
  const auto repo = build(R"(
    qos characteristic C { param long level range 5 .. 9; };
  )");
  // No explicit default: synthesized from the range minimum.
  EXPECT_EQ(repo.characteristic("C").find_param("level")
                ->default_value.as_long(),
            5);
}

TEST(Repository, CategoryMapping) {
  EXPECT_EQ(category_from_string("fault_tolerance"),
            core::QosCategory::kFaultTolerance);
  EXPECT_EQ(category_from_string("performance"),
            core::QosCategory::kPerformance);
  EXPECT_EQ(category_from_string("bandwidth"), core::QosCategory::kBandwidth);
  EXPECT_EQ(category_from_string("actuality"), core::QosCategory::kActuality);
  EXPECT_EQ(category_from_string("privacy"), core::QosCategory::kPrivacy);
  EXPECT_EQ(category_from_string("whatever"), core::QosCategory::kOther);
}

TEST(Repository, BoundCharacteristicsListed) {
  const auto repo = build(R"(
    qos characteristic A { };
    interface X { void f(); };
    bind X : A;
  )");
  EXPECT_EQ(repo.find_interface("X")->bound_characteristics,
            (std::vector<std::string>{"A"}));
  EXPECT_EQ(repo.interface_names(), (std::vector<std::string>{"X"}));
}

TEST(Repository, DescriptorValidateIntegratesWithNegotiationRules) {
  const auto repo = build(R"(
    qos characteristic C { param long level = 3 range 1 .. 5; };
  )");
  const auto& d = repo.characteristic("C");
  EXPECT_NO_THROW(d.validate_params({{"level", cdr::Any::from_long(5)}}));
  EXPECT_THROW(d.validate_params({{"level", cdr::Any::from_long(6)}}),
               core::QosError);
}

}  // namespace
}  // namespace maqs::qidl

// Emitter tests: the generated text contains the weaving shapes the
// runtime expects. (A full generate-compile-run check happens in the
// examples build, where qidlc runs as a build step.)
#include "qidl/emitter.hpp"

#include <gtest/gtest.h>

#include "qidl/sema.hpp"

namespace maqs::qidl {
namespace {

std::string emit(const std::string& source) {
  return emit_header(analyze(source));
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

const char* const kStockSource = R"(
  module demo {
    struct Quote { string symbol; double price; };
    enum Side { buy, sell };
    exception BadSymbol { string symbol; };
    interface Stock {
      Quote get_quote(in string symbol) raises (BadSymbol);
      void put_order(in string symbol, in Side side, in long qty);
    };
    qos characteristic Compression {
      category bandwidth;
      param string codec = "lz77";
      param long level = 32 range 1 .. 128;
      dimension string algorithm = { "lz77", "rle", "none" } degrade 0;
      dimension boolean checksum = { true, false } degrade 1;
      mechanism double qos_ratio();
    };
    bind Stock : Compression;
  };
)";

TEST(Emitter, WrapsInRootAndModuleNamespace) {
  const std::string code = emit(kStockSource);
  EXPECT_TRUE(contains(code, "namespace maqs_gen::demo {"));
  EXPECT_TRUE(contains(code, "}  // namespace maqs_gen::demo"));
}

TEST(Emitter, CustomRootNamespace) {
  EmitterOptions options;
  options.root_namespace = "acme";
  const std::string code = emit_header(analyze(kStockSource), options);
  EXPECT_TRUE(contains(code, "namespace acme::demo {"));
}

TEST(Emitter, StructWithMarshalFunctions) {
  const std::string code = emit(kStockSource);
  EXPECT_TRUE(contains(code, "struct Quote {"));
  EXPECT_TRUE(contains(code, "std::string symbol{};"));
  EXPECT_TRUE(contains(code, "double price{};"));
  EXPECT_TRUE(contains(
      code, "inline void write(maqs::cdr::Encoder& enc, const Quote& v)"));
  EXPECT_TRUE(contains(
      code, "inline void read(maqs::cdr::Decoder& dec, Quote& v)"));
}

TEST(Emitter, EnumWithRangeCheckedDecode) {
  const std::string code = emit(kStockSource);
  EXPECT_TRUE(contains(code, "enum class Side : std::uint32_t {"));
  EXPECT_TRUE(contains(code, "if (raw >= 2u)"));
}

TEST(Emitter, ExceptionCarriesRepoId) {
  const std::string code = emit(kStockSource);
  EXPECT_TRUE(contains(code, "struct BadSymbol {"));
  EXPECT_TRUE(contains(code, "return \"IDL:demo/BadSymbol:1.0\";"));
}

TEST(Emitter, StubDerivesFromStubBase) {
  const std::string code = emit(kStockSource);
  EXPECT_TRUE(
      contains(code, "class StockStub : public maqs::orb::StubBase {"));
  EXPECT_TRUE(contains(
      code, "Quote get_quote(const std::string& symbol) const {"));
  EXPECT_TRUE(contains(code, "invoke_operation(\"get_quote\""));
}

TEST(Emitter, PlainSkeletonEmitted) {
  const std::string code = emit(kStockSource);
  EXPECT_TRUE(contains(
      code, "class StockSkeleton : public maqs::orb::Servant {"));
  EXPECT_TRUE(contains(code,
                       "virtual Quote get_quote(const std::string& symbol) "
                       "= 0;"));
  EXPECT_TRUE(contains(code, "static const std::string _id = "
                             "\"IDL:demo/Stock:1.0\";"));
}

TEST(Emitter, QosSkeletonOnlyForBoundInterfaces) {
  const std::string code = emit(kStockSource);
  // Fig. 2 shape: derives from the QoS skeleton base, assigns the bound
  // characteristic in the constructor.
  EXPECT_TRUE(contains(
      code,
      "class StockQosSkeleton : public maqs::core::QosServantBase {"));
  EXPECT_TRUE(
      contains(code, "assign_characteristic(make_Compression_descriptor())"));
  EXPECT_TRUE(contains(code, "void dispatch_app(const std::string& _op"));

  const std::string unbound = emit("interface X { void f(); };");
  EXPECT_FALSE(contains(unbound, "XQosSkeleton"));
  EXPECT_TRUE(contains(unbound, "class XSkeleton"));
}

TEST(Emitter, DescriptorFactory) {
  const std::string code = emit(kStockSource);
  EXPECT_TRUE(contains(code,
                       "inline maqs::core::CharacteristicDescriptor "
                       "make_Compression_descriptor()"));
  EXPECT_TRUE(contains(code, "maqs::core::QosCategory::kBandwidth"));
  EXPECT_TRUE(contains(code, "maqs::cdr::Any::from_string(\"lz77\")"));
  EXPECT_TRUE(contains(code, "maqs::cdr::Any::from_long(32)"));
  EXPECT_TRUE(contains(code, "std::optional<std::int64_t>{128}"));
}

TEST(Emitter, DescriptorFactoryCarriesDimensions) {
  const std::string code = emit(kStockSource);
  // Ranked preference order survives verbatim, most preferred first,
  // with the declared degradation priority.
  EXPECT_TRUE(contains(
      code,
      "maqs::core::DimensionDesc{\"algorithm\", "
      "{maqs::cdr::Any::from_string(\"lz77\"), "
      "maqs::cdr::Any::from_string(\"rle\"), "
      "maqs::cdr::Any::from_string(\"none\")}, 0},"));
  EXPECT_TRUE(contains(
      code,
      "maqs::core::DimensionDesc{\"checksum\", "
      "{maqs::cdr::Any::from_bool(true), "
      "maqs::cdr::Any::from_bool(false)}, 1},"));
}

TEST(Emitter, MediatorBaseWithQosOpDispatch) {
  const std::string code = emit(kStockSource);
  EXPECT_TRUE(contains(
      code,
      "class CompressionMediatorBase : public maqs::core::Mediator {"));
  EXPECT_TRUE(contains(code, "virtual double qos_ratio() = 0;"));
  EXPECT_TRUE(contains(code, "maqs::cdr::Any::from_double(qos_ratio())"));
}

TEST(Emitter, ImplBaseWithQosOpDispatch) {
  const std::string code = emit(kStockSource);
  EXPECT_TRUE(contains(
      code, "class CompressionImplBase : public maqs::core::QosImpl {"));
  EXPECT_TRUE(contains(code, "void dispatch_qos_op(const std::string& _op"));
  EXPECT_TRUE(contains(code, "write(_out, qos_ratio())"));
}

TEST(Emitter, SequenceParamsByConstRef) {
  const std::string code = emit(R"(
    interface T { void f(in sequence<octet> data); };
  )");
  EXPECT_TRUE(contains(
      code, "f(const std::vector<std::uint8_t>& data)"));
}

TEST(Emitter, EnumsPassedByValue) {
  const std::string code = emit(kStockSource);
  EXPECT_TRUE(contains(code, "Side side"));
  EXPECT_FALSE(contains(code, "const Side&"));
}

TEST(Emitter, UnknownOperationRaisesBadOperation) {
  const std::string code = emit(kStockSource);
  EXPECT_TRUE(contains(
      code, "throw maqs::orb::BadOperation(\"Stock: unknown operation \""));
}

TEST(Emitter, FileScopeDeclarationsLandInRootNamespace) {
  const std::string code = emit("interface X { void f(); };");
  EXPECT_TRUE(contains(code, "namespace maqs_gen {"));
}

TEST(Emitter, DependentStructsEmittedInUsableOrder) {
  const std::string code = emit(R"(
    struct Outer { Inner i; };
    struct Inner { long x; };
  )");
  EXPECT_LT(code.find("struct Inner"), code.find("struct Outer"));
}

TEST(Emitter, PeerAndAspectOpsInImplBase) {
  const std::string code = emit(R"(
    qos characteristic Replication {
      aspect sequence<octet> qos_get_state();
      aspect void qos_set_state(in sequence<octet> state);
      peer void qos_sync(in long long seqno);
    };
  )");
  EXPECT_TRUE(contains(
      code, "virtual std::vector<std::uint8_t> qos_get_state() = 0;"));
  EXPECT_TRUE(contains(code, "_op == \"qos_set_state\""));
  EXPECT_TRUE(contains(code, "_op == \"qos_sync\""));
}

}  // namespace
}  // namespace maqs::qidl

// The json_binding emitter and the gateway's runtime route table are two
// views of the same CheckedUnit; these tests pin them to each other: every
// route the document advertises exists in the RouteTable (and vice versa),
// the emitted document is valid JSON by the gateway's own parser, and the
// emitter is deterministic.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "gateway/binding.hpp"
#include "gateway/json.hpp"
#include "qidl/json_binding.hpp"
#include "qidl/repository.hpp"
#include "qidl/sema.hpp"

namespace maqs::qidl {
namespace {

const char* const kSource = R"(
  module demo {
    enum Mode { fast, safe };
    struct Point { long x; long y; };
    exception Unreachable { string detail; };

    interface Mapper {
      Point translate(in Point p, in Mode m) raises (Unreachable);
      sequence<octet> snapshot(in string region);
      void reset();
    };
    interface Probe {
      long ping(in long nonce);
    };
  };
)";

TEST(JsonBinding, IsValidJsonAndDeterministic) {
  const CheckedUnit unit = analyze(kSource);
  const std::string doc = emit_json_binding(unit);
  EXPECT_EQ(emit_json_binding(unit), doc);  // byte-identical re-run

  const gateway::JsonValue parsed = gateway::parse_json(doc);
  ASSERT_TRUE(parsed.is_object());
  EXPECT_EQ(parsed.find("binding")->as_string(), "maqs-json/1");
  EXPECT_EQ(parsed.find("api_prefix")->as_string(), "/api");
  ASSERT_NE(parsed.find("rules"), nullptr);
  EXPECT_NE(parsed.find("rules")->find("sequence<octet>"), nullptr);
}

TEST(JsonBinding, DescribesTypesAndRaises) {
  const gateway::JsonValue doc =
      gateway::parse_json(emit_json_binding(analyze(kSource)));
  const gateway::JsonValue* types = doc.find("types");
  ASSERT_NE(types, nullptr);
  const gateway::JsonValue* point = types->find("Point");
  ASSERT_NE(point, nullptr);
  EXPECT_EQ(point->find("kind")->as_string(), "struct");
  EXPECT_EQ(point->find("fields")->find("x")->as_string(), "long");
  const gateway::JsonValue* mode = types->find("Mode");
  ASSERT_NE(mode, nullptr);
  EXPECT_EQ(mode->find("kind")->as_string(), "enum");
  ASSERT_EQ(mode->find("enumerators")->as_array().size(), 2u);
  EXPECT_EQ(mode->find("enumerators")->as_array()[0].as_string(), "fast");

  // translate's raises clause and typed request schema survive.
  const auto& interfaces = doc.find("interfaces")->as_array();
  ASSERT_FALSE(interfaces.empty());
  const gateway::JsonValue& mapper = interfaces[0];
  EXPECT_EQ(mapper.find("name")->as_string(), "Mapper");
  const gateway::JsonValue& translate = mapper.find("routes")->as_array()[0];
  EXPECT_EQ(translate.find("operation")->as_string(), "translate");
  EXPECT_EQ(translate.find("request")->find("p")->as_string(), "Point");
  EXPECT_EQ(translate.find("response")->as_string(), "Point");
  ASSERT_NE(translate.find("raises"), nullptr);
  EXPECT_EQ(translate.find("raises")->as_array()[0].as_string(),
            "Unreachable");
}

TEST(JsonBinding, RoutesMatchRuntimeRouteTable) {
  const CheckedUnit unit = analyze(kSource);
  const InterfaceRepository repo = InterfaceRepository::build(unit);
  const gateway::RouteTable table = gateway::RouteTable::build(repo);

  const gateway::JsonValue doc =
      gateway::parse_json(emit_json_binding(unit));
  std::set<std::string> advertised;
  for (const gateway::JsonValue& iface : doc.find("interfaces")->as_array()) {
    for (const gateway::JsonValue& route : iface.find("routes")->as_array()) {
      EXPECT_EQ(route.find("method")->as_string(), "POST");
      const std::string path = route.find("path")->as_string();
      advertised.insert(path);
      // Every advertised route resolves in the runtime table to the same
      // operation.
      const gateway::Route* found = table.find(path);
      ASSERT_NE(found, nullptr) << path;
      EXPECT_EQ(found->operation->name, route.find("operation")->as_string());
    }
  }
  // ...and the runtime table has nothing the document omits.
  EXPECT_EQ(advertised.size(), table.routes().size());
  for (const gateway::Route& route : table.routes()) {
    EXPECT_TRUE(advertised.count(route.path)) << route.path;
  }
}

TEST(JsonBinding, HonorsApiPrefixOption) {
  JsonBindingOptions options;
  options.api_prefix = "/v2";
  const gateway::JsonValue doc =
      gateway::parse_json(emit_json_binding(analyze(kSource), options));
  EXPECT_EQ(doc.find("api_prefix")->as_string(), "/v2");
  const gateway::JsonValue& first_route =
      doc.find("interfaces")->as_array()[0].find("routes")->as_array()[0];
  EXPECT_EQ(first_route.find("path")->as_string().rfind("/v2/", 0), 0u);
}

}  // namespace
}  // namespace maqs::qidl

#include "qidl/sema.hpp"

#include <gtest/gtest.h>

namespace maqs::qidl {
namespace {

TEST(Sema, ResolvesNamedTypes) {
  const auto unit = analyze(R"(
    struct Point { long x; long y; };
    enum Color { red, green };
    interface Canvas {
      void draw(in Point p, in Color c);
      sequence<Point> outline();
    };
  )");
  EXPECT_NE(unit.find_struct("Point"), nullptr);
  EXPECT_NE(unit.find_enum("Color"), nullptr);
  EXPECT_NE(unit.find_interface("Canvas"), nullptr);
}

TEST(Sema, RepoIdsIncludeModulePath) {
  const auto unit = analyze(R"(
    module demo { interface Hello { void f(); }; };
  )");
  EXPECT_EQ(unit.interfaces[0].repo_id, "IDL:demo/Hello:1.0");
  EXPECT_EQ(unit.interfaces[0].module, "demo");
}

TEST(Sema, NestedModuleRepoIds) {
  const auto unit = analyze(R"(
    module a { module b { interface X { void f(); }; }; };
  )");
  EXPECT_EQ(unit.interfaces[0].repo_id, "IDL:a/b/X:1.0");
}

TEST(Sema, FileScopeRepoId) {
  const auto unit = analyze("interface X { void f(); };");
  EXPECT_EQ(unit.interfaces[0].repo_id, "IDL:X:1.0");
}

TEST(Sema, RejectsUnknownTypes) {
  EXPECT_THROW(analyze("interface T { void f(in Missing m); };"),
               QidlError);
  EXPECT_THROW(analyze("struct S { Missing m; };"), QidlError);
}

TEST(Sema, RejectsExceptionAsDataType) {
  EXPECT_THROW(analyze(R"(
    exception Oops { };
    interface T { void f(in Oops o); };
  )"),
               QidlError);
}

TEST(Sema, RejectsUnknownRaises) {
  EXPECT_THROW(analyze("interface T { void f() raises (Nope); };"),
               QidlError);
}

TEST(Sema, AcceptsKnownRaises) {
  const auto unit = analyze(R"(
    exception Oops { string why; };
    interface T { void f() raises (Oops); };
  )");
  EXPECT_EQ(unit.exceptions[0].repo_id, "IDL:Oops:1.0");
}

TEST(Sema, RejectsDuplicateDeclarations) {
  EXPECT_THROW(analyze("struct S { }; struct S { };"), QidlError);
  EXPECT_THROW(analyze("interface I { void f(); }; enum I { a };"),
               QidlError);
}

TEST(Sema, RejectsDuplicateOperationAndParamNames) {
  EXPECT_THROW(analyze("interface T { void f(); long f(); };"), QidlError);
  EXPECT_THROW(analyze("interface T { void f(in long x, in long x); };"),
               QidlError);
}

TEST(Sema, RejectsDuplicateFieldsAndEnumerators) {
  EXPECT_THROW(analyze("struct S { long x; short x; };"), QidlError);
  EXPECT_THROW(analyze("enum E { a, a };"), QidlError);
}

TEST(Sema, RejectsSelfReferentialStruct) {
  EXPECT_THROW(analyze("struct S { S inner; };"), QidlError);
}

TEST(Sema, QosParamRules) {
  // Non-basic QoS params forbidden (negotiation marshals them as Anys).
  EXPECT_THROW(analyze(R"(
    qos characteristic C { param sequence<octet> blob; };
  )"),
               QidlError);
  // Default/type mismatch.
  EXPECT_THROW(analyze(R"(
    qos characteristic C { param long level = "high"; };
  )"),
               QidlError);
  // Range on non-integral types.
  EXPECT_THROW(analyze(R"(
    qos characteristic C { param string s = "" range 1 .. 2; };
  )"),
               QidlError);
  // Empty range.
  EXPECT_THROW(analyze(R"(
    qos characteristic C { param long l = 5 range 9 .. 3; };
  )"),
               QidlError);
  // Default outside range.
  EXPECT_THROW(analyze(R"(
    qos characteristic C { param long l = 500 range 1 .. 128; };
  )"),
               QidlError);
  // Duplicate params.
  EXPECT_THROW(analyze(R"(
    qos characteristic C { param long l; param long l; };
  )"),
               QidlError);
}

TEST(Sema, QosDimensionRules) {
  // Non-basic dimension types forbidden (ranked values ride in Anys).
  EXPECT_THROW(analyze(R"(
    qos characteristic C { dimension sequence<octet> d = { 1 }; };
  )"),
               QidlError);
  // Every ranked value must match the declared type.
  EXPECT_THROW(analyze(R"(
    qos characteristic C { dimension long level = { 64, "high", 16 }; };
  )"),
               QidlError);
  // Dimensions share the flattened param namespace with params...
  EXPECT_THROW(analyze(R"(
    qos characteristic C {
      param string algorithm = "lz77";
      dimension string algorithm = { "lz77", "rle" };
    };
  )"),
               QidlError);
  // ...and with each other.
  EXPECT_THROW(analyze(R"(
    qos characteristic C {
      dimension string d = { "a" };
      dimension long d = { 1 };
    };
  )"),
               QidlError);
  // A well-formed dimension passes.
  analyze(R"(
    qos characteristic C {
      dimension string algorithm = { "lz77", "rle", "none" } degrade 0;
      dimension long window = { 64, 16 } degrade 1;
    };
  )");
}

TEST(Sema, QosOperationUniqueness) {
  EXPECT_THROW(analyze(R"(
    qos characteristic C {
      mechanism void f();
      peer void f();
    };
  )"),
               QidlError);
}

TEST(Sema, BindResolvesAndAccumulates) {
  const auto unit = analyze(R"(
    qos characteristic A { mechanism void qos_a(); };
    qos characteristic B { mechanism void qos_b(); };
    interface X { void f(); };
    bind X : A;
    bind X : B;
  )");
  EXPECT_EQ(unit.interfaces[0].bound_characteristics,
            (std::vector<std::string>{"A", "B"}));
}

TEST(Sema, BindRejectsUnknownTargets) {
  EXPECT_THROW(analyze("bind X : A;"), QidlError);
  EXPECT_THROW(analyze(R"(
    interface X { void f(); };
    bind X : Nope;
  )"),
               QidlError);
}

TEST(Sema, BindRejectsDoubleBinding) {
  EXPECT_THROW(analyze(R"(
    qos characteristic A { };
    interface X { void f(); };
    bind X : A, A;
  )"),
               QidlError);
}

TEST(Sema, BindRejectsQosOpClashBetweenCharacteristics) {
  // "Possible conflicts between different QoS characteristics ... are
  // hard to resolve and therefore forbidden" (paper §3.2).
  EXPECT_THROW(analyze(R"(
    qos characteristic A { mechanism void qos_shared(); };
    qos characteristic B { mechanism void qos_shared(); };
    interface X { void f(); };
    bind X : A, B;
  )"),
               QidlError);
}

TEST(Sema, BindRejectsQosOpClashWithInterfaceOps) {
  EXPECT_THROW(analyze(R"(
    qos characteristic A { mechanism void f(); };
    interface X { void f(); };
    bind X : A;
  )"),
               QidlError);
}

TEST(Sema, NonClashingBindAcrossInterfacesOk) {
  const auto unit = analyze(R"(
    qos characteristic A { mechanism void qos_a(); };
    interface X { void f(); };
    interface Y { void g(); };
    bind X : A;
    bind Y : A;
  )");
  EXPECT_EQ(unit.interfaces[0].bound_characteristics.size(), 1u);
  EXPECT_EQ(unit.interfaces[1].bound_characteristics.size(), 1u);
}

}  // namespace
}  // namespace maqs::qidl

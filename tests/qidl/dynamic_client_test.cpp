// Dynamic client: calls a hand-implemented servant with ZERO generated
// code, driving argument marshaling purely from the interface repository
// built out of QIDL source — the CORBA "DII + interface repository"
// story end to end.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "orb/dii.hpp"
#include "qidl/repository.hpp"
#include "support/echo.hpp"

namespace maqs::qidl {
namespace {

const char* const kEchoQidl = R"(
  module test {
    interface Echo {
      string echo(in string s);
      long add(in long a, in long b);
      void set_value(in long v);
      long value();
      sequence<octet> blob(in sequence<octet> data);
      void boom();
    };
  };
)";

class DynamicClientTest : public ::testing::Test {
 protected:
  DynamicClientTest()
      : repo_(InterfaceRepository::build(analyze(kEchoQidl))),
        net_(loop_),
        server_(net_, "server", 9000),
        client_(net_, "client", 9001) {
    impl_ = std::make_shared<maqs::testing::EchoImpl>();
    ref_ = server_.adapter().activate("echo-1", impl_);
  }

  /// Builds a DII request from the repository signature.
  orb::DiiRequest request(const std::string& operation) {
    const InterfaceEntry* echo = repo_.find_interface("Echo");
    EXPECT_NE(echo, nullptr);
    const OperationSignature* signature = echo->find_operation(operation);
    EXPECT_NE(signature, nullptr);
    orb::DiiRequest req(client_, ref_, operation);
    req.set_return_type(signature->result);
    return req;
  }

  InterfaceRepository repo_;
  sim::EventLoop loop_;
  net::Network net_;
  orb::Orb server_;
  orb::Orb client_;
  std::shared_ptr<maqs::testing::EchoImpl> impl_;
  orb::ObjRef ref_;
};

TEST_F(DynamicClientTest, RepositoryMatchesHandWrittenServant) {
  const InterfaceEntry* echo = repo_.find_interface("Echo");
  ASSERT_NE(echo, nullptr);
  EXPECT_EQ(echo->repo_id, maqs::testing::kEchoRepoId);
  EXPECT_EQ(echo->operations.size(), 6u);
}

TEST_F(DynamicClientTest, StringOperation) {
  auto req = request("echo");
  req.add_arg(cdr::Any::from_string("fully dynamic"));
  EXPECT_EQ(req.invoke().as_string(), "fully dynamic");
}

TEST_F(DynamicClientTest, IntegerOperationWithSignatureTypes) {
  const OperationSignature* add =
      repo_.find_interface("Echo")->find_operation("add");
  ASSERT_EQ(add->params.size(), 2u);
  // Build arguments of exactly the repository-declared types.
  auto req = request("add");
  EXPECT_TRUE(add->params[0].second->equal(*cdr::TypeCode::long_tc()));
  req.add_arg(cdr::Any::from_long(19)).add_arg(cdr::Any::from_long(23));
  EXPECT_EQ(req.invoke().as_long(), 42);
}

TEST_F(DynamicClientTest, VoidAndStatefulOperations) {
  auto set = request("set_value");
  set.add_arg(cdr::Any::from_long(77));
  EXPECT_EQ(set.invoke().kind(), cdr::TCKind::kVoid);
  auto get = request("value");
  EXPECT_EQ(get.invoke().as_long(), 77);
}

TEST_F(DynamicClientTest, SequenceRoundTrip) {
  std::vector<cdr::Any> octets;
  for (std::uint8_t b : {1, 2, 3, 250}) {
    octets.push_back(cdr::Any::from_octet(b));
  }
  auto req = request("blob");
  req.add_arg(
      cdr::Any::from_sequence(cdr::TypeCode::octet_tc(), octets));
  const cdr::Any result = req.invoke();
  ASSERT_EQ(result.kind(), cdr::TCKind::kSequence);
  ASSERT_EQ(result.as_elements().size(), 4u);
  EXPECT_EQ(result.as_elements()[3].as_octet(), 250);
}

TEST_F(DynamicClientTest, ExceptionsSurface) {
  auto req = request("boom");
  EXPECT_THROW(req.invoke(), orb::UserException);
}

TEST_F(DynamicClientTest, DynamicAndStaticClientsInterleave) {
  maqs::testing::EchoStub stub(client_, ref_);
  stub.set_value(5);
  EXPECT_EQ(request("value").invoke().as_long(), 5);
  auto set = request("set_value");
  set.add_arg(cdr::Any::from_long(6));
  set.invoke();
  EXPECT_EQ(stub.value(), 6);
}

}  // namespace
}  // namespace maqs::qidl

// Integration tests for the population engine: small worlds, full stack
// (woven servant, paced scheduler, async clients, shard threads, merge).
#include "load/harness.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "trace/merge.hpp"

namespace maqs::load {
namespace {

/// A population small enough for test latency but busy enough to exercise
/// every path: ~overloaded paced server, woven + command traffic.
PopulationConfig small_config() {
  PopulationConfig config;
  config.clients = 400;
  config.shards = 2;
  config.seed = 7;
  config.horizon = 3 * sim::kSecond;
  config.service_rate_rps = 300;
  return config;
}

std::string render(const PopulationConfig& config,
                   const PopulationResult& result) {
  std::ostringstream os;
  write_latency_json(config, result, os);
  return os.str();
}

TEST(Population, SameSeedRunsProduceByteIdenticalReports) {
  const PopulationConfig config = small_config();
  const std::string first = render(config, run_population(config));
  const std::string second = render(config, run_population(config));
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"bench\": \"l1_population\""), std::string::npos);
}

TEST(Population, AllTrafficKindsFlowAndCommandsBypassTheQueues) {
  PopulationConfig config = small_config();
  config.horizon = 5 * sim::kSecond;
  // Fatten the gold tenant's command share so the short window reliably
  // draws control-plane traffic.
  config.tenants[0].op_mix[3] = 0.3;
  const PopulationResult result = run_population(config);
  ASSERT_EQ(result.classes.size(), 3u);
  std::uint64_t total_sent = 0;
  std::uint64_t total_ok = 0;
  for (const ClassOutcome& out : result.classes) {
    total_sent += out.sent;
    total_ok += out.ok;
    // Conservation: every sent request got exactly one classification.
    EXPECT_EQ(out.sent, out.ok + out.shed + out.timeout + out.error);
  }
  EXPECT_GT(total_sent, 0u);
  EXPECT_GT(total_ok, 0u);
  // The gold tenant's 5% command mix went through the control plane.
  EXPECT_GT(result.commands_ok, 0u);
  EXPECT_GT(result.sched.commands_bypassed, 0u);
  EXPECT_EQ(result.commands_error, 0u);
}

TEST(Population, GoldHoldsItsDeadlineBudgetWhileBestEffortSheds) {
  PopulationConfig config;
  config.clients = 1500;
  config.shards = 1;
  config.seed = 42;
  config.horizon = 8 * sim::kSecond;
  // Offered load (~1500 clients / ~6 s think) well above capacity.
  config.service_rate_rps = 150;
  const PopulationResult result = run_population(config);

  ASSERT_EQ(result.classes.size(), 3u);
  const ClassOutcome& gold = result.classes[0];
  const ClassOutcome& best_effort = result.classes[2];
  ASSERT_EQ(gold.name, "gold");
  ASSERT_EQ(best_effort.name, "best_effort");

  EXPECT_GT(gold.ok, 0u);
  // WFQ weight 8 + 50 ms deadline: the paid class rides out the overload.
  EXPECT_LE(gold.latency.p99(),
            static_cast<std::uint64_t>(50 * sim::kMillisecond));
  // Best effort takes the hit — the scheduler shed real volume there.
  EXPECT_GT(best_effort.shed, 0u);
  EXPECT_GT(best_effort.shed, gold.shed);
  EXPECT_GT(result.sched.total_shed(), 0u);
  EXPECT_GT(result.sched.parked, 0u);
}

TEST(Population, OpenLoopMmppStreamKeepsArrivingUnderBackpressure) {
  PopulationConfig config = small_config();
  config.mmpp.calm_rps = 30;
  config.mmpp.burst_rps = 600;
  config.mmpp_tenant = 2;  // batch tenant -> best_effort class
  const PopulationResult result = run_population(config);
  EXPECT_GT(result.open_loop_sent, 0u);
}

TEST(Population, TraceSamplingTagsSpansWithTheirShard) {
  PopulationConfig config = small_config();
  config.trace_sample_every = 5;
  const PopulationResult result = run_population(config);
  ASSERT_EQ(result.shards.size(), 2u);
  std::size_t spans_seen = 0;
  for (const ShardResult& shard : result.shards) {
    for (const trace::Span& span : shard.spans) {
      ++spans_seen;
      EXPECT_EQ(span.shard, shard.shard);
    }
  }
  EXPECT_GT(spans_seen, 0u);
}

TEST(Population, ShardConfigSplitsClientsExactly) {
  PopulationConfig config;
  config.clients = 10;
  config.shards = 4;
  std::uint32_t total = 0;
  for (std::uint32_t i = 0; i < config.shards; ++i) {
    total += config.shard_config(i).clients;
  }
  EXPECT_EQ(total, 10u);
}

}  // namespace
}  // namespace maqs::load

#include "load/workload.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace maqs::load {
namespace {

TEST(ThinkTime, SamplesStayWithinTheBoundedParetoSupport) {
  ThinkTimeModel model;
  model.minimum = 2 * sim::kSecond;
  model.cap = 60 * sim::kSecond;
  util::Rng rng(41);
  double mean = 0;
  constexpr int kSamples = 20'000;
  for (int i = 0; i < kSamples; ++i) {
    const sim::Duration think = model.sample(rng);
    ASSERT_GE(think, model.minimum);
    ASSERT_LE(think, model.cap);
    mean += static_cast<double>(think) / kSamples;
  }
  // Unbounded Pareto mean is minimum * alpha/(alpha-1) = 3 * minimum; the
  // cap pulls it down. Sanity-check the heavy tail actually shows up.
  EXPECT_GT(mean, static_cast<double>(2 * model.minimum));
  EXPECT_LT(mean, static_cast<double>(4 * model.minimum));
}

TEST(ThinkTime, SameSeedReplaysTheSameSequence) {
  ThinkTimeModel model;
  util::Rng a(1337);
  util::Rng b(1337);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(model.sample(a), model.sample(b));
  }
}

TEST(Population, SplitIsExactAndRoughlyProportional) {
  std::vector<TenantSpec> tenants(3);
  tenants[0].population_share = 0.15;
  tenants[1].population_share = 0.25;
  tenants[2].population_share = 0.60;
  const auto split = split_population(tenants, 1'000'003);
  ASSERT_EQ(split.size(), 3u);
  EXPECT_EQ(split[0] + split[1] + split[2], 1'000'003u);
  EXPECT_NEAR(static_cast<double>(split[2]), 600'001.8, 3.0);
  // Degenerate shares: everything lands on the first tenant.
  tenants[0].population_share = 0;
  tenants[1].population_share = 0;
  tenants[2].population_share = 0;
  const auto degenerate = split_population(tenants, 77);
  EXPECT_EQ(degenerate[0], 77u);
}

TEST(Population, SampleOpHonorsZeroWeights) {
  TenantSpec tenant;
  tenant.op_mix[0] = 0;
  tenant.op_mix[1] = 0;
  tenant.op_mix[2] = 1.0;
  tenant.op_mix[3] = 0;
  util::Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(sample_op(tenant, rng), OpKind::kWovenBlob);
  }
}

TEST(Mmpp, DeterministicPositiveGapsAndStateAlternation) {
  MmppConfig config;
  config.calm_rps = 20;
  config.burst_rps = 2000;
  config.calm_dwell_mean = 500 * sim::kMillisecond;
  config.burst_dwell_mean = 100 * sim::kMillisecond;

  MmppArrivals a(config);
  MmppArrivals b(config);
  util::Rng rng_a(42);
  util::Rng rng_b(42);
  bool saw_burst = false;
  bool saw_calm = false;
  for (int i = 0; i < 5000; ++i) {
    const sim::Duration gap = a.next_arrival(rng_a);
    EXPECT_EQ(gap, b.next_arrival(rng_b));
    ASSERT_GT(gap, 0);
    (a.bursting() ? saw_burst : saw_calm) = true;
  }
  EXPECT_TRUE(saw_burst);
  EXPECT_TRUE(saw_calm);
}

TEST(Mmpp, SilentCalmStateStillProducesBurstArrivals) {
  MmppConfig config;
  config.calm_rps = 0;  // silent between bursts
  config.burst_rps = 1000;
  MmppArrivals arrivals(config);
  util::Rng rng(7);
  sim::Duration total = 0;
  for (int i = 0; i < 200; ++i) {
    const sim::Duration gap = arrivals.next_arrival(rng);
    ASSERT_GT(gap, 0);
    total += gap;
  }
  EXPECT_GT(total, 0);
}

}  // namespace
}  // namespace maqs::load

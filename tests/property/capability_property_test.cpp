// Capability-matrix protocol properties:
//   1. counter-offer convergence: against a fixed-capacity server, the
//      offer/counter/accept loop settles within dimensions+1 rounds for
//      random preference lattices and random budgets,
//   2. lattice-degradation monotonicity: no degradation step of the real
//      characteristics increases any resource cost, and the resource-aware
//      lattice policy strictly relieves the violated budget,
//   3. version rollback: a failed server-side rebind restores the exact
//      prior matrix, params, and version, and the next renegotiation
//      against that version succeeds.
#include <gtest/gtest.h>

#include "characteristics/compression.hpp"
#include "characteristics/encryption.hpp"
#include "core/adaptation.hpp"
#include "core/negotiation.hpp"
#include "net/network.hpp"
#include "support/qos_echo.hpp"
#include "util/rng.hpp"

namespace maqs::core {
namespace {

using maqs::testing::EchoStub;
using maqs::testing::QosEchoImpl;

// ---- 1. counter-offer convergence ----

/// Random lattice whose dimension values ARE their own cost: ranked longs,
/// strictly decreasing, so every degradation step is cheaper and the
/// summed demand is monotone by construction.
CharacteristicProvider random_provider(util::Rng& rng) {
  const std::size_t dims = 1 + rng.next() % 4;
  std::vector<DimensionDesc> dimensions;
  for (std::size_t d = 0; d < dims; ++d) {
    const std::size_t depth = 2 + rng.next() % 4;
    std::vector<cdr::Any> ranked;
    std::int64_t cost = 1 + static_cast<std::int64_t>(rng.next() % 20);
    for (std::size_t r = 0; r < depth; ++r) {
      ranked.push_back(cdr::Any::from_longlong(cost));
      cost += 1 + static_cast<std::int64_t>(rng.next() % 20);
    }
    std::reverse(ranked.begin(), ranked.end());  // best (priciest) first
    dimensions.push_back(DimensionDesc{"dim" + std::to_string(d),
                                       std::move(ranked),
                                       static_cast<int>(rng.next() % 3)});
  }
  CharacteristicProvider provider;
  provider.descriptor = CharacteristicDescriptor(
      "prop.random", QosCategory::kOther, {}, std::move(dimensions), {});
  provider.resource_demand =
      [](const std::map<std::string, cdr::Any>& params) {
        ResourceDemand demand;
        double total = 0.0;
        for (const auto& [_, value] : params) {
          total += static_cast<double>(value.as_integer());
        }
        demand["capacity"] = total;
        return demand;
      };
  return provider;
}

TEST(CapabilityPropertyTest, CounterOfferLoopConvergesWithinDimsPlusOne) {
  util::Rng rng(0xC0FFEE);
  for (int iteration = 0; iteration < 200; ++iteration) {
    const CharacteristicProvider provider = random_provider(rng);
    const std::size_t dims = provider.descriptor.dimensions().size();

    // Random budget between "nothing fits" and "everything fits".
    double max_total = 0.0;
    for (const DimensionDesc& dim : provider.descriptor.dimensions()) {
      max_total += static_cast<double>(dim.ranked.front().as_integer());
    }
    ResourceManager resources;
    resources.declare("capacity",
                      rng.next_double() * (max_total + 10.0));

    // Client model: offer at a random restricted point, confirm whatever
    // the server counters (no preference bounds).
    CapabilityMatrix offer = provider.descriptor.default_matrix();
    for (const DimensionDesc& dim : provider.descriptor.dimensions()) {
      const cdr::Any& start = dim.ranked[rng.next() % dim.ranked.size()];
      ASSERT_TRUE(offer.restrict_to(dim.name, start));
    }

    int rounds = 0;
    bool settled = false;
    while (!settled && rounds <= static_cast<int>(dims) + 1) {
      ++rounds;
      const OfferReview review =
          review_offer(provider, resources, nullptr, offer, {});
      switch (review.kind) {
        case AdmissionDecision::Kind::kAccept:
          // Accepted demand is reserved and within budget.
          EXPECT_TRUE(review.reserved);
          EXPECT_LE(resources.reserved("capacity"),
                    resources.capacity("capacity"));
          settled = true;
          break;
        case AdmissionDecision::Kind::kReject:
          settled = true;
          break;
        case AdmissionDecision::Kind::kCounter: {
          // Counters never hold resources and are strictly lower in the
          // lattice than the client's offer.
          EXPECT_DOUBLE_EQ(resources.reserved("capacity"), 0.0);
          EXPECT_GT(review.matrix.rank_distance(), offer.rank_distance());
          offer = review.matrix;
          break;
        }
      }
    }
    ASSERT_TRUE(settled) << "no convergence within dims+1 = " << dims + 1
                         << " rounds (iteration " << iteration << ")";
  }
}

// ---- 2. lattice-degradation monotonicity ----

/// Every point of the descriptor's lattice, by chosen-index enumeration.
std::vector<CapabilityMatrix> all_points(
    const CharacteristicDescriptor& descriptor) {
  std::vector<CapabilityMatrix> points{descriptor.default_matrix()};
  for (std::size_t d = 0; d < descriptor.dimensions().size(); ++d) {
    std::vector<CapabilityMatrix> expanded;
    for (const CapabilityMatrix& base : points) {
      for (const cdr::Any& value : descriptor.dimensions()[d].ranked) {
        CapabilityMatrix point = base;
        EXPECT_TRUE(point.choose(descriptor.dimensions()[d].name, value));
        expanded.push_back(std::move(point));
      }
    }
    points = std::move(expanded);
  }
  return points;
}

void expect_no_cost_increase(const CharacteristicProvider& provider,
                             const std::map<std::string, cdr::Any>& scalars) {
  for (const CapabilityMatrix& point :
       all_points(provider.descriptor)) {
    std::map<std::string, cdr::Any> before_params = scalars;
    for (const auto& [name, value] : point.chosen_params()) {
      before_params[name] = value;
    }
    const ResourceDemand before = provider.resource_demand(before_params);
    for (std::size_t d = 0; d < point.dimensions().size(); ++d) {
      CapabilityMatrix stepped = point;
      if (!stepped.degrade_dimension(d)) continue;
      std::map<std::string, cdr::Any> after_params = scalars;
      for (const auto& [name, value] : stepped.chosen_params()) {
        after_params[name] = value;
      }
      const ResourceDemand after = provider.resource_demand(after_params);
      for (const auto& [resource, cost] : after) {
        const auto it = before.find(resource);
        ASSERT_NE(it, before.end());
        EXPECT_LE(cost, it->second)
            << provider.descriptor.name() << ": degrading dimension "
            << point.dimensions()[d].name << " raised " << resource;
      }
    }
  }
}

TEST(CapabilityPropertyTest, DegradationNeverIncreasesAnyResourceCost) {
  expect_no_cost_increase(
      characteristics::make_compression_provider(),
      {{"level", cdr::Any::from_long(32)},
       {"min_size", cdr::Any::from_long(64)}});
  expect_no_cost_increase(characteristics::make_encryption_psk_provider(),
                          {{"psk", cdr::Any::from_string("prop")}});
}

TEST(CapabilityPropertyTest, LatticePolicyStrictlyRelievesViolatedResource) {
  ProviderRegistry providers;
  providers.add(characteristics::make_compression_provider());
  const AdaptationManager::Policy policy = make_lattice_policy(providers);
  const CharacteristicProvider& provider =
      providers.get(characteristics::compression_name());

  for (const CapabilityMatrix& point : all_points(provider.descriptor)) {
    Agreement agreement;
    agreement.characteristic = characteristics::compression_name();
    agreement.matrix = point;
    agreement.params = {{"level", cdr::Any::from_long(32)},
                        {"min_size", cdr::Any::from_long(64)}};
    for (const auto& [name, value] : point.chosen_params()) {
      agreement.params[name] = value;
    }
    const ResourceDemand before =
        provider.resource_demand(agreement.params);

    const auto proposal =
        policy(agreement, "resource overload: bandwidth");
    if (point.at_floor()) {
      EXPECT_FALSE(proposal.has_value());  // nothing left: terminate
      continue;
    }
    ASSERT_TRUE(proposal.has_value());
    std::map<std::string, cdr::Any> after_params = agreement.params;
    for (const auto& [name, value] : *proposal) after_params[name] = value;
    const ResourceDemand after = provider.resource_demand(after_params);
    // The step strictly relieves the violated budget and raises nothing.
    EXPECT_LT(after.at("bandwidth"), before.at("bandwidth"));
    for (const auto& [resource, cost] : after) {
      EXPECT_LE(cost, before.at(resource));
    }
  }
}

// ---- 3. version rollback ----

const std::string& rollback_name() {
  static const std::string kName = "prop.rollback";
  return kName;
}

/// Server delegate that refuses to rebind when the agreement carries
/// poison=true — the hook the rollback property needs to force a rebind
/// failure mid-renegotiation.
class PoisonImpl final : public QosImpl {
 public:
  PoisonImpl() : QosImpl(rollback_name()) {}
  void bind_agreement(const Agreement& agreement) override {
    if (agreement.bool_param_or("poison", false)) {
      throw QosError("prop.rollback: poisoned rebind");
    }
    QosImpl::bind_agreement(agreement);
  }
};

CharacteristicProvider make_rollback_provider() {
  CharacteristicProvider provider;
  provider.descriptor = CharacteristicDescriptor(
      rollback_name(), QosCategory::kOther,
      {ParamDesc{"poison", cdr::TypeCode::boolean_tc(),
                 cdr::Any::from_bool(false), std::nullopt, std::nullopt}},
      {DimensionDesc{"mode",
                     {cdr::Any::from_string("full"),
                      cdr::Any::from_string("lite"),
                      cdr::Any::from_string("off")},
                     0}},
      {});
  provider.make_impl = [](const Agreement&, orb::Orb&, QosTransport&) {
    return std::make_shared<PoisonImpl>();
  };
  return provider;
}

TEST(CapabilityPropertyTest, FailedRebindRollsBackToExactPriorMatrix) {
  sim::EventLoop loop;
  net::Network net(loop);
  orb::Orb server(net, "server", 9000);
  orb::Orb client(net, "client", 9001);
  QosTransport server_transport(server);
  QosTransport client_transport(client);
  ResourceManager resources;
  ProviderRegistry providers;
  providers.add(make_rollback_provider());
  NegotiationService negotiation(server_transport, providers, resources);
  Negotiator negotiator(client_transport, providers);

  auto servant = std::make_shared<QosEchoImpl>();
  servant->assign_characteristic(make_rollback_provider().descriptor);
  orb::QosProfile profile;
  profile.characteristic = rollback_name();
  const orb::ObjRef ref =
      server.adapter().activate("rollback-1", servant, {profile});
  EchoStub stub(client, ref);

  const Agreement agreement =
      negotiator.negotiate(stub, rollback_name(), {});
  EXPECT_EQ(agreement.version(), 1);
  EXPECT_EQ(agreement.string_param("mode"), "full");
  const Agreement* server_side = negotiation.agreements().find(agreement.id);
  ASSERT_NE(server_side, nullptr);
  const CapabilityMatrix before = server_side->matrix;
  const std::map<std::string, cdr::Any> before_params = server_side->params;

  // Poisoned renegotiation: the server accepts the offer, bumps the
  // draft, then the rebind throws — everything must roll back.
  EXPECT_THROW(
      negotiator.renegotiate(stub, agreement,
                             {{"mode", cdr::Any::from_string("lite")},
                              {"poison", cdr::Any::from_bool(true)}}),
      NegotiationFailed);
  server_side = negotiation.agreements().find(agreement.id);
  ASSERT_NE(server_side, nullptr);
  EXPECT_EQ(server_side->version(), 1);  // exact prior version
  EXPECT_TRUE(server_side->matrix.same_point(before));
  EXPECT_EQ(server_side->string_param("mode"), "full");
  EXPECT_FALSE(server_side->bool_param_or("poison", false));
  EXPECT_EQ(server_side->params.size(), before_params.size());
  EXPECT_EQ(server_side->state, AgreementState::kActive);

  // The restored generation is fully functional: a clean renegotiation
  // against the rolled-back version succeeds and increments it by one.
  const Agreement updated = negotiator.renegotiate(
      stub, agreement, {{"mode", cdr::Any::from_string("lite")}});
  EXPECT_EQ(updated.version(), 2);
  EXPECT_EQ(updated.string_param("mode"), "lite");
}

}  // namespace
}  // namespace maqs::core

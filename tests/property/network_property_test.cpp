// Property tests for the network simulator.
//
//  P1  conservation: sent == delivered + dropped once the loop drains.
//  P2  per-directed-pair FIFO: with jitter disabled, messages between the
//      same two endpoints arrive in send order (reliable in-order
//      transport, the contract GIOP assumes).
//  P3  virtual-time causality: no message arrives before latency +
//      serialization would allow.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "util/rng.hpp"

namespace maqs::net {
namespace {

class NetPropertyP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetPropertyP, MessageConservation) {
  util::Rng rng(GetParam());
  sim::EventLoop loop;
  Network net(loop, GetParam());
  const int kNodes = 5;
  for (int i = 0; i < kNodes; ++i) {
    net.add_node("n" + std::to_string(i));
  }
  // Some nodes bound, some not; some links lossy.
  std::uint64_t received = 0;
  for (int i = 0; i < kNodes; ++i) {
    if (i % 2 == 0) {
      net.bind({"n" + std::to_string(i), 1},
               [&](const Address&, const util::Bytes&) { ++received; });
    }
  }
  net.set_default_link(LinkParams{.latency = sim::kMillisecond,
                                  .bandwidth_bps = 1e6,
                                  .loss_rate = 0.2,
                                  .jitter = sim::kMillisecond});
  const int kMessages = 500;
  for (int i = 0; i < kMessages; ++i) {
    const std::string from = "n" + std::to_string(rng.next_below(kNodes));
    const std::string to = "n" + std::to_string(rng.next_below(kNodes));
    if (from == to) continue;
    util::Bytes payload(rng.next_below(100));
    net.send({from, 1}, {to, 1}, payload);
    if (rng.chance(0.05)) {
      // Random crash/restart churn mid-stream.
      net.crash(to);
      net.restart(to);
    }
  }
  loop.run_until_idle();
  const NetStats& stats = net.stats();
  EXPECT_EQ(stats.messages_sent,
            stats.messages_delivered + stats.messages_dropped);
  EXPECT_EQ(stats.messages_delivered, received);
}

TEST_P(NetPropertyP, PerPairFifoWithoutJitter) {
  util::Rng rng(GetParam() ^ 0xF1F0);
  sim::EventLoop loop;
  Network net(loop, GetParam());
  net.add_node("a");
  net.add_node("b");
  net.set_link("a", "b",
               LinkParams{.latency = 3 * sim::kMillisecond,
                          .bandwidth_bps = 1e5});
  std::vector<std::uint32_t> arrived;
  std::vector<std::uint32_t> send_order;
  net.bind({"b", 1}, [&](const Address&, const util::Bytes& payload) {
    arrived.push_back(static_cast<std::uint32_t>(payload[0]) |
                      (static_cast<std::uint32_t>(payload[1]) << 8));
  });
  // Random-size messages sent at random times, tagged with a sequence no.
  for (std::uint32_t seq = 0; seq < 100; ++seq) {
    const sim::Duration at =
        static_cast<sim::Duration>(rng.next_below(50)) * sim::kMillisecond;
    loop.schedule(at, [&net, seq, &rng, &send_order] {
      send_order.push_back(seq);
      util::Bytes payload(2 + rng.next_below(64));
      payload[0] = static_cast<std::uint8_t>(seq);
      payload[1] = static_cast<std::uint8_t>(seq >> 8);
      net.send({"a", 1}, {"b", 1}, payload);
    });
  }
  loop.run_until_idle();
  ASSERT_EQ(arrived.size(), 100u);
  // Reliable in-order transport: arrival order equals the order the
  // sends actually executed (link serialization + event-loop FIFO must
  // never let a later message overtake an earlier one on the same
  // directed pair).
  EXPECT_EQ(arrived, send_order);
}

TEST_P(NetPropertyP, CausalityNoEarlyDelivery) {
  util::Rng rng(GetParam() ^ 0xCAFE);
  sim::EventLoop loop;
  Network net(loop, GetParam());
  net.add_node("a");
  net.add_node("b");
  const double bw = 8e5;  // 100 bytes/ms
  net.set_link("a", "b",
               LinkParams{.latency = 5 * sim::kMillisecond,
                          .bandwidth_bps = bw});
  struct Sent {
    sim::TimePoint at;
    std::size_t size;
  };
  std::vector<Sent> sends;
  std::vector<sim::TimePoint> arrivals;
  net.bind({"b", 1}, [&](const Address&, const util::Bytes&) {
    arrivals.push_back(loop.now());
  });
  for (int i = 0; i < 50; ++i) {
    const sim::Duration at =
        static_cast<sim::Duration>(rng.next_below(100)) * sim::kMillisecond;
    const std::size_t size = 1 + rng.next_below(1000);
    loop.schedule(at, [&net, size, &sends, &loop] {
      sends.push_back({loop.now(), size});
      net.send({"a", 1}, {"b", 1}, util::Bytes(size, 0));
    });
  }
  loop.run_until_idle();
  ASSERT_EQ(arrivals.size(), sends.size());
  // In-order per pair; arrival i corresponds to send i (FIFO). Each must
  // respect min physical delay: latency + own serialization.
  for (std::size_t i = 0; i < sends.size(); ++i) {
    const sim::Duration min_delay =
        5 * sim::kMillisecond +
        sim::from_seconds(static_cast<double>(sends[i].size) * 8.0 / bw);
    EXPECT_GE(arrivals[i] - sends[i].at, min_delay - 1) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetPropertyP,
                         ::testing::Values(3u, 17u, 99u, 2024u));

}  // namespace
}  // namespace maqs::net

// Property tests for the edge gateway's protocol layers.
//
//  P1  the HTTP parser is split-invariant: any torn-read segmentation of a
//      valid wire image yields exactly the same requests.
//  P2  pipelining: N random requests concatenated and fed in random slices
//      come back in order with bodies intact.
//  P3  chunked framing is a round trip: random bodies survive random
//      chunking (with extensions and trailers) byte-for-byte.
//  P4  JSON⇄Any is the identity on random values of every
//      QIDL-representable type (scalars, strings, enums, sequences,
//      nested structs).
//  P5  the parser is total on byte soup: random input either parses or
//      poisons — never crashes, loops, or silently drops bytes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cdr/any.hpp"
#include "cdr/typecode.hpp"
#include "gateway/http.hpp"
#include "gateway/json.hpp"
#include "util/rng.hpp"

namespace maqs::gateway {
namespace {

using cdr::Any;
using cdr::TCKind;
using cdr::TypeCode;

util::Bytes bytes(std::string_view s) {
  return util::Bytes(s.begin(), s.end());
}

std::string body_text(const HttpRequest& req) {
  return std::string(reinterpret_cast<const char*>(req.body.data()),
                     req.body.size());
}

std::string random_body(util::Rng& rng, std::size_t max_len) {
  std::string body;
  const std::size_t n = rng.next_below(max_len + 1);
  for (std::size_t i = 0; i < n; ++i) {
    // Bodies are opaque octets: exercise the full byte range including
    // CR, LF and NUL, which must not confuse the framing layer.
    body.push_back(static_cast<char>(rng.next() & 0xff));
  }
  return body;
}

std::string encode_request(const std::string& target, const std::string& body) {
  return "POST " + target + " HTTP/1.1\r\ncontent-length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

/// Feeds `wire` to a parser in random slices and returns every completed
/// request.
std::vector<HttpRequest> parse_in_slices(util::Rng& rng,
                                         const std::string& wire) {
  HttpParser parser;
  std::vector<HttpRequest> out;
  std::size_t pos = 0;
  while (pos < wire.size()) {
    const std::size_t len =
        1 + rng.next_below(std::min<std::size_t>(wire.size() - pos, 37));
    parser.feed(bytes(std::string_view(wire).substr(pos, len)));
    pos += len;
    HttpRequest req;
    while (parser.poll(req) == HttpParser::Result::kRequest) {
      out.push_back(std::move(req));
      req = HttpRequest{};
    }
  }
  return out;
}

TEST(GatewayHttpProperty, TornReadSegmentationIsInvariant) {
  util::Rng rng(0xfeed5);
  for (int round = 0; round < 200; ++round) {
    const std::string body = random_body(rng, 64);
    const std::string wire = encode_request("/api/Echo/echo", body);
    const auto requests = parse_in_slices(rng, wire);
    ASSERT_EQ(requests.size(), 1u) << "round=" << round;
    EXPECT_EQ(requests[0].target, "/api/Echo/echo");
    EXPECT_EQ(body_text(requests[0]), body) << "round=" << round;
  }
}

TEST(GatewayHttpProperty, PipelinedRequestsSurviveRandomSlicing) {
  util::Rng rng(0xfeed6);
  for (int round = 0; round < 100; ++round) {
    const std::size_t count = 1 + rng.next_below(8);
    std::vector<std::string> bodies;
    std::string wire;
    for (std::size_t i = 0; i < count; ++i) {
      bodies.push_back(random_body(rng, 48));
      wire += encode_request("/r/" + std::to_string(i), bodies.back());
    }
    const auto requests = parse_in_slices(rng, wire);
    ASSERT_EQ(requests.size(), count) << "round=" << round;
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(requests[i].target, "/r/" + std::to_string(i));
      EXPECT_EQ(body_text(requests[i]), bodies[i]) << "round=" << round;
    }
  }
}

TEST(GatewayHttpProperty, ChunkedBodiesRoundTrip) {
  util::Rng rng(0xfeed7);
  for (int round = 0; round < 200; ++round) {
    const std::string body = random_body(rng, 256);
    std::string wire =
        "POST /c HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n";
    std::size_t pos = 0;
    char size_buf[32];
    while (pos < body.size()) {
      const std::size_t len =
          1 + rng.next_below(std::min<std::size_t>(body.size() - pos, 41));
      std::snprintf(size_buf, sizeof size_buf, "%zx", len);
      wire += size_buf;
      if (rng.chance(0.25)) wire += ";ext=1";  // chunk extensions ignored
      wire += "\r\n";
      wire.append(body, pos, len);
      wire += "\r\n";
      pos += len;
    }
    wire += "0\r\n";
    if (rng.chance(0.25)) wire += "x-trailer: t\r\n";  // trailers skipped
    wire += "\r\n";

    const auto requests = parse_in_slices(rng, wire);
    ASSERT_EQ(requests.size(), 1u) << "round=" << round;
    EXPECT_EQ(body_text(requests[0]), body) << "round=" << round;
  }
}

TEST(GatewayHttpProperty, ParserIsTotalOnByteSoup) {
  util::Rng rng(0xfeed8);
  for (int round = 0; round < 300; ++round) {
    HttpParser parser;
    // Start some rounds with a plausible prefix so deeper states get hit.
    std::string soup;
    switch (rng.next_below(3)) {
      case 0: break;
      case 1: soup = "POST /x HTTP/1.1\r\n"; break;
      default: soup = "POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n";
    }
    const std::size_t n = rng.next_below(512);
    for (std::size_t i = 0; i < n; ++i) {
      soup.push_back(static_cast<char>(rng.next() & 0xff));
    }
    parser.feed(bytes(soup));
    HttpRequest req;
    // Must terminate: every poll either consumes progress or stops.
    for (int i = 0; i < 64; ++i) {
      const auto result = parser.poll(req);
      if (result != HttpParser::Result::kRequest) break;
    }
    if (parser.poisoned()) {
      EXPECT_FALSE(parser.error().empty());
    }
  }
}

// ---- P4: JSON⇄Any identity --------------------------------------------

/// Random TypeCode covering every QIDL-representable shape. Depth bounds
/// nesting; element/member types recurse.
cdr::TypeCodePtr random_typecode(util::Rng& rng, int depth) {
  const int pick = static_cast<int>(rng.next_below(depth > 0 ? 11 : 9));
  switch (pick) {
    case 0: return TypeCode::boolean_tc();
    case 1: return TypeCode::octet_tc();
    case 2: return TypeCode::short_tc();
    case 3: return TypeCode::long_tc();
    case 4: return TypeCode::longlong_tc();
    case 5: return TypeCode::float_tc();
    case 6: return TypeCode::double_tc();
    case 7: return TypeCode::string_tc();
    case 8: {
      std::vector<std::string> names;
      const std::size_t n = 1 + rng.next_below(4);
      for (std::size_t i = 0; i < n; ++i) {
        names.push_back("e" + std::to_string(i));
      }
      return TypeCode::enum_tc("E", std::move(names));
    }
    case 9: return TypeCode::sequence_tc(random_typecode(rng, depth - 1));
    default: {
      std::vector<std::pair<std::string, cdr::TypeCodePtr>> members;
      const std::size_t n = 1 + rng.next_below(3);
      for (std::size_t i = 0; i < n; ++i) {
        members.emplace_back("m" + std::to_string(i),
                             random_typecode(rng, depth - 1));
      }
      return TypeCode::struct_tc("S", std::move(members));
    }
  }
}

/// Random value of exactly `tc`'s type.
Any random_value(util::Rng& rng, const cdr::TypeCodePtr& tc) {
  switch (tc->kind()) {
    case TCKind::kBoolean: return Any::from_bool(rng.chance(0.5));
    case TCKind::kOctet:
      return Any::from_octet(static_cast<std::uint8_t>(rng.next()));
    case TCKind::kShort:
      return Any::from_short(static_cast<std::int16_t>(rng.next()));
    case TCKind::kLong:
      return Any::from_long(static_cast<std::int32_t>(rng.next()));
    case TCKind::kLongLong:
      return Any::from_longlong(static_cast<std::int64_t>(rng.next()));
    case TCKind::kFloat:
      return Any::from_float(static_cast<float>(rng.next_double() * 100.0));
    case TCKind::kDouble:
      return Any::from_double(rng.next_double() * 1e9 - 5e8);
    case TCKind::kString: {
      std::string s;
      const std::size_t n = rng.next_below(24);
      for (std::size_t i = 0; i < n; ++i) {
        s.push_back(static_cast<char>(rng.uniform(32, 126)));
      }
      return Any::from_string(std::move(s));
    }
    case TCKind::kEnum:
      return Any::from_enum(
          tc, static_cast<std::uint32_t>(
                  rng.next_below(tc->enumerators().size())));
    case TCKind::kSequence: {
      std::vector<Any> items;
      const std::size_t n = rng.next_below(4);
      for (std::size_t i = 0; i < n; ++i) {
        items.push_back(random_value(rng, tc->element()));
      }
      return Any::from_sequence(tc->element(), std::move(items));
    }
    default: {  // struct
      std::vector<Any> fields;
      for (const auto& [name, member_tc] : tc->members()) {
        (void)name;
        fields.push_back(random_value(rng, member_tc));
      }
      return Any::from_struct(tc, std::move(fields));
    }
  }
}

TEST(GatewayJsonProperty, JsonAnyIdentityOnRandomTypedValues) {
  util::Rng rng(0xfeed9);
  for (int round = 0; round < 500; ++round) {
    const cdr::TypeCodePtr tc = random_typecode(rng, 3);
    const Any value = random_value(rng, tc);
    const std::string doc = write_json(any_to_json(value));
    const Any back = json_to_any(parse_json(doc), tc);
    EXPECT_EQ(back, value) << "round=" << round << " doc=" << doc;
  }
}

TEST(GatewayJsonProperty, WriterParserFixedPoint) {
  util::Rng rng(0xfeeda);
  for (int round = 0; round < 300; ++round) {
    const cdr::TypeCodePtr tc = random_typecode(rng, 3);
    const JsonValue json = any_to_json(random_value(rng, tc));
    const std::string once = write_json(json);
    EXPECT_EQ(write_json(parse_json(once)), once) << "round=" << round;
  }
}

}  // namespace
}  // namespace maqs::gateway

// Streaming-vs-legacy wire equivalence for the transform pipeline.
//
// The TransformChain pipeline (core/transform.hpp) replaced the
// copy-per-stage transform hooks, and its one contract is that the wire
// bytes did not move: every frame a streaming stage emits must be
// byte-identical to the frame the legacy Bytes-in/Bytes-out path built.
// This suite recomposes the legacy frames from the public codec/crypto
// primitives — marker octet + codec stream for compression,
// [epoch:i64][mac:u64][XTEA-CTR ciphertext] for encryption — and checks
// the chain against them over randomized payloads, for every stack shape
// ({RLE, LZ77} x {cipher on/off} x {MAC on/off}), both directions.
//
// A second group pins the composite-mediator fusing decision: a chain
// fused into one arena run and the per-mediator fallback loop (forced by
// one stage-less member) must produce identical request and reply bodies.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>

#include "characteristics/compression.hpp"
#include "characteristics/encryption.hpp"
#include "compress/codec.hpp"
#include "core/mediator.hpp"
#include "core/transform.hpp"
#include "crypto/mac.hpp"
#include "crypto/xtea.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace maqs::testing {
namespace {

using characteristics::CompressionTransform;
using characteristics::EncryptionTransform;
using characteristics::PskKeySource;

// ---- legacy frame reference (public primitives only) ----

/// Wire constants pinned here on purpose: if the pipeline ever changes
/// them, this suite must fail rather than follow along.
constexpr std::uint64_t kReplyNonceFlip = 0x8000000000000001ULL;

std::uint64_t legacy_nonce(std::uint64_t request_id, bool reply) {
  return reply ? request_id ^ kReplyNonceFlip : request_id;
}

std::uint64_t legacy_fingerprint(const crypto::Key128& key) {
  return (static_cast<std::uint64_t>(key[0]) << 32 | key[1]) ^
         (static_cast<std::uint64_t>(key[2]) << 32 | key[3]);
}

void append_le64(util::Bytes& out, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
  }
}

/// Legacy compression frame: marker octet (0 = raw, 1 = compressed) +
/// stream; raw whenever the payload is below min_size or the codec fails
/// to shrink it.
util::Bytes legacy_compress(const compress::Codec& codec,
                            std::int64_t min_size, util::BytesView payload) {
  util::Bytes frame;
  if (static_cast<std::int64_t>(payload.size()) >= min_size) {
    const util::Bytes compressed = codec.compress(payload);
    if (compressed.size() < payload.size()) {
      frame.reserve(1 + compressed.size());
      frame.push_back(0x01);
      frame.insert(frame.end(), compressed.begin(), compressed.end());
      return frame;
    }
  }
  frame.reserve(1 + payload.size());
  frame.push_back(0x00);
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

/// Legacy encryption frame: [epoch:i64 LE][mac:u64 LE][ciphertext], tag
/// computed over the ciphertext (0 when integrity is off).
util::Bytes legacy_encrypt(const crypto::Key128& key, bool integrity,
                           std::int64_t epoch, std::uint64_t nonce,
                           util::BytesView plain) {
  const util::Bytes cipher = crypto::XteaCtr(key, nonce).apply(plain);
  util::Bytes frame;
  frame.reserve(16 + cipher.size());
  append_le64(frame, static_cast<std::uint64_t>(epoch));
  append_le64(frame,
              integrity ? crypto::mac64(legacy_fingerprint(key), cipher) : 0);
  frame.insert(frame.end(), cipher.begin(), cipher.end());
  return frame;
}

/// Mixed-compressibility payload: runs of a repeated byte interleaved
/// with incompressible noise, so both codec branches (shrunk and raw
/// fallback) get exercised.
util::Bytes random_payload(util::Rng& rng, std::size_t max_size) {
  const std::size_t size = rng.next_below(max_size + 1);
  util::Bytes data;
  data.reserve(size);
  while (data.size() < size) {
    const std::size_t left = size - data.size();
    if (rng.next_below(2) == 0) {
      const std::size_t run = std::min<std::size_t>(1 + rng.next_below(64),
                                                    left);
      data.insert(data.end(), run, static_cast<std::uint8_t>(rng.next()));
    } else {
      const std::size_t run = std::min<std::size_t>(1 + rng.next_below(32),
                                                    left);
      for (std::size_t i = 0; i < run; ++i) {
        data.push_back(static_cast<std::uint8_t>(rng.next()));
      }
    }
  }
  return data;
}

constexpr std::int64_t kMinSize = 64;

// ---- streaming chain vs legacy frames ----

/// (codec name, encrypt?, integrity?, seed)
using StackParam = std::tuple<std::string, bool, bool, std::uint64_t>;

class StreamingEquivalenceP : public ::testing::TestWithParam<StackParam> {};

TEST_P(StreamingEquivalenceP, ChainMatchesLegacyFramesAndInverts) {
  const auto& [codec_name, encrypt, integrity, seed] = GetParam();
  util::Rng rng(seed);

  CompressionTransform compression;
  compression.set_codec(compress::make_codec(codec_name));
  compression.set_min_size(kMinSize);

  PskKeySource source;
  const crypto::Key128 key =
      crypto::derive_key(util::to_bytes("equivalence-secret"));
  source.configure(key, integrity);
  EncryptionTransform encryption(source);

  core::TransformChain chain;
  chain.add(&compression);
  if (encrypt) chain.add(&encryption);

  // Independent codec instance for the reference: the streaming chain's
  // output must not depend on the codec's internal match-history state.
  const std::unique_ptr<compress::Codec> ref_codec =
      compress::make_codec(codec_name);

  for (int i = 0; i < 40; ++i) {
    const util::Bytes payload = random_payload(rng, 8192);
    const std::uint64_t request_id = rng.next();
    for (const bool reply : {false, true}) {
      util::Bytes expected = legacy_compress(*ref_codec, kMinSize, payload);
      if (encrypt) {
        expected = legacy_encrypt(key, integrity, 0,
                                  legacy_nonce(request_id, reply), expected);
      }

      util::Bytes body = payload;
      const core::TransformContext ctx{request_id, reply};
      chain.run_forward(body, ctx);
      ASSERT_EQ(body, expected)
          << codec_name << " encrypt=" << encrypt
          << " integrity=" << integrity << " reply=" << reply << " i=" << i;

      chain.run_reverse(body, ctx);
      ASSERT_EQ(body, payload) << codec_name << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    StacksAndSeeds, StreamingEquivalenceP,
    ::testing::Combine(::testing::Values(std::string("rle"),
                                         std::string("lz77")),
                       ::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(11u, 1234u)));

TEST(StreamingEquivalenceTest, BoundarySizesMatchLegacyFrames) {
  CompressionTransform compression;
  compression.set_codec(compress::make_codec("lz77"));
  compression.set_min_size(kMinSize);
  core::TransformChain chain;
  chain.add(&compression);
  const std::unique_ptr<compress::Codec> ref_codec =
      compress::make_codec("lz77");

  // Straddle the min_size threshold (raw below, codec decision at/above)
  // and the empty frame.
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{63}, std::size_t{64},
        std::size_t{65}, std::size_t{4096}}) {
    const util::Bytes payload(n, 0x5A);
    const util::Bytes expected = legacy_compress(*ref_codec, kMinSize,
                                                 payload);
    util::Bytes body = payload;
    chain.run_forward(body, {7, false});
    ASSERT_EQ(body, expected) << "n=" << n;
    chain.run_reverse(body, {7, false});
    ASSERT_EQ(body, payload) << "n=" << n;
  }
}

TEST(StreamingEquivalenceTest, IncompressiblePayloadShipsRawFrame) {
  CompressionTransform compression;
  compression.set_codec(compress::make_codec("lz77"));
  compression.set_min_size(kMinSize);
  core::TransformChain chain;
  chain.add(&compression);

  // High-entropy payload: LZ77 cannot shrink it, so the expansion guard
  // plus the raw-marker decision must ship it stored, one byte larger.
  util::Rng rng(99);
  util::Bytes payload(1024);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());

  util::Bytes body = payload;
  chain.run_forward(body, {1, false});
  ASSERT_EQ(body.size(), payload.size() + 1);
  EXPECT_EQ(body[0], 0x00);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), body.begin() + 1));
  chain.run_reverse(body, {1, false});
  EXPECT_EQ(body, payload);
}

// ---- fused vs per-mediator composite paths ----

/// A mediator with no streaming stage: adding it to a composite forces
/// the legacy per-mediator outbound()/inbound() loop.
class PassThroughMediator final : public core::Mediator {
 public:
  PassThroughMediator() : core::Mediator("PassThrough") {}
  void outbound(orb::RequestMessage&, orb::ObjRef&) override {}
  void inbound(const orb::RequestMessage&, orb::ReplyMessage&) override {}
};

core::Agreement compression_agreement() {
  core::Agreement agreement;
  agreement.characteristic = characteristics::compression_name();
  agreement.params = characteristics::compression_descriptor()
                         .validate_params({});
  return agreement;
}

core::Agreement encryption_agreement(const std::string& psk) {
  core::Agreement agreement;
  agreement.characteristic = characteristics::encryption_name();
  agreement.params = characteristics::encryption_descriptor().validate_params(
      {{"psk", cdr::Any::from_string(psk)}});
  return agreement;
}

std::shared_ptr<core::CompositeMediator> woven_composite(bool fused) {
  auto composite = std::make_shared<core::CompositeMediator>();
  auto compression =
      std::make_shared<characteristics::CompressionMediator>();
  compression->bind_agreement(compression_agreement());
  auto encryption = std::make_shared<characteristics::EncryptionMediator>();
  encryption->bind_agreement(encryption_agreement("fused-vs-legacy"));
  composite->add(compression);
  composite->add(encryption);
  if (!fused) composite->add(std::make_shared<PassThroughMediator>());
  return composite;
}

/// Server-sealed reply frame for the woven stack above — compress then
/// encrypt under the reply nonce — built from the legacy reference
/// helpers with the same defaults the mediators bound (lz77, min_size
/// 64, integrity on, the "fused-vs-legacy" pre-shared key).
util::Bytes seal_reply(util::BytesView payload, std::uint64_t request_id) {
  const std::unique_ptr<compress::Codec> codec = compress::make_codec("lz77");
  const crypto::Key128 key =
      crypto::derive_key(util::to_bytes("fused-vs-legacy"));
  return legacy_encrypt(key, true, 0, legacy_nonce(request_id, true),
                        legacy_compress(*codec, kMinSize, payload));
}

TEST(StreamingEquivalenceTest, FusedCompositeMatchesPerMediatorLoop) {
  auto fused = woven_composite(true);
  auto legacy = woven_composite(false);
  util::Rng rng(4242);

  for (int i = 0; i < 25; ++i) {
    const util::Bytes payload = random_payload(rng, 4096);
    orb::RequestMessage fused_req;
    fused_req.request_id = 1000 + static_cast<std::uint64_t>(i);
    fused_req.body = payload;
    orb::RequestMessage legacy_req = fused_req;
    orb::ObjRef target;

    fused->outbound(fused_req, target);
    legacy->outbound(legacy_req, target);
    ASSERT_EQ(fused_req.body, legacy_req.body) << "i=" << i;

    // Reply path: hand both composites the same server-sealed reply
    // frame; the fused reverse run and the per-mediator loop must agree
    // on its inverse.
    orb::ReplyMessage fused_rep;
    fused_rep.status = orb::ReplyStatus::kOk;
    fused_rep.body = seal_reply(payload, fused_req.request_id);
    orb::ReplyMessage legacy_rep = fused_rep;
    fused->inbound(fused_req, fused_rep);
    legacy->inbound(legacy_req, legacy_rep);
    ASSERT_EQ(fused_rep.body, legacy_rep.body) << "i=" << i;
    ASSERT_EQ(fused_rep.body, payload) << "i=" << i;
  }
}

}  // namespace
}  // namespace maqs::testing

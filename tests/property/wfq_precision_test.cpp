// Long-horizon precision properties of the fixed-point WFQ virtual clock.
//
// The regression these pin: with `double` finish tags, a multi-million
// service busy period under skewed weights grows the virtual clock until
// adding the heavy class's small stride falls below the clock's ulp and
// the heavy class silently stops advancing — fairness drifts exactly when
// a population-scale run needs it most. Fixed-point tags make every
// update exact; these tests hold the queue backlogged for >= 10M services
// at 1000:1 weights and assert the service ratio in the *tail* window is
// as tight as in the head, plus exactness of the idle reset and of the
// mid-busy-period renormalization.
#include <gtest/gtest.h>

#include <cstdint>

#include "sched/wfq.hpp"

namespace maqs::sched {
namespace {

using Queue = WeightedFairQueue<int>;

TEST(WfqPrecision, TenMillionServicesAt1000To1HoldRatioInTheTail) {
  Queue queue({1000.0, 1.0});
  // Strides are exact integers: ceil(2^20/1000) and 2^20.
  constexpr std::uint64_t kStrideHeavy = (Queue::kTagOne + 999) / 1000;
  constexpr std::uint64_t kStrideLight = Queue::kTagOne;

  constexpr std::uint64_t kTotal = 10'000'000;
  constexpr std::uint64_t kTailStart = kTotal - 1'000'000;
  std::uint64_t served[2] = {0, 0};
  std::uint64_t tail[2] = {0, 0};
  queue.push(0, 0, 0);
  queue.push(1, 0, 0);
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    const std::size_t cls = queue.pop().cls;
    ++served[cls];
    if (i >= kTailStart) ++tail[cls];
    // Immediate re-push: the class never goes idle, so this is exactly the
    // continuously-backlogged regime where double tags used to decay.
    queue.push(cls, static_cast<sim::TimePoint>(i), 0);
  }

  // Work conservation, exactly: over a fully backlogged run the per-class
  // virtual work (services x stride) can never diverge by more than one
  // stride of each — the min-tag rule serves whichever class is behind.
  const std::uint64_t work_heavy = served[0] * kStrideHeavy;
  const std::uint64_t work_light = served[1] * kStrideLight;
  const std::uint64_t gap =
      work_heavy > work_light ? work_heavy - work_light : work_light - work_heavy;
  EXPECT_LE(gap, kStrideHeavy + kStrideLight);

  // The tail window is the precision-sensitive part: 9M+ services in, a
  // drifting clock would have frozen the heavy class by now. The observed
  // ratio must match stride_light/stride_heavy (~999.6) in head and tail
  // alike.
  const double want = static_cast<double>(kStrideLight) / kStrideHeavy;
  ASSERT_GT(tail[1], 0u) << "light class starved in the tail";
  const double tail_ratio = static_cast<double>(tail[0]) / tail[1];
  EXPECT_NEAR(tail_ratio, want, want * 0.01);
  const double total_ratio = static_cast<double>(served[0]) / served[1];
  EXPECT_NEAR(total_ratio, want, want * 0.01);
}

TEST(WfqPrecision, IdleResetIsExact) {
  Queue queue({3.0, 1.0});
  // Drain to empty, then replay the same arrivals: a post-idle busy period
  // must reproduce the fresh-queue service pattern bit-for-bit because the
  // reset puts the clock and all per-class history back at zero.
  auto run_pattern = [&queue] {
    for (int i = 0; i < 8; ++i) {
      queue.push(0, i, i);
      queue.push(1, i, i);
    }
    std::uint64_t order = 0;
    for (int i = 0; i < 16; ++i) {
      order = order * 2 + queue.pop().cls;
    }
    return order;
  };
  const std::uint64_t first = run_pattern();
  ASSERT_TRUE(queue.empty());
  EXPECT_EQ(queue.virtual_clock(), 0u);
  for (int round = 0; round < 4; ++round) {
    EXPECT_EQ(run_pattern(), first) << "round " << round;
    EXPECT_EQ(queue.virtual_clock(), 0u);
  }
}

TEST(WfqPrecision, MidBusyRenormalizationPreservesServiceOrder) {
  // Degenerate weights clamp the stride to kMaxStride (2^44), so the
  // virtual clock crosses the 2^62 renorm threshold after only ~2^18
  // services — reachable in-test. Both classes share the stride, so a
  // fully backlogged run must alternate class 0/1 forever; any disturbance
  // from the renormalization (a comparison flipped by the subtraction)
  // would break the alternation.
  Queue queue({1e-12, 1e-12});
  // Alternating service advances the clock by one shared stride every
  // *two* pops, so crossing the threshold takes 2 * threshold/stride.
  const std::uint64_t pops =
      2 * (Queue::kRenormThreshold / Queue::kMaxStride) + 64;
  queue.push(0, 0, 0);
  queue.push(0, 0, 0);
  queue.push(1, 0, 0);
  queue.push(1, 0, 0);
  std::size_t expect_cls = 0;
  bool renormalized = false;
  std::uint64_t prev_clock = 0;
  for (std::uint64_t i = 0; i < pops; ++i) {
    const auto popped = queue.pop();
    ASSERT_EQ(popped.cls, expect_cls) << "at pop " << i;
    queue.push(popped.cls, static_cast<sim::TimePoint>(i), 0);
    expect_cls ^= 1;
    if (queue.virtual_clock() < prev_clock) renormalized = true;
    prev_clock = queue.virtual_clock();
  }
  EXPECT_TRUE(renormalized) << "run never crossed the renorm threshold";
  EXPECT_LT(queue.virtual_clock(), Queue::kRenormThreshold);
}

}  // namespace
}  // namespace maqs::sched

// Property tests for the request scheduler:
//   1. Conservation — across randomized class mixes and arrival patterns,
//      every request is accounted for exactly once (dispatched or shed,
//      never lost) and the queues are empty when the loop goes idle.
//   2. Work conservation — a backlogged paced server never idles: a burst
//      of N requests completes in exactly N service slots.
//   3. Starvation freedom — under adversarial 1000:1 weights a backlogged
//      low-weight class is still served within ~one tag rotation.
//   4. Determinism — a fixed-seed run with parks and sheds exports a
//      byte-identical Chrome trace on every execution.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "orb/orb.hpp"
#include "sched/scheduler.hpp"
#include "support/echo.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace maqs::sched {
namespace {

orb::RequestMessage echo_request(const std::string& object_key,
                                 const std::string& payload) {
  orb::RequestMessage req;
  req.operation = "echo";
  req.object_key = object_key;
  cdr::Encoder enc;
  enc.write_string(payload);
  req.body = enc.take();
  return req;
}

struct World {
  // Far beyond any scenario here: the scheduler answers every request
  // (serve or classified shed), so a client timeout would only masquerade
  // a silent drop as a TIMEOUT reply and hide the very bug these
  // properties exist to catch.
  static constexpr sim::Duration kNoClientTimeout = 1000 * sim::kSecond;

  World() : net(loop), server(net, "server", 9000), client(net, "client", 9001) {
    server.adapter().activate("echo",
                              std::make_shared<maqs::testing::EchoImpl>());
    server.adapter().activate("echo2",
                              std::make_shared<maqs::testing::EchoImpl>());
  }

  /// Sends one async echo `at` the given virtual time, counting the reply.
  /// With a recorder, the request carries a freshly minted trace context
  /// (what a traced stub would stamp) so server-side spans re-attach.
  void send_at(sim::TimePoint at, const std::string& object_key, int& ok,
               int& overload, std::vector<sim::TimePoint>* reply_times,
               trace::TraceRecorder* recorder = nullptr) {
    loop.schedule(at > loop.now() ? at - loop.now() : 0, [this, object_key,
                                                          &ok, &overload,
                                                          reply_times,
                                                          recorder] {
      orb::RequestMessage req = echo_request(object_key, "p");
      if (recorder != nullptr) {
        const trace::TraceContext minted = recorder->make_trace();
        if (minted.sampled()) {
          req.context.set(trace::kTraceContextKey,
                          trace::encode_context(minted));
        }
      }
      client.send_request(
          server.endpoint(), std::move(req),
          [this, &ok, &overload, reply_times](const orb::ReplyMessage& rep) {
            if (rep.status == orb::ReplyStatus::kOk) {
              ++ok;
            } else if (rep.exception.rfind(kOverloadException, 0) == 0) {
              ++overload;
            }
            if (reply_times != nullptr) reply_times->push_back(loop.now());
          },
          kNoClientTimeout);
    });
  }

  sim::EventLoop loop;
  net::Network net;
  orb::Orb server;
  orb::Orb client;
};

TEST(SchedPropertyTest, EveryRequestAccountedForAcrossRandomMixes) {
  util::Rng meta(0xC1A55);
  for (int round = 0; round < 25; ++round) {
    World world;
    SchedulerConfig config;
    config.service_rate_rps = 200.0 + static_cast<double>(meta.next_below(800));
    ClassConfig gold;
    gold.name = "gold";
    gold.weight = 1.0 + static_cast<double>(meta.next_below(8));
    gold.queue_limit = 1 + meta.next_below(16);
    gold.deadline_budget =
        static_cast<sim::Duration>(1 + meta.next_below(50)) * sim::kMillisecond;
    if (meta.next_below(2) == 0) {
      gold.rate_rps = 50.0 + static_cast<double>(meta.next_below(400));
      gold.burst = 1.0 + static_cast<double>(meta.next_below(8));
    }
    config.classes.push_back(gold);
    RequestScheduler scheduler(world.server, config);
    ASSERT_TRUE(scheduler.classifier().bind_object("echo", "gold"));

    const int gold_n = 5 + static_cast<int>(meta.next_below(60));
    const int plain_n = 5 + static_cast<int>(meta.next_below(60));
    int ok = 0;
    int overload = 0;
    for (int i = 0; i < gold_n; ++i) {
      world.send_at(meta.next_below(40) * sim::kMillisecond, "echo", ok,
                    overload, nullptr);
    }
    for (int i = 0; i < plain_n; ++i) {
      world.send_at(meta.next_below(40) * sim::kMillisecond, "echo2", ok,
                    overload, nullptr);
    }
    world.loop.run_until_idle();

    // Conservation: every request answered exactly once (served or
    // classified OVERLOAD), the counters agree, nothing left queued.
    ASSERT_EQ(ok + overload, gold_n + plain_n) << "round " << round;
    const SchedStats& stats = scheduler.stats();
    ASSERT_EQ(stats.total_dispatched(), static_cast<std::uint64_t>(ok));
    ASSERT_EQ(stats.total_shed(), static_cast<std::uint64_t>(overload));
    ASSERT_EQ(scheduler.queue_depth(), 0u);
    std::uint64_t arrived = 0;
    std::uint64_t settled = 0;
    for (const ClassStats& cls : stats.classes) {
      ASSERT_EQ(cls.arrived, cls.dispatched + cls.shed) << cls.name;
      arrived += cls.arrived;
      settled += cls.dispatched + cls.shed;
    }
    ASSERT_EQ(arrived, static_cast<std::uint64_t>(gold_n + plain_n));
    ASSERT_EQ(settled, arrived);
  }
}

TEST(SchedPropertyTest, BackloggedPacedServerIsWorkConserving) {
  World world;
  SchedulerConfig config;
  config.service_rate_rps = 100.0;  // 10ms per request
  ClassConfig best;
  best.name = kBestEffortClassName;
  best.queue_limit = 64;
  best.deadline_budget = 10 * sim::kSecond;
  config.classes.push_back(best);
  RequestScheduler scheduler(world.server, config);

  constexpr int kBurst = 20;
  int ok = 0;
  int overload = 0;
  for (int i = 0; i < kBurst; ++i) {
    world.send_at(0, "echo", ok, overload, nullptr);
  }
  world.loop.run_until_idle();

  EXPECT_EQ(ok, kBurst);
  EXPECT_EQ(overload, 0);
  // Work conservation: the burst occupies exactly N back-to-back service
  // slots — the server never idles while the queue is non-empty. (The
  // wire adds only the final reply's constant delivery latency.)
  const sim::TimePoint drained = world.loop.now();
  EXPECT_GE(drained, (kBurst - 1) * 10 * sim::kMillisecond);
  EXPECT_LT(drained, kBurst * 10 * sim::kMillisecond + 10 * sim::kMillisecond);
}

TEST(SchedPropertyTest, AdversarialWeightsCannotStarveTheLowClass) {
  World world;
  SchedulerConfig config;
  config.service_rate_rps = 1000.0;  // 1ms per request
  ClassConfig high;
  high.name = "high";
  high.weight = 1000.0;
  high.queue_limit = 8192;
  high.deadline_budget = 100 * sim::kSecond;
  config.classes.push_back(high);
  ClassConfig low;
  low.name = "low";
  low.weight = 1.0;
  low.queue_limit = 128;
  low.deadline_budget = 100 * sim::kSecond;
  config.classes.push_back(low);
  config.total_limit = 16384;
  RequestScheduler scheduler(world.server, config);
  ASSERT_TRUE(scheduler.classifier().bind_object("echo", "high"));
  ASSERT_TRUE(scheduler.classifier().bind_object("echo2", "low"));

  // The high class saturates the server (2x its capacity) for 2s of
  // virtual time; the low class queues a handful of requests at t=0.
  int high_ok = 0;
  int low_ok = 0;
  int overload = 0;
  for (int i = 0; i < 4000; ++i) {
    world.send_at(i * sim::kMillisecond / 2, "echo", high_ok, overload,
                  nullptr);
  }
  std::vector<sim::TimePoint> low_replies;
  for (int i = 0; i < 4; ++i) {
    world.send_at(0, "echo2", low_ok, overload, &low_replies);
  }
  world.loop.run_until_idle();

  EXPECT_EQ(low_ok, 4);
  ASSERT_FALSE(low_replies.empty());
  // Starvation freedom: the low class's finish tag stands one stride
  // (1/1 = 1.0 of virtual time) ahead while every high service advances
  // the clock by 1/1000 — so the first low request is served after at
  // most ~1000 high services (~1s), not shoved to the 4s tail.
  EXPECT_LT(low_replies.front(), 1100 * sim::kMillisecond);
}

TEST(SchedPropertyTest, FixedSeedRunWithShedsExportsByteIdenticalTraces) {
  auto traced_run = [] {
    World world;
    trace::TraceRecorder recorder(world.loop);
    recorder.set_enabled(true);
    world.client.set_trace_recorder(&recorder);
    world.server.set_trace_recorder(&recorder);

    SchedulerConfig config;
    config.service_rate_rps = 100.0;
    ClassConfig best;
    best.name = kBestEffortClassName;
    best.queue_limit = 3;
    best.deadline_budget = 25 * sim::kMillisecond;
    config.classes.push_back(best);
    RequestScheduler scheduler(world.server, config);

    // Bursty enough to exercise every path: inline dispatch, parking,
    // queue-full sheds, and deadline sheds of parked requests.
    int ok = 0;
    int overload = 0;
    for (int wave = 0; wave < 6; ++wave) {
      for (int i = 0; i < 5; ++i) {
        world.send_at(wave * 40 * sim::kMillisecond, "echo", ok, overload,
                      nullptr, &recorder);
      }
    }
    world.loop.run_until_idle();
    EXPECT_EQ(ok + overload, 30);
    EXPECT_GT(overload, 0);
    EXPECT_GT(scheduler.stats().shed_deadline + scheduler.stats().parked, 0u);

    std::ostringstream out;
    recorder.export_chrome_trace(out);
    return out.str();
  };

  const std::string first = traced_run();
  const std::string second = traced_run();
  EXPECT_FALSE(first.empty());
  EXPECT_NE(first.find("sched.enqueue"), std::string::npos);
  EXPECT_NE(first.find("sched.shed"), std::string::npos);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace maqs::sched

// Property tests for the weaving stack.
//
//  P1  for any payload and any stack of payload-transforming
//      characteristics (compression, encryption-psk, both), the woven
//      round trip is the identity on application data.
//  P2  random negotiate / renegotiate / terminate interleavings keep the
//      system consistent: reservations never go negative, traffic always
//      round-trips, terminated agreements release exactly what they
//      reserved.
#include <gtest/gtest.h>

#include "characteristics/compression.hpp"
#include "characteristics/encryption.hpp"
#include "core/negotiation.hpp"
#include "net/network.hpp"
#include "support/qos_echo.hpp"
#include "util/rng.hpp"

namespace maqs {
namespace {

using maqs::testing::EchoStub;
using maqs::testing::QosEchoImpl;

util::Bytes random_payload(util::Rng& rng, std::size_t max_size) {
  util::Bytes out(rng.next_below(max_size + 1));
  for (auto& b : out) {
    // Mix of compressible and random content.
    b = rng.chance(0.7) ? static_cast<std::uint8_t>('a' + (out.size() % 7))
                        : static_cast<std::uint8_t>(rng.next());
  }
  return out;
}

struct StackWorld {
  sim::EventLoop loop;
  net::Network network{loop};
  orb::Orb server{network, "server", 9000};
  orb::Orb client{network, "client", 9001};
  core::QosTransport server_transport{server};
  core::QosTransport client_transport{client};
  core::ResourceManager resources;
  core::ProviderRegistry providers;
  std::unique_ptr<core::NegotiationService> negotiation;
  std::unique_ptr<core::Negotiator> negotiator;
  std::shared_ptr<QosEchoImpl> servant;
  orb::ObjRef ref;

  StackWorld() {
    resources.declare("cpu", 1e9);
    resources.declare("bandwidth", 1e9);
    providers.add(characteristics::make_compression_provider());
    providers.add(characteristics::make_encryption_psk_provider());
    negotiation = std::make_unique<core::NegotiationService>(
        server_transport, providers, resources);
    negotiator =
        std::make_unique<core::Negotiator>(client_transport, providers);
    servant = std::make_shared<QosEchoImpl>();
    servant->assign_characteristic(characteristics::compression_descriptor());
    servant->assign_characteristic(characteristics::encryption_descriptor());
    orb::QosProfile c;
    c.characteristic = characteristics::compression_name();
    orb::QosProfile e;
    e.characteristic = characteristics::encryption_name();
    ref = server.adapter().activate("echo", servant, {c, e});
  }
};

class WovenIdentityP
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(WovenIdentityP, RoundTripIsIdentityUnderAnyStack) {
  const int stack = std::get<0>(GetParam());
  util::Rng rng(std::get<1>(GetParam()));
  StackWorld world;
  EchoStub stub(world.client, world.ref);
  if (stack & 1) {
    world.negotiator->negotiate(stub,
                                characteristics::compression_name(), {});
  }
  if (stack & 2) {
    world.negotiator->negotiate(
        stub, characteristics::encryption_name(),
        {{"psk", cdr::Any::from_string("property-secret")}});
  }
  for (int i = 0; i < 30; ++i) {
    const util::Bytes data = random_payload(rng, 8192);
    EXPECT_EQ(stub.blob(data), data) << "stack=" << stack << " i=" << i;
    const std::string text = "msg-" + std::to_string(rng.next());
    EXPECT_EQ(stub.echo(text), text);
  }
  // Exceptions survive the stack too.
  EXPECT_THROW(stub.boom(), orb::UserException);
}

INSTANTIATE_TEST_SUITE_P(
    StacksAndSeeds, WovenIdentityP,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(101u, 202u)));

class LifecycleP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LifecycleP, RandomAgreementLifecyclesStayConsistent) {
  util::Rng rng(GetParam());
  StackWorld world;
  world.resources.declare("cpu", 500.0);
  EchoStub stub(world.client, world.ref);

  std::optional<core::Agreement> active;  // Compression agreement
  for (int step = 0; step < 60; ++step) {
    const int action = static_cast<int>(rng.next_below(4));
    try {
      if (action == 0 && !active) {
        active = world.negotiator->negotiate(
            stub, characteristics::compression_name(),
            {{"level",
              cdr::Any::from_long(
                  static_cast<std::int32_t>(rng.uniform(1, 128)))}});
      } else if (action == 1 && active) {
        active = world.negotiator->renegotiate(
            stub, *active,
            {{"level",
              cdr::Any::from_long(
                  static_cast<std::int32_t>(rng.uniform(1, 128)))}});
      } else if (action == 2 && active) {
        world.negotiator->terminate(stub, *active);
        active.reset();
      }
    } catch (const core::NegotiationFailed&) {
      // Admission may reject under the 500-cpu cap: legal outcome.
    }
    // Invariants after every step:
    EXPECT_GE(world.resources.available("cpu"), 0.0);
    if (active) {
      EXPECT_EQ(world.resources.reserved("cpu"),
                static_cast<double>(active->int_param("level")));
    } else {
      EXPECT_EQ(world.resources.reserved("cpu"), 0.0);
    }
    // Traffic always round-trips, woven or not.
    const util::Bytes data = random_payload(rng, 1024);
    EXPECT_EQ(stub.blob(data), data) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LifecycleP,
                         ::testing::Values(1u, 9u, 42u, 1337u));

}  // namespace
}  // namespace maqs

// Property tests for the trace-context wire codec.
//
//  P1  round trip: decode(encode(ctx)) == ctx for arbitrary contexts with
//      a non-zero trace id.
//  P2  strictness: anything that is not exactly 17 bytes, and any entry
//      naming trace id 0, decodes to nullopt — the tolerance contract
//      that lets non-tracing peers (and garbage) pass through harmlessly.
#include <gtest/gtest.h>

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace maqs::trace {
namespace {

class TraceCodecP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceCodecP, ContextRoundTrips) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    TraceContext ctx;
    // Bias toward small ids (the common case) but cover the full range.
    ctx.trace_id = rng.chance(0.5) ? 1 + rng.next_below(1000)
                                   : 1 + rng.next_below(~std::uint64_t{0});
    ctx.span_id = rng.next_below(~std::uint64_t{0});
    ctx.flags = static_cast<std::uint8_t>(rng.next_below(256));

    const util::Bytes wire = encode_context(ctx);
    EXPECT_EQ(wire.size(), 17u);
    const std::optional<TraceContext> back =
        decode_context(util::BytesView(wire));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, ctx);
    EXPECT_EQ(back->sampled(), (ctx.flags & kSampledFlag) != 0);
  }
}

TEST_P(TraceCodecP, WrongSizeOrGarbageDecodesToNothing) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    // Any length but the canonical 17 is rejected outright, no matter the
    // contents.
    std::size_t size = rng.next_below(64);
    if (size == 17) size = 18;
    util::Bytes junk;
    for (std::size_t b = 0; b < size; ++b) {
      junk.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
    }
    EXPECT_FALSE(decode_context(util::BytesView(junk)).has_value());
  }
  // Correct length but trace id 0 (invalid by construction) is also
  // rejected: an all-zero entry must not start recording.
  util::Bytes zeros(17, 0);
  zeros[16] = kSampledFlag;
  EXPECT_FALSE(decode_context(util::BytesView(zeros)).has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceCodecP,
                         ::testing::Values(1u, 42u, 0xfeedfaceu));

}  // namespace
}  // namespace maqs::trace

// Property tests for the naming subsystem:
//   1. Round-robin fairness — over any whole number of rounds, every
//      replica receives exactly the same number of invocations, for any
//      group size.
//   2. Least-loaded convergence — under arbitrary skewed load reports,
//      selection always lands on a minimum-load replica; repeated
//      invocations concentrate there until the reports change.
//   3. Determinism — two worlds built from the same seed produce
//      byte-identical dispatch-count vectors for the same call sequence.
//   4. Directory membership — leases expire exactly when virtual time
//      passes register-time + TTL, never before; re-registration after a
//      crash restores membership; lookup ordering is a pure function of
//      (epoch, registration order).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "naming/directory.hpp"
#include "support/replica_world.hpp"
#include "util/rng.hpp"

namespace maqs::testing {
namespace {

std::vector<std::uint64_t> run_calls(ReplicaWorld& world,
                                     const orb::ObjRef& ref, int count) {
  EchoStub stub(world.client, ref);
  for (int i = 0; i < count; ++i) {
    stub.echo("p" + std::to_string(i));
    world.loop.run_until_idle();
  }
  return world.selector.dispatch_counts(ref.object_key);
}

TEST(NamingPropertyTest, RoundRobinIsExactlyFairOverWholeRounds) {
  // From 2 up: a one-member group yields a single-profile reference,
  // which bypasses selection entirely (covered in SelectorTest).
  for (std::size_t replicas = 2; replicas <= 5; ++replicas) {
    ReplicaWorld world(replicas);
    world.register_all();
    const orb::ObjRef ref = world.lookup();
    ASSERT_EQ(ref.profile_count(), replicas);

    const int rounds = 12;
    const std::vector<std::uint64_t> counts =
        run_calls(world, ref, rounds * static_cast<int>(replicas));
    ASSERT_EQ(counts.size(), replicas);
    for (std::size_t i = 0; i < replicas; ++i) {
      EXPECT_EQ(counts[i], static_cast<std::uint64_t>(rounds))
          << "replica " << i << " of " << replicas;
    }
  }
}

TEST(NamingPropertyTest, LeastLoadedAlwaysPicksAMinimumLoadReplica) {
  util::Rng rng(0xBA1A);
  naming::SelectorConfig config;
  config.policy = naming::SelectPolicy::kLeastLoaded;
  for (int round = 0; round < 20; ++round) {
    ReplicaWorld world(4, chaos_seed(), config);
    world.register_all();
    const orb::ObjRef ref = world.lookup();

    std::vector<double> loads;
    double min_load = 1e18;
    for (int i = 0; i < 4; ++i) {
      loads.push_back(static_cast<double>(rng.next_below(1000)));
      min_load = std::min(min_load, loads.back());
    }
    world.selector.update_loads(ref.object_key, loads);

    const std::vector<std::uint64_t> counts = run_calls(world, ref, 8);
    // Convergence: every invocation went to one replica, and that replica
    // reports the minimum load.
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      total += counts[i];
      if (counts[i] > 0) {
        EXPECT_DOUBLE_EQ(loads[i], min_load) << "round " << round;
      }
    }
    EXPECT_EQ(total, 8u);
  }
}

TEST(NamingPropertyTest, SelectionSequenceIsDeterministicUnderFixedSeed) {
  auto trial = [](std::uint64_t seed) {
    naming::SelectorConfig config;
    config.policy = naming::SelectPolicy::kLeastLoaded;
    ReplicaWorld world(3, seed, config);
    world.register_all();
    const orb::ObjRef ref = world.lookup();
    world.selector.update_loads(ref.object_key, {2.0, 1.0, 3.0});
    std::vector<std::uint64_t> counts = run_calls(world, ref, 15);
    counts.push_back(world.selector.stats().selections);
    return counts;
  };
  EXPECT_EQ(trial(41), trial(41));
  EXPECT_EQ(trial(1337), trial(1337));
}

TEST(NamingPropertyTest, LeaseExpiresExactlyAtTtlNeverBefore) {
  util::Rng rng(0xC0FFEE);
  for (int round = 0; round < 25; ++round) {
    sim::EventLoop loop;
    naming::DirectoryConfig config;
    config.member_ttl =
        static_cast<sim::Duration>(1 + rng.next_below(500)) *
        sim::kMillisecond;
    naming::ServiceDirectory directory(loop, config);
    directory.register_member(
        "svc", "r", orb::AltProfile{{"a", 9000}, "k"}, 0, 0);

    // One tick before the deadline the member is alive; at it, gone.
    loop.run_for(config.member_ttl - 1);
    EXPECT_EQ(directory.member_count("svc"), 1u) << "round " << round;
    loop.run_for(1);
    EXPECT_EQ(directory.member_count("svc"), 0u) << "round " << round;
  }
}

TEST(NamingPropertyTest, ReRegisterAfterCrashRestoresMembership) {
  ReplicaWorld world(2);
  naming::DirectoryConfig ttl;
  ttl.member_ttl = 100 * sim::kMillisecond;
  world.directory->set_config(ttl);
  world.start_heartbeats(40 * sim::kMillisecond);
  world.loop.run_for(10 * sim::kMillisecond);
  ASSERT_EQ(world.directory->member_count(kReplicaService), 2u);

  // Crash one replica past its TTL: the directory forgets it, lookups
  // shrink to the survivor.
  world.net.crash("server-2");
  world.loop.run_for(200 * sim::kMillisecond);
  EXPECT_EQ(world.directory->member_count(kReplicaService), 1u);
  EXPECT_FALSE(world.lookup().multi_profile());

  // Restart: the next heartbeat is answered "unknown", the agent
  // re-registers, membership and multi-profile lookups come back.
  world.net.restart("server-2");
  world.loop.run_for(100 * sim::kMillisecond);
  EXPECT_EQ(world.directory->member_count(kReplicaService), 2u);
  EXPECT_TRUE(world.lookup().multi_profile());
}

TEST(NamingPropertyTest, LookupOrderIsPureFunctionOfEpochThenRegistration) {
  util::Rng rng(0xAB1E);
  for (int round = 0; round < 25; ++round) {
    sim::EventLoop loop;
    naming::ServiceDirectory directory(loop);
    const std::size_t n = 2 + rng.next_below(6);
    std::vector<std::uint64_t> epochs;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t epoch = rng.next_below(4);
      epochs.push_back(epoch);
      directory.register_member(
          "svc", "r",
          orb::AltProfile{{"n" + std::to_string(i), 9000},
                          "k" + std::to_string(i)},
          0.0, epoch);
    }
    const std::vector<naming::MemberRecord> members = directory.members("svc");
    ASSERT_EQ(members.size(), n);
    for (std::size_t i = 1; i < n; ++i) {
      // Non-increasing epochs; ties keep registration order.
      EXPECT_GE(members[i - 1].epoch, members[i].epoch) << "round " << round;
      if (members[i - 1].epoch == members[i].epoch) {
        EXPECT_LT(members[i - 1].profile.object_key,
                  members[i].profile.object_key)
            << "round " << round;
      }
    }
  }
}

}  // namespace
}  // namespace maqs::testing

// Property tests for the retry governor's backoff schedule:
//   1. Determinism — the schedule is a pure function of (policy, seed,
//      consult sequence): two governors with the same seed produce
//      identical decisions and backoffs; different seeds diverge.
//   2. Bounds — no jittered backoff ever exceeds max_backoff scaled by
//      the jitter band, and with a deadline budget the cumulative
//      elapsed-plus-backoff never exceeds the budget.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/retry.hpp"
#include "util/rng.hpp"

namespace maqs::core {
namespace {

orb::ReplyMessage timeout_reply() {
  orb::ReplyMessage rep;
  rep.status = orb::ReplyStatus::kSystemException;
  rep.exception = "maqs/TIMEOUT";
  rep.synthesized_locally = true;
  return rep;
}

RetryPolicy random_policy(util::Rng& rng) {
  RetryPolicy policy;
  policy.max_attempts = 2 + static_cast<int>(rng.next_below(8));
  policy.initial_backoff =
      static_cast<sim::Duration>(1 + rng.next_below(10)) * sim::kMillisecond;
  policy.multiplier = 1.0 + rng.next_double() * 2.0;
  policy.max_backoff =
      policy.initial_backoff * static_cast<sim::Duration>(1 + rng.next_below(20));
  policy.jitter = rng.next_double() * 0.5;
  return policy;
}

TEST(RetryPropertyTest, SameSeedYieldsIdenticalSchedules) {
  util::Rng meta(0x5EED);
  const orb::ReplyMessage rep = timeout_reply();
  orb::RequestMessage req;
  for (int round = 0; round < 50; ++round) {
    const RetryPolicy policy = random_policy(meta);
    const std::uint64_t seed = meta.next();
    RetryGovernor a(policy, seed);
    RetryGovernor b(policy, seed);
    for (int attempt = 1; attempt <= policy.max_attempts + 2; ++attempt) {
      const auto backoff_a = a.on_attempt_failed({}, req, rep, attempt, 0);
      const auto backoff_b = b.on_attempt_failed({}, req, rep, attempt, 0);
      ASSERT_EQ(backoff_a, backoff_b)
          << "round " << round << " attempt " << attempt;
    }
    ASSERT_EQ(a.retries_granted(), b.retries_granted());
    ASSERT_EQ(a.retries_denied(), b.retries_denied());
  }
}

TEST(RetryPropertyTest, DifferentSeedsDivergeWhenJittered) {
  RetryPolicy policy;
  policy.max_attempts = 64;
  policy.jitter = 0.5;
  RetryGovernor a(policy, 1);
  RetryGovernor b(policy, 2);
  const orb::ReplyMessage rep = timeout_reply();
  orb::RequestMessage req;
  int diverged = 0;
  for (int attempt = 1; attempt < policy.max_attempts; ++attempt) {
    if (a.on_attempt_failed({}, req, rep, attempt, 0) !=
        b.on_attempt_failed({}, req, rep, attempt, 0)) {
      ++diverged;
    }
  }
  EXPECT_GT(diverged, 0) << "jittered schedules should depend on the seed";
}

TEST(RetryPropertyTest, JitteredBackoffNeverExceedsScaledClamp) {
  util::Rng meta(0xB0FF);
  const orb::ReplyMessage rep = timeout_reply();
  orb::RequestMessage req;
  for (int round = 0; round < 50; ++round) {
    const RetryPolicy policy = random_policy(meta);
    RetryGovernor governor(policy, meta.next());
    for (int attempt = 1; attempt < policy.max_attempts; ++attempt) {
      const auto backoff =
          governor.on_attempt_failed({}, req, rep, attempt, 0);
      ASSERT_TRUE(backoff.has_value());
      // The governor clamps after jitter: max_backoff is a hard ceiling.
      EXPECT_LE(*backoff, policy.max_backoff);
      // And jitter can shrink a backoff by at most the jitter fraction.
      const auto floor = static_cast<sim::Duration>(
          static_cast<double>(policy.initial_backoff) *
          (1.0 - policy.jitter));
      EXPECT_GE(*backoff, floor);
    }
  }
}

TEST(RetryPropertyTest, CumulativeScheduleNeverExceedsDeadlineBudget) {
  util::Rng meta(0xDEAD);
  const orb::ReplyMessage rep = timeout_reply();
  orb::RequestMessage req;
  for (int round = 0; round < 50; ++round) {
    RetryPolicy policy = random_policy(meta);
    policy.max_attempts = 1000;  // only the budget terminates the loop
    policy.deadline_budget =
        static_cast<sim::Duration>(10 + meta.next_below(100)) *
        sim::kMillisecond;
    RetryGovernor governor(policy, meta.next());

    // Simulate the retry loop's accounting: elapsed grows by each granted
    // backoff (attempts themselves take zero time in this model, the
    // worst case for the budget check).
    sim::Duration elapsed = 0;
    int attempt = 1;
    while (true) {
      const auto backoff =
          governor.on_attempt_failed({}, req, rep, attempt, elapsed);
      if (!backoff.has_value()) break;
      elapsed += *backoff;
      ASSERT_LE(elapsed, policy.deadline_budget)
          << "granted backoff pushed the schedule past the budget";
      ++attempt;
      ASSERT_LT(attempt, 100000) << "budget failed to terminate the loop";
    }
  }
}

}  // namespace
}  // namespace maqs::core

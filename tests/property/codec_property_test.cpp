// Property tests for codecs and crypto.
//
//  P1  compress/decompress is the identity for all codecs across a wide
//      size x redundancy grid.
//  P2  lz77 decompression is total on random token soup (throws or
//      returns, never crashes; output bounded).
//  P3  XTEA-CTR is an involution for every (key, nonce, size); sealed
//      frames open to the identity and reject any single-bit tamper.
#include <gtest/gtest.h>

#include "compress/codec.hpp"
#include "compress/lz77.hpp"
#include "crypto/mac.hpp"
#include "crypto/xtea.hpp"
#include "util/rng.hpp"

namespace maqs {
namespace {

util::Bytes mixed_payload(util::Rng& rng, std::size_t size,
                          double redundancy) {
  util::Bytes out(size);
  for (std::size_t i = 0; i < size; ++i) {
    out[i] = rng.chance(redundancy)
                 ? static_cast<std::uint8_t>('x')
                 : static_cast<std::uint8_t>(rng.next());
  }
  return out;
}

class CodecGridP
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(CodecGridP, RoundTripAcrossSizeRedundancyGrid) {
  const auto codec = compress::make_codec(std::get<0>(GetParam()));
  util::Rng rng(static_cast<std::uint64_t>(std::get<1>(GetParam())));
  for (std::size_t size : {0u, 1u, 2u, 63u, 64u, 65u, 1000u, 70000u}) {
    for (double redundancy : {0.0, 0.5, 0.95}) {
      const util::Bytes input = mixed_payload(rng, size, redundancy);
      const util::Bytes packed = codec->compress(input);
      EXPECT_EQ(codec->decompress(packed), input)
          << codec->name() << " size=" << size << " r=" << redundancy;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CodecGridP,
    ::testing::Combine(::testing::Values("identity", "rle", "lz77"),
                       ::testing::Values(1, 2, 3)));

class Lz77TotalityP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lz77TotalityP, RandomTokenSoupNeverCrashes) {
  compress::Lz77Codec codec;
  util::Rng rng(GetParam());
  for (int round = 0; round < 500; ++round) {
    util::Bytes soup(rng.next_below(256));
    for (auto& b : soup) b = static_cast<std::uint8_t>(rng.next());
    // Bias the first byte toward valid tags sometimes to reach deeper
    // paths.
    if (!soup.empty() && rng.chance(0.5)) soup[0] &= 0x01;
    try {
      const util::Bytes out = codec.decompress(soup);
      // Expansion is bounded: each token yields at most 64 KiB.
      EXPECT_LE(out.size(), soup.size() * 65536u + 65536u);
    } catch (const compress::CodecError&) {
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lz77TotalityP,
                         ::testing::Values(5u, 55u, 555u));

class XteaP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XteaP, CtrInvolutionAcrossKeysNoncesSizes) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    util::Bytes secret(8 + rng.next_below(16));
    for (auto& b : secret) b = static_cast<std::uint8_t>(rng.next());
    const crypto::Key128 key = crypto::derive_key(secret);
    const std::uint64_t nonce = rng.next();
    const crypto::XteaCtr cipher(key, nonce);
    const util::Bytes plain = mixed_payload(rng, rng.next_below(300), 0.3);
    const util::Bytes sealed = cipher.apply(plain);
    EXPECT_EQ(cipher.apply(sealed), plain);
    if (plain.size() >= 16) {
      EXPECT_NE(sealed, plain);
      // A different nonce must give a different keystream.
      const crypto::XteaCtr other(key, nonce ^ 1);
      EXPECT_NE(other.apply(plain), sealed);
    }
  }
}

TEST_P(XteaP, MacRejectsEverySingleBitFlip) {
  util::Rng rng(GetParam() ^ 0xBEEF);
  const std::uint64_t key = rng.next();
  util::Bytes data = mixed_payload(rng, 64, 0.5);
  const std::uint64_t tag = crypto::mac64(key, data);
  for (std::size_t byte = 0; byte < data.size(); byte += 7) {
    for (int bit = 0; bit < 8; bit += 3) {
      data[byte] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_FALSE(crypto::mac_verify(key, data, tag))
          << "byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<std::uint8_t>(1 << bit);
    }
  }
  EXPECT_TRUE(crypto::mac_verify(key, data, tag));
}

INSTANTIATE_TEST_SUITE_P(Seeds, XteaP, ::testing::Values(1u, 12u, 123u));

}  // namespace
}  // namespace maqs

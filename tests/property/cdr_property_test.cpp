// Property tests for the marshaling layer.
//
//  P1  encode/decode is the identity on randomly generated Any trees.
//  P2  the decoder is total: random byte soup either decodes or throws
//      CdrError/MarshalError — never crashes or loops.
//  P3  frame decoding is the inverse of frame encoding for random
//      request/reply messages.
#include <gtest/gtest.h>

#include "cdr/any.hpp"
#include "cdr/decoder.hpp"
#include "cdr/encoder.hpp"
#include "orb/ior.hpp"
#include "orb/message.hpp"
#include "util/rng.hpp"

namespace maqs {
namespace {

using cdr::Any;
using cdr::TypeCode;

/// Random Any tree of bounded depth.
Any random_any(util::Rng& rng, int depth) {
  const int kind = static_cast<int>(rng.next_below(depth > 0 ? 11 : 9));
  switch (kind) {
    case 0: return Any::make_void();
    case 1: return Any::from_bool(rng.chance(0.5));
    case 2: return Any::from_octet(static_cast<std::uint8_t>(rng.next()));
    case 3: return Any::from_short(static_cast<std::int16_t>(rng.next()));
    case 4: return Any::from_long(static_cast<std::int32_t>(rng.next()));
    case 5: return Any::from_longlong(static_cast<std::int64_t>(rng.next()));
    case 6: return Any::from_float(static_cast<float>(rng.next_double()));
    case 7: return Any::from_double(rng.next_double() * 1e12 - 5e11);
    case 8: {
      std::string s;
      const std::size_t n = rng.next_below(32);
      for (std::size_t i = 0; i < n; ++i) {
        s.push_back(static_cast<char>(rng.uniform(32, 126)));
      }
      return Any::from_string(std::move(s));
    }
    case 9: {  // homogeneous-typecode sequence (mirror what DII sends)
      const std::size_t n = rng.next_below(4);
      std::vector<Any> items;
      items.reserve(n);
      // All elements share the first element's shape by regenerating
      // with the same sub-seed.
      const std::uint64_t sub_seed = rng.next();
      cdr::TypeCodePtr element_tc;
      for (std::size_t i = 0; i < n; ++i) {
        util::Rng sub(sub_seed);
        items.push_back(random_any(sub, depth - 1));
      }
      element_tc = items.empty() ? TypeCode::long_tc() : items[0].type();
      return Any::from_sequence(element_tc, std::move(items));
    }
    default: {  // struct with 1..3 fields
      const std::size_t n = 1 + rng.next_below(3);
      std::vector<Any> fields;
      std::vector<std::pair<std::string, cdr::TypeCodePtr>> members;
      for (std::size_t i = 0; i < n; ++i) {
        fields.push_back(random_any(rng, depth - 1));
        members.emplace_back("f" + std::to_string(i), fields.back().type());
      }
      return Any::from_struct(TypeCode::struct_tc("S", std::move(members)),
                              std::move(fields));
    }
  }
}

class AnyRoundTripP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnyRoundTripP, EncodeDecodeIsIdentity) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Any original = random_any(rng, 3);
    cdr::Encoder enc;
    original.encode(enc);
    cdr::Decoder dec(enc.buffer());
    const Any decoded = Any::decode(dec);
    EXPECT_TRUE(dec.at_end());
    EXPECT_EQ(decoded, original) << original.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnyRoundTripP,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

class DecoderTotalityP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecoderTotalityP, RandomBytesNeverCrashDecoders) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 300; ++round) {
    util::Bytes garbage(rng.next_below(200));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    // Each decoder must either produce a value or throw a typed error.
    try {
      cdr::Decoder dec{util::BytesView(garbage)};
      (void)Any::decode(dec);
    } catch (const Error&) {
    }
    try {
      (void)orb::RequestMessage::decode(garbage);
    } catch (const Error&) {
    }
    try {
      (void)orb::ReplyMessage::decode(garbage);
    } catch (const Error&) {
    }
    try {
      (void)orb::ObjRef::decode(garbage);
    } catch (const Error&) {
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderTotalityP,
                         ::testing::Values(11, 22, 33, 44));

class MessageRoundTripP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MessageRoundTripP, RandomMessagesRoundTrip) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    orb::RequestMessage req;
    req.request_id = rng.next();
    req.kind = rng.chance(0.3) ? orb::RequestKind::kCommand
                               : orb::RequestKind::kServiceRequest;
    req.qos_aware = rng.chance(0.5);
    req.object_key = "k" + std::to_string(rng.next_below(100));
    req.target_module = rng.chance(0.5) ? "mod" : "";
    req.operation = "op" + std::to_string(rng.next_below(100));
    const std::size_t ctx_entries = rng.next_below(4);
    for (std::size_t c = 0; c < ctx_entries; ++c) {
      util::Bytes value(rng.next_below(16));
      for (auto& b : value) b = static_cast<std::uint8_t>(rng.next());
      req.context["ctx" + std::to_string(c)] = value;
    }
    req.body.resize(rng.next_below(256));
    for (auto& b : req.body) b = static_cast<std::uint8_t>(rng.next());

    const orb::RequestMessage back = orb::RequestMessage::decode(req.encode());
    EXPECT_EQ(back.request_id, req.request_id);
    EXPECT_EQ(back.kind, req.kind);
    EXPECT_EQ(back.qos_aware, req.qos_aware);
    EXPECT_EQ(back.object_key, req.object_key);
    EXPECT_EQ(back.target_module, req.target_module);
    EXPECT_EQ(back.operation, req.operation);
    EXPECT_EQ(back.context, req.context);
    EXPECT_EQ(back.body, req.body);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageRoundTripP,
                         ::testing::Values(7, 14, 21));

}  // namespace
}  // namespace maqs

// Resilience mechanics at the ORB layer: circuit-breaker state machine,
// fast-fail behavior, fault provenance (synthesized_locally), the retry
// advisor hook, and the timeout/reply same-tick regression.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "net/network.hpp"
#include "orb/breaker.hpp"
#include "orb/orb.hpp"
#include "orb/stub.hpp"
#include "support/echo.hpp"

namespace maqs::orb {
namespace {

using maqs::testing::EchoImpl;
using maqs::testing::EchoStub;

// ---- CircuitBreaker unit ----

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailures) {
  CircuitBreaker breaker({.failure_threshold = 3,
                          .open_period = 100 * sim::kMillisecond});
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow(0));
  breaker.record_failure(0);
  breaker.record_failure(1);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  // A success resets the streak: consecutive means consecutive.
  breaker.record_success();
  EXPECT_EQ(breaker.consecutive_failures(), 0);
  breaker.record_failure(2);
  breaker.record_failure(3);
  breaker.record_failure(4);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.open_until(), 4 + 100 * sim::kMillisecond);
  EXPECT_FALSE(breaker.allow(5));
}

TEST(CircuitBreakerTest, HalfOpenAdmitsSingleProbe) {
  CircuitBreaker breaker({.failure_threshold = 1,
                          .open_period = 10 * sim::kMillisecond});
  breaker.record_failure(0);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.allow(5 * sim::kMillisecond));
  // Open period elapsed: one probe goes through, concurrent requests do
  // not.
  EXPECT_TRUE(breaker.allow(10 * sim::kMillisecond));
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.allow(11 * sim::kMillisecond));
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow(12 * sim::kMillisecond));
}

TEST(CircuitBreakerTest, FailedProbeReopensForFreshPeriod) {
  CircuitBreaker breaker({.failure_threshold = 1,
                          .open_period = 10 * sim::kMillisecond});
  breaker.record_failure(0);
  ASSERT_TRUE(breaker.allow(10 * sim::kMillisecond));  // probe admitted
  breaker.record_failure(12 * sim::kMillisecond);      // probe failed
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.open_until(), 22 * sim::kMillisecond);
  EXPECT_FALSE(breaker.allow(15 * sim::kMillisecond));
  EXPECT_TRUE(breaker.allow(22 * sim::kMillisecond));
}

// ---- fixture for ORB-level scenarios ----

class ResilienceTest : public ::testing::Test {
 protected:
  ResilienceTest() : net_(loop_), server_(net_, "server", 9000),
                     client_(net_, "client", 9001) {
    servant_ = std::make_shared<EchoImpl>();
    ref_ = server_.adapter().activate("echo", servant_);
  }

  sim::EventLoop loop_;
  net::Network net_;
  Orb server_;
  Orb client_;
  std::shared_ptr<EchoImpl> servant_;
  ObjRef ref_;
};

// ---- fault provenance (the misclassification bugfix) ----

TEST_F(ResilienceTest, LocalTimeoutIsSynthesizedAndThrowsTransportError) {
  net_.crash("server");
  client_.set_default_timeout(5 * sim::kMillisecond);
  RequestMessage req;
  req.object_key = "echo";
  req.operation = "value";
  EXPECT_THROW(client_.invoke_plain(server_.endpoint(), std::move(req)),
               TransportError);
  EXPECT_EQ(client_.stats().timeouts, 1u);
}

/// A servant whose failure *id* collides with the local timeout marker.
class ImpostorServant final : public Servant {
 public:
  const std::string& repo_id() const override {
    static const std::string kId = "IDL:test/Impostor:1.0";
    return kId;
  }
  void dispatch(const std::string&, cdr::Decoder&, cdr::Encoder&,
                ServerContext&) override {
    throw Error("maqs/TIMEOUT");
  }
};

TEST_F(ResilienceTest, ServerRaisedTimeoutIdIsNotATransportError) {
  server_.adapter().activate("impostor", std::make_shared<ImpostorServant>());
  RequestMessage req;
  req.object_key = "impostor";
  req.operation = "anything";
  ReplyMessage rep = client_.invoke_plain(server_.endpoint(), std::move(req));
  ASSERT_EQ(rep.status, ReplyStatus::kSystemException);
  ASSERT_EQ(rep.exception, "maqs/TIMEOUT");
  // It crossed the wire, so it is not locally synthesized...
  EXPECT_FALSE(rep.synthesized_locally);
  // ...and classification keeps it a remote SystemException, never the
  // transport-level timeout it impersonates.
  bool threw_transport = false;
  bool threw_system = false;
  try {
    raise_for_status(rep);
  } catch (const TransportError&) {
    threw_transport = true;
  } catch (const SystemException&) {
    threw_system = true;
  }
  EXPECT_FALSE(threw_transport);
  EXPECT_TRUE(threw_system);
}

// ---- circuit breaking in the request path ----

TEST_F(ResilienceTest, OpenBreakerFailsFastWithoutConsumingTime) {
  client_.set_default_timeout(5 * sim::kMillisecond);
  client_.set_breaker_config(BreakerConfig{
      .failure_threshold = 1, .open_period = 100 * sim::kMillisecond});
  net_.crash("server");

  EchoStub stub(client_, ref_);
  EXPECT_THROW(stub.echo("x"), TransportError);  // timeout -> breaker opens
  EXPECT_EQ(client_.breaker_state(server_.endpoint()), BreakerState::kOpen);

  const sim::TimePoint before = loop_.now();
  EXPECT_THROW(stub.echo("y"), TransportError);  // fast-fail, no timeout
  EXPECT_EQ(loop_.now(), before);
  const OrbStats& stats = client_.stats();
  EXPECT_EQ(stats.timeouts, 1u);
  EXPECT_EQ(stats.breaker_fast_fails, 1u);
  EXPECT_EQ(stats.breaker_opens, 1u);
  // The rejected request was never marshaled or sent.
  EXPECT_EQ(stats.requests_sent, 1u);
}

TEST_F(ResilienceTest, AnyDecodedReplyClosesTheBreaker) {
  client_.set_default_timeout(5 * sim::kMillisecond);
  client_.set_breaker_config(BreakerConfig{
      .failure_threshold = 1, .open_period = 10 * sim::kMillisecond});
  net_.crash("server");
  EchoStub stub(client_, ref_);
  EXPECT_THROW(stub.echo("x"), TransportError);
  net_.restart("server");
  loop_.run_for(10 * sim::kMillisecond);
  // Probe succeeds: half-open -> closed.
  EXPECT_EQ(stub.echo("probe"), "probe");
  EXPECT_EQ(client_.breaker_state(server_.endpoint()), BreakerState::kClosed);
  EXPECT_EQ(client_.stats().breaker_half_opens, 1u);
  EXPECT_EQ(client_.stats().breaker_closes, 1u);
}

TEST_F(ResilienceTest, BreakersAreKeyedPerEndpointAndProfile) {
  client_.set_default_timeout(5 * sim::kMillisecond);
  client_.set_breaker_config(BreakerConfig{
      .failure_threshold = 1, .open_period = 100 * sim::kMillisecond});
  auto sibling = std::make_shared<EchoImpl>();
  const ObjRef sibling_ref =
      server_.adapter().activate("echo-sibling", sibling);

  net_.crash("server");
  EchoStub dead(client_, ref_);
  EXPECT_THROW(dead.echo("x"), TransportError);  // opens (server, "echo")
  EXPECT_EQ(client_.breaker_state(server_.endpoint(), "echo"),
            BreakerState::kOpen);
  net_.restart("server");

  // The sibling profile behind the same endpoint must not be fast-failed
  // by the dead profile's open circuit.
  EchoStub live(client_, sibling_ref);
  EXPECT_EQ(live.echo("y"), "y");
  EXPECT_EQ(client_.stats().breaker_fast_fails, 0u);
  // The matched reply credits only the sibling's profile: the dead
  // profile's breaker stays open (and still fails fast), and the
  // endpoint-granularity aggregate reports the worst state.
  EXPECT_EQ(client_.breaker_state(server_.endpoint(), "echo"),
            BreakerState::kOpen);
  EXPECT_EQ(client_.breaker_state(server_.endpoint()), BreakerState::kOpen);
  EXPECT_THROW(dead.echo("z"), TransportError);
  EXPECT_EQ(client_.stats().breaker_fast_fails, 1u);
}

TEST_F(ResilienceTest, OrphanedReplyCreditsEveryProfileAtTheEndpoint) {
  client_.set_default_timeout(5 * sim::kMillisecond);
  client_.set_breaker_config(BreakerConfig{
      .failure_threshold = 1, .open_period = 10 * sim::kMillisecond});
  // Slow link: the reply arrives after the client-side timeout fired, so
  // it comes back orphaned.
  net_.set_link("client", "server",
                {.latency = 3 * sim::kMillisecond});
  EchoStub stub(client_, ref_);
  client_.set_default_timeout(4 * sim::kMillisecond);
  EXPECT_THROW(stub.echo("x"), TransportError);  // timeout opens the breaker
  ASSERT_EQ(client_.breaker_state(server_.endpoint(), "echo"),
            BreakerState::kOpen);
  // Drain: the straggler reply lands, unattributable, and closes the
  // profile breaker anyway — the endpoint is provably reachable.
  loop_.run_until_idle();
  EXPECT_EQ(client_.breaker_state(server_.endpoint(), "echo"),
            BreakerState::kClosed);
}

TEST_F(ResilienceTest, DisablingBreakerDropsState) {
  client_.set_default_timeout(5 * sim::kMillisecond);
  client_.set_breaker_config(BreakerConfig{.failure_threshold = 1});
  net_.crash("server");
  EchoStub stub(client_, ref_);
  EXPECT_THROW(stub.echo("x"), TransportError);
  ASSERT_EQ(client_.breaker_state(server_.endpoint()), BreakerState::kOpen);
  client_.set_breaker_config(std::nullopt);
  EXPECT_EQ(client_.breaker_state(server_.endpoint()), std::nullopt);
}

// ---- retry advisor hook ----

/// Scripted advisor: constant backoff, bounded attempts, records what it
/// was consulted with.
class ScriptedAdvisor final : public RetryAdvisor {
 public:
  explicit ScriptedAdvisor(int max_attempts) : max_attempts_(max_attempts) {}

  std::optional<sim::Duration> on_attempt_failed(
      const net::Address&, const RequestMessage&, const ReplyMessage& rep,
      int attempt, sim::Duration) override {
    seen.push_back(rep);
    if (attempt >= max_attempts_) return std::nullopt;
    return sim::kMillisecond;
  }

  std::vector<ReplyMessage> seen;

 private:
  int max_attempts_;
};

TEST_F(ResilienceTest, AdvisorDrivesRetriesWithFreshRequestIds) {
  client_.set_default_timeout(5 * sim::kMillisecond);
  ScriptedAdvisor advisor(3);
  client_.set_retry_advisor(&advisor);
  net_.crash("server");

  EchoStub stub(client_, ref_);
  const sim::TimePoint start = loop_.now();
  EXPECT_THROW(stub.echo("x"), TransportError);
  ASSERT_EQ(advisor.seen.size(), 3u);  // consulted after every attempt
  EXPECT_EQ(client_.stats().requests_retried, 2u);
  EXPECT_EQ(client_.stats().timeouts, 3u);
  for (const ReplyMessage& rep : advisor.seen) {
    EXPECT_TRUE(rep.synthesized_locally);
    EXPECT_EQ(rep.exception, "maqs/TIMEOUT");
  }
  // Each attempt carries a fresh request id so straggler replies cannot
  // satisfy a retried attempt.
  EXPECT_NE(advisor.seen[0].request_id, advisor.seen[1].request_id);
  EXPECT_NE(advisor.seen[1].request_id, advisor.seen[2].request_id);
  // 3 timeouts + 2 backoffs of virtual time elapsed.
  EXPECT_EQ(loop_.now() - start, 17 * sim::kMillisecond);
}

TEST_F(ResilienceTest, RetrySucceedsAfterServerRestarts) {
  client_.set_default_timeout(5 * sim::kMillisecond);
  ScriptedAdvisor advisor(4);
  client_.set_retry_advisor(&advisor);
  net_.crash("server");
  // Server comes back while the first retry backs off.
  loop_.schedule(6 * sim::kMillisecond, [this] { net_.restart("server"); });

  EchoStub stub(client_, ref_);
  EXPECT_EQ(stub.echo("eventually"), "eventually");
  EXPECT_EQ(client_.stats().requests_retried, 1u);
  EXPECT_EQ(client_.stats().timeouts, 1u);
}

// ---- timeout/reply same-tick regression ----

TEST_F(ResilienceTest, ReplyOnTimeoutTickInvokesHandlerExactlyOnce) {
  // Infinite bandwidth: delivery lands exactly at link latency, so with a
  // 2ms round trip a 2ms timeout and the reply collide on the same tick.
  net::LinkParams exact;
  exact.latency = sim::kMillisecond;
  exact.bandwidth_bps = 0;
  net_.set_default_link(exact);

  int calls = 0;
  ReplyMessage last;
  RequestMessage req;
  req.object_key = "echo";
  req.operation = "value";
  client_.send_request(
      server_.endpoint(), std::move(req),
      [&](ReplyMessage rep) {
        ++calls;
        last = std::move(rep);
      },
      2 * sim::kMillisecond);
  loop_.run_until_idle();

  // The timeout event was scheduled first (lower sequence number), so it
  // wins the tie; the genuine reply then finds no pending entry and is
  // orphaned instead of double-invoking the handler.
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(last.exception, "maqs/TIMEOUT");
  EXPECT_TRUE(last.synthesized_locally);
  EXPECT_EQ(client_.stats().timeouts, 1u);
  EXPECT_EQ(client_.stats().replies_orphaned, 1u);
}

TEST_F(ResilienceTest, ReplyBeforeTimeoutCancelsTheTimeoutEvent) {
  net::LinkParams exact;
  exact.latency = sim::kMillisecond;
  exact.bandwidth_bps = 0;
  net_.set_default_link(exact);

  int calls = 0;
  ReplyMessage last;
  RequestMessage req;
  req.object_key = "echo";
  req.operation = "value";
  client_.send_request(
      server_.endpoint(), std::move(req),
      [&](ReplyMessage rep) {
        ++calls;
        last = std::move(rep);
      },
      3 * sim::kMillisecond);
  loop_.run_until_idle();

  EXPECT_EQ(calls, 1);
  EXPECT_EQ(last.status, ReplyStatus::kOk);
  EXPECT_FALSE(last.synthesized_locally);
  EXPECT_EQ(client_.stats().timeouts, 0u);
  EXPECT_EQ(client_.stats().replies_orphaned, 0u);
}

}  // namespace
}  // namespace maqs::orb

// Asynchronous and multicast request plumbing (used by the replication
// module for active replication and voting).
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "orb/orb.hpp"
#include "support/echo.hpp"

namespace maqs::orb {
namespace {

RequestMessage echo_request(const std::string& payload) {
  RequestMessage req;
  req.operation = "echo";
  req.object_key = "echo";
  cdr::Encoder enc;
  enc.write_string(payload);
  req.body = enc.take();
  return req;
}

std::string reply_payload(const ReplyMessage& rep) {
  cdr::Decoder dec(rep.body);
  return dec.read_string();
}

class AsyncTest : public ::testing::Test {
 protected:
  AsyncTest() : net_(loop_), client_(net_, "client", 1) {
    for (int i = 0; i < 3; ++i) {
      auto orb = std::make_unique<Orb>(net_, "s" + std::to_string(i), 9000);
      orb->adapter().activate("echo", std::make_shared<maqs::testing::EchoImpl>());
      servers_.push_back(std::move(orb));
    }
  }

  sim::EventLoop loop_;
  net::Network net_;
  Orb client_;
  std::vector<std::unique_ptr<Orb>> servers_;
};

TEST_F(AsyncTest, SendRequestDeliversReplyAsynchronously) {
  std::vector<std::string> replies;
  client_.send_request(servers_[0]->endpoint(), echo_request("a"),
                       [&](const ReplyMessage& rep) {
                         replies.push_back(reply_payload(rep));
                       });
  client_.send_request(servers_[1]->endpoint(), echo_request("b"),
                       [&](const ReplyMessage& rep) {
                         replies.push_back(reply_payload(rep));
                       });
  EXPECT_TRUE(replies.empty());  // nothing before the loop runs
  loop_.run_until_idle();
  EXPECT_EQ(replies.size(), 2u);
}

TEST_F(AsyncTest, TimeoutSynthesizesReply) {
  net_.crash("s0");
  ReplyMessage got;
  bool called = false;
  client_.send_request(servers_[0]->endpoint(), echo_request("x"),
                       [&](const ReplyMessage& rep) {
                         got = rep;
                         called = true;
                       },
                       50 * sim::kMillisecond);
  loop_.run_until_idle();
  ASSERT_TRUE(called);
  EXPECT_EQ(got.status, ReplyStatus::kSystemException);
  EXPECT_EQ(got.exception, "maqs/TIMEOUT");
  EXPECT_EQ(client_.stats().timeouts, 1u);
}

TEST_F(AsyncTest, CancelSuppressesReply) {
  bool called = false;
  const std::uint64_t id = client_.send_request(
      servers_[0]->endpoint(), echo_request("x"),
      [&](const ReplyMessage&) { called = true; });
  client_.cancel_request(id);
  loop_.run_until_idle();
  EXPECT_FALSE(called);
  EXPECT_EQ(client_.stats().replies_orphaned, 1u);
}

TEST_F(AsyncTest, MulticastCollectsAllReplies) {
  net_.create_group("echo-grp");
  for (auto& server : servers_) {
    net_.join_group("echo-grp", server->endpoint());
  }
  int replies = 0;
  std::uint64_t id = client_.send_multicast_request(
      "echo-grp", echo_request("fanout"),
      [&](const ReplyMessage& rep) {
        if (rep.exception == "maqs/TIMEOUT") return;
        EXPECT_EQ(reply_payload(rep), "fanout");
        ++replies;
      },
      sim::kSecond);
  loop_.run_until_idle();
  EXPECT_EQ(replies, 3);
  client_.cancel_request(id);
}

TEST_F(AsyncTest, MulticastFirstReplyWinsPattern) {
  net_.create_group("echo-grp");
  for (auto& server : servers_) {
    net_.join_group("echo-grp", server->endpoint());
  }
  // Make s0 far, s1 near, s2 middle: first reply should be s1's.
  net_.set_link("client", "s0", net::LinkParams{.latency = 30 * sim::kMillisecond});
  net_.set_link("client", "s1", net::LinkParams{.latency = 1 * sim::kMillisecond});
  net_.set_link("client", "s2", net::LinkParams{.latency = 10 * sim::kMillisecond});

  int replies = 0;
  std::uint64_t id = 0;
  id = client_.send_multicast_request(
      "echo-grp", echo_request("race"),
      [&](const ReplyMessage& rep) {
        if (rep.exception == "maqs/TIMEOUT") return;
        ++replies;
        // First (and only, because we cancel) reply arrives at roughly
        // s1's RTT (plus sub-microsecond serialization delay), well before
        // s2's 20 ms RTT.
        EXPECT_GE(loop_.now(), 2 * sim::kMillisecond);
        EXPECT_LT(loop_.now(), 3 * sim::kMillisecond);
        client_.cancel_request(id);
      },
      sim::kSecond);
  loop_.run_until_idle();
  EXPECT_EQ(replies, 1);
  // The two later replies were orphaned.
  EXPECT_EQ(client_.stats().replies_orphaned, 2u);
}

TEST_F(AsyncTest, MulticastTimeoutWhenAllCrashed) {
  net_.create_group("echo-grp");
  for (auto& server : servers_) {
    net_.join_group("echo-grp", server->endpoint());
  }
  net_.crash("s0");
  net_.crash("s1");
  net_.crash("s2");
  int timeouts = 0;
  client_.send_multicast_request(
      "echo-grp", echo_request("void"),
      [&](const ReplyMessage& rep) {
        if (rep.exception == "maqs/TIMEOUT") ++timeouts;
      },
      100 * sim::kMillisecond);
  loop_.run_until_idle();
  EXPECT_EQ(timeouts, 1);
}

TEST_F(AsyncTest, DistinctRequestIdsAssigned) {
  const auto id1 = client_.send_request(servers_[0]->endpoint(),
                                        echo_request("a"),
                                        [](const ReplyMessage&) {});
  const auto id2 = client_.send_request(servers_[0]->endpoint(),
                                        echo_request("b"),
                                        [](const ReplyMessage&) {});
  EXPECT_NE(id1, id2);
  loop_.run_until_idle();
}

}  // namespace
}  // namespace maqs::orb

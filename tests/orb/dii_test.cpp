// Dynamic Invocation Interface: wire-compatibility with static skeletons,
// command arg marshaling.
#include "orb/dii.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "support/echo.hpp"

namespace maqs::orb {
namespace {

class DiiTest : public ::testing::Test {
 protected:
  DiiTest()
      : net_(loop_),
        server_(net_, "server", 9000),
        client_(net_, "client", 9001) {
    impl_ = std::make_shared<maqs::testing::EchoImpl>();
    ref_ = server_.adapter().activate("echo-1", impl_);
  }

  sim::EventLoop loop_;
  net::Network net_;
  Orb server_;
  Orb client_;
  std::shared_ptr<maqs::testing::EchoImpl> impl_;
  ObjRef ref_;
};

TEST_F(DiiTest, DynamicCallHitsStaticSkeleton) {
  DiiRequest req(client_, ref_, "add");
  req.add_arg(cdr::Any::from_long(40)).add_arg(cdr::Any::from_long(2));
  req.set_return_type(cdr::TypeCode::long_tc());
  EXPECT_EQ(req.invoke().as_long(), 42);
}

TEST_F(DiiTest, StringArgsAndResult) {
  DiiRequest req(client_, ref_, "echo");
  req.add_arg(cdr::Any::from_string("dynamic"));
  req.set_return_type(cdr::TypeCode::string_tc());
  EXPECT_EQ(req.invoke().as_string(), "dynamic");
}

TEST_F(DiiTest, VoidOperation) {
  DiiRequest set(client_, ref_, "set_value");
  set.add_arg(cdr::Any::from_long(123));
  EXPECT_EQ(set.invoke().kind(), cdr::TCKind::kVoid);

  DiiRequest get(client_, ref_, "value");
  get.set_return_type(cdr::TypeCode::long_tc());
  EXPECT_EQ(get.invoke().as_long(), 123);
}

TEST_F(DiiTest, UserExceptionPropagates) {
  DiiRequest req(client_, ref_, "boom");
  EXPECT_THROW(req.invoke(), UserException);
}

TEST_F(DiiTest, WrongArgumentTypesRejectedByServer) {
  DiiRequest req(client_, ref_, "add");
  req.add_arg(cdr::Any::from_string("not a number"));
  req.set_return_type(cdr::TypeCode::long_tc());
  // The skeleton either underflows or leaves trailing bytes -> MARSHAL.
  EXPECT_THROW(req.invoke(), SystemException);
}

TEST_F(DiiTest, CommandArgsRoundTrip) {
  const std::vector<cdr::Any> args{
      cdr::Any::from_string("grp-1"), cdr::Any::from_long(3),
      cdr::Any::from_sequence(cdr::TypeCode::octet_tc(),
                              {cdr::Any::from_octet(1),
                               cdr::Any::from_octet(2)})};
  const auto back = decode_command_args(encode_command_args(args));
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0], args[0]);
  EXPECT_EQ(back[1], args[1]);
  EXPECT_EQ(back[2], args[2]);
}

TEST_F(DiiTest, EmptyCommandArgs) {
  EXPECT_TRUE(decode_command_args(encode_command_args({})).empty());
}

TEST_F(DiiTest, SendCommandWithoutTransportRaises) {
  EXPECT_THROW(
      send_command(client_, ref_.endpoint, "", "list_modules", {}),
      NoQosTransport);
}

}  // namespace
}  // namespace maqs::orb

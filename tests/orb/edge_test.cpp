// ORB edge cases: misbehaving routers, re-entrant adapters, garbage
// frames, collocated traffic, timeout interleavings.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "orb/orb.hpp"
#include "support/echo.hpp"
#include "util/log.hpp"

namespace maqs::orb {
namespace {

class EdgeTest : public ::testing::Test {
 protected:
  EdgeTest()
      : net_(loop_),
        server_(net_, "server", 9000),
        client_(net_, "client", 9001) {
    impl_ = std::make_shared<maqs::testing::EchoImpl>();
    ref_ = server_.adapter().activate("echo", impl_);
  }

  sim::EventLoop loop_;
  net::Network net_;
  Orb server_;
  Orb client_;
  std::shared_ptr<maqs::testing::EchoImpl> impl_;
  ObjRef ref_;
};

/// A router whose inbound hook throws: the server must answer with a
/// system exception, not die.
class ThrowingRouter : public RequestRouter {
 public:
  ReplyMessage route(const ObjRef&, RequestMessage) override {
    throw SystemException("router: route exploded");
  }
  std::optional<ReplyMessage> inbound(RequestMessage&,
                                      const net::Address&) override {
    throw SystemException("router: inbound exploded");
  }
  void outbound(const RequestMessage&, ReplyMessage&) override {}
};

TEST_F(EdgeTest, ServerRouterExceptionBecomesSystemException) {
  ThrowingRouter router;
  server_.set_router(&router);
  RequestMessage req;
  req.object_key = "echo";
  req.operation = "echo";
  req.qos_aware = true;  // forces the router inbound path
  cdr::Encoder enc;
  enc.write_string("x");
  req.body = enc.take();
  ReplyMessage rep = client_.invoke_plain(ref_.endpoint, std::move(req));
  EXPECT_EQ(rep.status, ReplyStatus::kSystemException);
  server_.set_router(nullptr);
}

TEST_F(EdgeTest, ClientRouterExceptionPropagatesToCaller) {
  ThrowingRouter router;
  client_.set_router(&router);
  ObjRef qos_ref = ref_;
  QosProfile profile;
  profile.characteristic = "X";
  qos_ref.qos = {profile};
  maqs::testing::EchoStub stub(client_, qos_ref);
  EXPECT_THROW(stub.echo("x"), SystemException);
  client_.set_router(nullptr);
}

TEST_F(EdgeTest, GarbageFramesAreDroppedQuietly) {
  util::Logger::instance().set_level(util::LogLevel::kOff);
  net_.send(client_.endpoint(), server_.endpoint(), util::Bytes{0x00, 0x01});
  net_.send(client_.endpoint(), server_.endpoint(), util::Bytes{});
  // Truncated request frame: magic only.
  net_.send(client_.endpoint(), server_.endpoint(), util::Bytes{0xA1});
  loop_.run_until_idle();
  util::Logger::instance().set_level(util::LogLevel::kWarn);
  // The ORB still works afterwards.
  maqs::testing::EchoStub stub(client_, ref_);
  EXPECT_EQ(stub.echo("still alive"), "still alive");
}

TEST_F(EdgeTest, CollocatedClientAndServerOnOneOrb) {
  // A stub whose ORB hosts the target object: loopback path.
  maqs::testing::EchoStub stub(server_, ref_);
  EXPECT_EQ(stub.add(1, 1), 2);
}

/// Servant that deactivates ITSELF during dispatch — the adapter copy in
/// dispatch keeps the servant alive until the call completes.
class SelfDeactivating : public maqs::testing::EchoSkeleton {
 public:
  SelfDeactivating(ObjectAdapter& adapter, std::string key)
      : adapter_(adapter), key_(std::move(key)) {}
  std::string echo(const std::string& s) override {
    adapter_.deactivate(key_);
    return s + "/last words";
  }
  std::int32_t add(std::int32_t a, std::int32_t b) override { return a + b; }
  void set_value(std::int32_t) override {}
  std::int32_t value() override { return 0; }
  util::Bytes blob(const util::Bytes& d) override { return d; }
  void boom() override {}

 private:
  ObjectAdapter& adapter_;
  std::string key_;
};

TEST_F(EdgeTest, ServantMayDeactivateItselfMidCall) {
  auto servant =
      std::make_shared<SelfDeactivating>(server_.adapter(), "suicidal");
  ObjRef suicidal_ref = server_.adapter().activate("suicidal", servant);
  maqs::testing::EchoStub stub(client_, suicidal_ref);
  EXPECT_EQ(stub.echo("bye"), "bye/last words");
  EXPECT_THROW(stub.echo("again"), ObjectNotExist);
}

TEST_F(EdgeTest, LateReplyAfterTimeoutIsOrphaned) {
  // Slow link: reply arrives after the client's timeout fired.
  net_.set_link("client", "server",
                net::LinkParams{.latency = 300 * sim::kMillisecond,
                                .bandwidth_bps = 0});
  client_.set_default_timeout(100 * sim::kMillisecond);
  maqs::testing::EchoStub stub(client_, ref_);
  EXPECT_THROW(stub.echo("slow"), TransportError);
  loop_.run_until_idle();  // the late reply lands now
  EXPECT_EQ(client_.stats().replies_orphaned, 1u);
  // The server still processed the request.
  EXPECT_EQ(impl_->calls, 1);
}

TEST_F(EdgeTest, ManyOutstandingRequestsResolveIndependently) {
  int done = 0;
  for (int i = 0; i < 64; ++i) {
    RequestMessage req;
    req.object_key = "echo";
    req.operation = "add";
    cdr::Encoder enc;
    enc.write_i32(i);
    enc.write_i32(1);
    req.body = enc.take();
    client_.send_request(ref_.endpoint, std::move(req),
                         [&done, i](const ReplyMessage& rep) {
                           cdr::Decoder dec(rep.body);
                           EXPECT_EQ(dec.read_i32(), i + 1);
                           ++done;
                         });
  }
  loop_.run_until_idle();
  EXPECT_EQ(done, 64);
}

TEST_F(EdgeTest, RebindingEndpointAfterOrbDestruction) {
  {
    Orb temporary(net_, "temp", 7777);
    EXPECT_TRUE(net_.is_bound({"temp", 7777}));
  }
  EXPECT_FALSE(net_.is_bound({"temp", 7777}));
  Orb again(net_, "temp", 7777);  // rebind works
  EXPECT_TRUE(net_.is_bound({"temp", 7777}));
}

TEST_F(EdgeTest, ZeroLengthOperationAndKey) {
  RequestMessage req;  // everything empty
  ReplyMessage rep = client_.invoke_plain(ref_.endpoint, std::move(req));
  EXPECT_EQ(rep.status, ReplyStatus::kNoSuchObject);
}

}  // namespace
}  // namespace maqs::orb

// The invocation-interceptor pipeline: chain ordering, short-circuiting,
// retry re-drives, slot-table state and the chain dump.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "orb/interceptor.hpp"
#include "orb/orb.hpp"
#include "orb/stub.hpp"
#include "support/echo.hpp"

namespace maqs::orb {
namespace {

using testing::EchoImpl;
using testing::EchoStub;

class NamedInterceptor : public ClientInterceptor {
 public:
  explicit NamedInterceptor(const char* n) : name_(n) {}
  const char* name() const noexcept override { return name_; }

 private:
  const char* name_;
};

// Any permutation of registration calls must resolve to the same
// priority-sorted walk order.
TEST(InterceptorChainTest, AnyRegistrationPermutationYieldsPriorityOrder) {
  NamedInterceptor a("a"), b("b"), c("c"), d("d"), e("e");
  struct Reg {
    ClientInterceptor* interceptor;
    int priority;
  };
  const std::vector<Reg> regs = {
      {&a, 500}, {&b, 100}, {&c, 300}, {&d, 200}, {&e, 400}};
  std::vector<std::size_t> perm(regs.size());
  std::iota(perm.begin(), perm.end(), 0u);
  int permutations = 0;
  do {
    ClientChain chain;
    for (std::size_t i : perm) {
      chain.add(regs[i].interceptor, regs[i].priority);
    }
    std::vector<std::string> names;
    int last_priority = -1;
    for (const auto& entry : chain.entries()) {
      EXPECT_GE(entry.priority, last_priority);
      last_priority = entry.priority;
      names.push_back(entry.interceptor->name());
    }
    EXPECT_EQ(names, (std::vector<std::string>{"b", "d", "c", "e", "a"}));
    ++permutations;
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_EQ(permutations, 120);
}

// Equal priorities keep registration order (stable insert).
TEST(InterceptorChainTest, EqualPrioritiesKeepRegistrationOrder) {
  NamedInterceptor x("x"), y("y"), z("z");
  ClientChain chain;
  chain.add(&y, 200);
  chain.add(&x, 100);
  chain.add(&z, 200);
  ASSERT_EQ(chain.entries().size(), 3u);
  EXPECT_STREQ(chain.entries()[0].interceptor->name(), "x");
  EXPECT_STREQ(chain.entries()[1].interceptor->name(), "y");
  EXPECT_STREQ(chain.entries()[2].interceptor->name(), "z");
}

TEST(InterceptorChainTest, FirstAtOrAboveFindsPartialEntryPoint) {
  NamedInterceptor x("x"), y("y"), z("z");
  ClientChain chain;
  chain.add(&x, 100);
  chain.add(&y, 350);
  chain.add(&z, 500);
  EXPECT_EQ(chain.first_at_or_above(0), 0u);
  EXPECT_EQ(chain.first_at_or_above(100), 0u);
  EXPECT_EQ(chain.first_at_or_above(101), 1u);
  EXPECT_EQ(chain.first_at_or_above(350), 1u);
  EXPECT_EQ(chain.first_at_or_above(501), 3u);
}

TEST(InterceptorChainTest, SlotAllocationIsBoundedByTheFixedTable) {
  ClientChain chain;
  std::size_t handed_out = 0;
  for (;;) {
    try {
      EXPECT_EQ(chain.allocate_slot(), handed_out);
    } catch (const Error&) {
      break;
    }
    ++handed_out;
  }
  EXPECT_EQ(handed_out, SlotTable::kSlots);
}

class InterceptorPipelineTest : public ::testing::Test {
 protected:
  InterceptorPipelineTest()
      : net_(loop_),
        server_(net_, "server", 9000),
        client_(net_, "client", 9001) {
    impl_ = std::make_shared<EchoImpl>();
    ref_ = server_.adapter().activate("echo-1", impl_);
  }

  RequestMessage make_echo_request() {
    RequestMessage req;
    req.operation = "echo";
    cdr::Encoder enc;
    enc.write_string("ping");
    req.body = enc.take();
    return req;
  }

  sim::EventLoop loop_;
  net::Network net_;
  Orb server_;
  Orb client_;
  std::shared_ptr<EchoImpl> impl_;
  ObjRef ref_;
};

// The built-in chains come registered at their documented positions.
TEST_F(InterceptorPipelineTest, BuiltinChainsMatchTheDocumentedLayout) {
  const std::vector<InterceptorRecord> records = client_.dump_interceptors();
  std::vector<std::string> client_names;
  std::vector<int> client_priorities;
  std::vector<std::string> server_names;
  for (const InterceptorRecord& rec : records) {
    if (rec.server) {
      server_names.push_back(rec.name);
    } else {
      client_names.push_back(rec.name);
      client_priorities.push_back(rec.priority);
    }
  }
  EXPECT_EQ(client_names,
            (std::vector<std::string>{"trace.client", "mediator", "qos.route",
                                      "local_fault", "retry", "trace.attempt",
                                      "breaker"}));
  EXPECT_EQ(client_priorities,
            (std::vector<int>{100, 200, 300, 350, 400, 450, 500}));
  EXPECT_EQ(server_names, (std::vector<std::string>{"trace.server",
                                                    "wire.reply",
                                                    "qos.server"}));
}

// A custom interceptor can answer the call before it reaches the wire;
// counters record the hit and the short-circuit, and unregistering
// restores the normal path.
TEST_F(InterceptorPipelineTest, CustomClientInterceptorShortCircuits) {
  class LocalAnswer final : public ClientInterceptor {
   public:
    const char* name() const noexcept override { return "local_answer"; }
    SendAction send_request(ClientRequestInfo& info) override {
      info.reply.status = ReplyStatus::kOk;
      cdr::Encoder enc;
      enc.write_string("cached");
      info.reply.body = enc.take();
      return SendAction::kComplete;
    }
  };
  LocalAnswer cache;
  client_.register_client_interceptor(&cache, 250);

  ReplyMessage rep = client_.invoke(ref_, make_echo_request());
  EXPECT_EQ(rep.status, ReplyStatus::kOk);
  cdr::Decoder dec(rep.body);
  EXPECT_EQ(dec.read_string(), "cached");
  EXPECT_EQ(client_.stats().requests_sent, 0u);
  EXPECT_EQ(impl_->calls, 0);

  bool found = false;
  for (const InterceptorRecord& rec : client_.dump_interceptors()) {
    if (std::string(rec.name) == "local_answer") {
      found = true;
      EXPECT_FALSE(rec.server);
      EXPECT_EQ(rec.priority, 250);
      EXPECT_EQ(rec.hits, 1u);
      EXPECT_EQ(rec.short_circuits, 1u);
    }
  }
  EXPECT_TRUE(found);

  EXPECT_TRUE(client_.unregister_client_interceptor(&cache));
  rep = client_.invoke(ref_, make_echo_request());
  EXPECT_EQ(rep.status, ReplyStatus::kOk);
  EXPECT_EQ(impl_->calls, 1);
  EXPECT_FALSE(client_.unregister_client_interceptor(&cache));
}

// kRetry re-drives the interceptor itself and everything below it; the
// levels above see a single pass.
TEST_F(InterceptorPipelineTest, ReceiveReplyCanRedriveTheLowerChain) {
  class RetryOnce final : public ClientInterceptor {
   public:
    const char* name() const noexcept override { return "retry_once"; }
    ReplyAction receive_reply(ClientRequestInfo& info) override {
      if (retries_left_ == 0) return ReplyAction::kContinue;
      --retries_left_;
      info.request.request_id = info.orb.next_request_id();
      return ReplyAction::kRetry;
    }

   private:
    int retries_left_ = 1;
  };
  RetryOnce retry;
  client_.register_client_interceptor(&retry, 420);

  ReplyMessage rep = client_.invoke(ref_, make_echo_request());
  EXPECT_EQ(rep.status, ReplyStatus::kOk);
  // Both drives reached the wire and the servant.
  EXPECT_EQ(client_.stats().requests_sent, 2u);
  EXPECT_EQ(impl_->calls, 2);
  for (const InterceptorRecord& rec : client_.dump_interceptors()) {
    if (std::string(rec.name) == "retry_once") {
      EXPECT_EQ(rec.hits, 2u);
    }
    // The breaker sits below the re-driving level, so it was walked twice;
    // the mediator above saw one pass.
    if (std::string(rec.name) == "breaker") {
      EXPECT_EQ(rec.hits, 2u);
    }
    if (std::string(rec.name) == "mediator" && !rec.server) {
      EXPECT_EQ(rec.hits, 1u);
    }
  }
  client_.unregister_client_interceptor(&retry);
}

// The slot table carries cross-stage state between independently
// registered interceptors without heap allocation.
TEST_F(InterceptorPipelineTest, SlotTableCarriesCrossStageState) {
  class Writer final : public ClientInterceptor {
   public:
    explicit Writer(std::size_t slot) : slot_(slot) {}
    const char* name() const noexcept override { return "writer"; }
    SendAction send_request(ClientRequestInfo& info) override {
      info.slots.set(slot_, 0xFEEDu);
      return SendAction::kContinue;
    }

   private:
    std::size_t slot_;
  };
  class Reader final : public ClientInterceptor {
   public:
    explicit Reader(std::size_t slot) : slot_(slot) {}
    const char* name() const noexcept override { return "reader"; }
    SendAction send_request(ClientRequestInfo& info) override {
      seen = info.slots.get(slot_);
      return SendAction::kContinue;
    }
    std::uint64_t seen = 0;

   private:
    std::size_t slot_;
  };
  const std::size_t slot = client_.allocate_client_slot();
  Writer writer(slot);
  Reader reader(slot);
  client_.register_client_interceptor(&writer, 210);
  client_.register_client_interceptor(&reader, 260);

  client_.invoke(ref_, make_echo_request());
  EXPECT_EQ(reader.seen, 0xFEEDu);

  client_.unregister_client_interceptor(&writer);
  client_.unregister_client_interceptor(&reader);
}

// A server interceptor may answer before the servant runs.
TEST_F(InterceptorPipelineTest, ServerInterceptorShortCircuitsDispatch) {
  class Reject final : public ServerInterceptor {
   public:
    const char* name() const noexcept override { return "reject"; }
    void receive_request(ServerRequestInfo& info) override {
      info.reply.request_id = info.request->request_id;
      info.reply.status = ReplyStatus::kSystemException;
      info.reply.exception = "maqs/REJECTED_BY_POLICY";
      info.completed = true;
    }
  };
  Reject reject;
  server_.register_server_interceptor(&reject, 180);

  ReplyMessage rep = client_.invoke(ref_, make_echo_request());
  EXPECT_EQ(rep.status, ReplyStatus::kSystemException);
  EXPECT_EQ(rep.exception, "maqs/REJECTED_BY_POLICY");
  EXPECT_EQ(impl_->calls, 0);
  for (const InterceptorRecord& rec : server_.dump_interceptors()) {
    if (std::string(rec.name) == "reject") {
      EXPECT_TRUE(rec.server);
      EXPECT_EQ(rec.hits, 1u);
      EXPECT_EQ(rec.short_circuits, 1u);
    }
  }
  server_.unregister_server_interceptor(&reject);

  ReplyMessage ok = client_.invoke(ref_, make_echo_request());
  EXPECT_EQ(ok.status, ReplyStatus::kOk);
  EXPECT_EQ(impl_->calls, 1);
}

// Built-in hit counters track the walks: a plain invocation touches every
// client stage once and the full server chain once.
TEST_F(InterceptorPipelineTest, HitCountersTrackTheWalk) {
  client_.invoke(ref_, make_echo_request());
  for (const InterceptorRecord& rec : client_.dump_interceptors()) {
    if (!rec.server) {
      EXPECT_EQ(rec.hits, 1u) << rec.name;
      EXPECT_EQ(rec.short_circuits, 0u) << rec.name;
    }
  }
  for (const InterceptorRecord& rec : server_.dump_interceptors()) {
    if (rec.server) {
      EXPECT_EQ(rec.hits, 1u) << rec.name;
    }
  }
}

}  // namespace
}  // namespace maqs::orb

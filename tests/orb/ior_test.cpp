#include "orb/ior.hpp"

#include <gtest/gtest.h>

#include "orb/exceptions.hpp"

namespace maqs::orb {
namespace {

ObjRef sample_ref() {
  ObjRef ref;
  ref.repo_id = "IDL:demo/Hello:1.0";
  ref.endpoint = {"server-1", 9000};
  ref.object_key = "hello-42";
  QosProfile compression;
  compression.characteristic = "Compression";
  compression.properties = {{"module", "compression"}, {"algorithm", "lz77"}};
  QosProfile replication;
  replication.characteristic = "Replication";
  replication.properties = {{"group", "grp-hello"}};
  ref.qos = {compression, replication};
  return ref;
}

TEST(Ior, EncodeDecodeRoundTrip) {
  const ObjRef ref = sample_ref();
  EXPECT_EQ(ObjRef::decode(ref.encode()), ref);
}

TEST(Ior, StringifyRoundTrip) {
  const ObjRef ref = sample_ref();
  const std::string s = ref.to_string();
  EXPECT_TRUE(s.starts_with("IOR:"));
  EXPECT_EQ(ObjRef::from_string(s), ref);
}

TEST(Ior, PlainRefIsNotQosAware) {
  ObjRef ref;
  ref.repo_id = "IDL:demo/Hello:1.0";
  ref.endpoint = {"n", 1};
  ref.object_key = "k";
  EXPECT_FALSE(ref.qos_aware());
  EXPECT_FALSE(ref.is_nil());
  EXPECT_EQ(ObjRef::decode(ref.encode()), ref);
}

TEST(Ior, QosTagMakesRefQosAware) {
  EXPECT_TRUE(sample_ref().qos_aware());
}

TEST(Ior, NilDetection) {
  ObjRef nil;
  EXPECT_TRUE(nil.is_nil());
}

TEST(Ior, FindProfile) {
  const ObjRef ref = sample_ref();
  ASSERT_NE(ref.find_profile("Compression"), nullptr);
  EXPECT_EQ(ref.find_profile("Compression")->properties.at("algorithm"), "lz77");
  EXPECT_EQ(ref.find_profile("Encryption"), nullptr);
}

TEST(Ior, FromStringRejectsMissingPrefix) {
  EXPECT_THROW(ObjRef::from_string("ior:abcd"), MarshalError);
  EXPECT_THROW(ObjRef::from_string(""), MarshalError);
}

TEST(Ior, FromStringRejectsBadHex) {
  EXPECT_THROW(ObjRef::from_string("IOR:zz"), MarshalError);
}

TEST(Ior, FromStringRejectsTruncatedBody) {
  const std::string good = sample_ref().to_string();
  EXPECT_THROW(ObjRef::from_string(good.substr(0, good.size() - 8)),
               MarshalError);
}

TEST(Ior, EmptyPropertiesSupported) {
  ObjRef ref = sample_ref();
  ref.qos[0].properties.clear();
  EXPECT_EQ(ObjRef::decode(ref.encode()), ref);
}

ObjRef replicated_ref() {
  ObjRef ref = sample_ref();
  ref.alternates = {{{"server-2", 9000}, "hello-42b"},
                    {{"server-3", 9100}, "hello-42c"}};
  return ref;
}

TEST(Ior, MultiProfileRoundTrip) {
  const ObjRef ref = replicated_ref();
  EXPECT_EQ(ObjRef::decode(ref.encode()), ref);
  EXPECT_EQ(ObjRef::from_string(ref.to_string()), ref);
}

TEST(Ior, ProfileIndexing) {
  const ObjRef ref = replicated_ref();
  EXPECT_TRUE(ref.multi_profile());
  EXPECT_EQ(ref.profile_count(), 3u);
  EXPECT_EQ(ref.profile(0), (AltProfile{{"server-1", 9000}, "hello-42"}));
  EXPECT_EQ(ref.profile(2), (AltProfile{{"server-3", 9100}, "hello-42c"}));
  EXPECT_THROW(ref.profile(3), std::out_of_range);
}

TEST(Ior, SingleProfileRefHasOneProfile) {
  const ObjRef ref = sample_ref();
  EXPECT_FALSE(ref.multi_profile());
  EXPECT_EQ(ref.profile_count(), 1u);
  EXPECT_EQ(ref.profile(0), (AltProfile{ref.endpoint, ref.object_key}));
}

}  // namespace
}  // namespace maqs::orb

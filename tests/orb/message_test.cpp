#include "orb/message.hpp"

#include <gtest/gtest.h>

#include "cdr/decoder.hpp"
#include "orb/exceptions.hpp"
#include "util/bytes.hpp"

namespace maqs::orb {
namespace {

TEST(Message, RequestRoundTrip) {
  RequestMessage req;
  req.request_id = 77;
  req.kind = RequestKind::kServiceRequest;
  req.qos_aware = true;
  req.object_key = "obj-1";
  req.operation = "echo";
  req.context["qos.module"] = util::to_bytes("compression");
  req.body = {1, 2, 3};

  const util::Bytes wire = req.encode();
  EXPECT_TRUE(is_request_frame(wire));
  const RequestMessage back = RequestMessage::decode(wire);
  EXPECT_EQ(back.request_id, 77u);
  EXPECT_EQ(back.kind, RequestKind::kServiceRequest);
  EXPECT_TRUE(back.qos_aware);
  EXPECT_EQ(back.object_key, "obj-1");
  EXPECT_EQ(back.operation, "echo");
  EXPECT_EQ(back.context.at("qos.module"), util::to_bytes("compression"));
  EXPECT_EQ(back.body, (util::Bytes{1, 2, 3}));
}

TEST(Message, CommandRoundTrip) {
  RequestMessage req;
  req.request_id = 5;
  req.kind = RequestKind::kCommand;
  req.qos_aware = true;
  req.target_module = "replication";
  req.operation = "join_group";

  const RequestMessage back = RequestMessage::decode(req.encode());
  EXPECT_EQ(back.kind, RequestKind::kCommand);
  EXPECT_EQ(back.target_module, "replication");
  EXPECT_EQ(back.operation, "join_group");
  EXPECT_TRUE(back.object_key.empty());
}

TEST(Message, ReplyRoundTrip) {
  ReplyMessage rep;
  rep.request_id = 99;
  rep.status = ReplyStatus::kUserException;
  rep.exception = "IDL:test/Fault:1.0";
  rep.context["qos.timestamp"] = util::to_bytes("12345");
  rep.body = {9, 8};

  const util::Bytes wire = rep.encode();
  EXPECT_FALSE(is_request_frame(wire));
  const ReplyMessage back = ReplyMessage::decode(wire);
  EXPECT_EQ(back.request_id, 99u);
  EXPECT_EQ(back.status, ReplyStatus::kUserException);
  EXPECT_EQ(back.exception, "IDL:test/Fault:1.0");
  EXPECT_EQ(back.context.at("qos.timestamp"), util::to_bytes("12345"));
  EXPECT_EQ(back.body, (util::Bytes{9, 8}));
}

TEST(Message, EmptyBodiesAndContexts) {
  RequestMessage req;
  req.request_id = 1;
  const RequestMessage back = RequestMessage::decode(req.encode());
  EXPECT_TRUE(back.body.empty());
  EXPECT_TRUE(back.context.empty());
  EXPECT_FALSE(back.qos_aware);
}

TEST(Message, FrameDetectionRejectsGarbage) {
  EXPECT_THROW(is_request_frame(util::Bytes{}), MarshalError);
  EXPECT_THROW(is_request_frame(util::Bytes{0x55}), MarshalError);
}

TEST(Message, DecodeRejectsWrongMagic) {
  ReplyMessage rep;
  rep.request_id = 1;
  EXPECT_THROW(RequestMessage::decode(rep.encode()), MarshalError);
  RequestMessage req;
  req.request_id = 1;
  EXPECT_THROW(ReplyMessage::decode(req.encode()), MarshalError);
}

TEST(Message, DecodeRejectsBadKind) {
  RequestMessage req;
  req.request_id = 1;
  util::Bytes wire = req.encode();
  wire[9] = 0x7F;  // kind octet (after magic + u64 id)
  EXPECT_THROW(RequestMessage::decode(wire), MarshalError);
}

TEST(Message, DecodeRejectsBadStatus) {
  ReplyMessage rep;
  rep.request_id = 1;
  util::Bytes wire = rep.encode();
  wire[9] = 0x7F;  // status octet
  EXPECT_THROW(ReplyMessage::decode(wire), MarshalError);
}

TEST(Message, DecodeRejectsTrailingBytes) {
  RequestMessage req;
  req.request_id = 1;
  util::Bytes wire = req.encode();
  wire.push_back(0);
  EXPECT_THROW(RequestMessage::decode(wire), cdr::CdrError);
}

TEST(Message, StatusNames) {
  EXPECT_STREQ(reply_status_name(ReplyStatus::kOk), "OK");
  EXPECT_STREQ(reply_status_name(ReplyStatus::kNotNegotiated),
               "NOT_NEGOTIATED");
}

}  // namespace
}  // namespace maqs::orb

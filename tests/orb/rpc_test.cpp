// End-to-end RPC through the ORB over the simulated network.
#include <gtest/gtest.h>

#include <memory>

#include "net/network.hpp"
#include "orb/orb.hpp"
#include "orb/stub.hpp"
#include "support/echo.hpp"

namespace maqs::orb {
namespace {

using testing::EchoImpl;
using testing::EchoStub;

class RpcTest : public ::testing::Test {
 protected:
  RpcTest()
      : net_(loop_),
        server_(net_, "server", 9000),
        client_(net_, "client", 9001) {
    impl_ = std::make_shared<EchoImpl>();
    ref_ = server_.adapter().activate("echo-1", impl_);
  }

  sim::EventLoop loop_;
  net::Network net_;
  Orb server_;
  Orb client_;
  std::shared_ptr<EchoImpl> impl_;
  ObjRef ref_;
};

TEST_F(RpcTest, StringRoundTrip) {
  EchoStub stub(client_, ref_);
  EXPECT_EQ(stub.echo("hello middleware"), "hello middleware");
  EXPECT_EQ(impl_->calls, 1);
}

TEST_F(RpcTest, IntegersAndState) {
  EchoStub stub(client_, ref_);
  EXPECT_EQ(stub.add(20, 22), 42);
  stub.set_value(-7);
  EXPECT_EQ(stub.value(), -7);
}

TEST_F(RpcTest, LargePayloadRoundTrip) {
  EchoStub stub(client_, ref_);
  util::Bytes big(64 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 31);
  }
  EXPECT_EQ(stub.blob(big), big);
}

TEST_F(RpcTest, VirtualTimeAdvancesByRoundTripLatency) {
  net_.set_link("client", "server",
                net::LinkParams{.latency = 10 * sim::kMillisecond,
                                .bandwidth_bps = 0});
  EchoStub stub(client_, ref_);
  const sim::TimePoint before = loop_.now();
  stub.echo("x");
  EXPECT_EQ(loop_.now() - before, 20 * sim::kMillisecond);
}

TEST_F(RpcTest, UserExceptionPropagates) {
  EchoStub stub(client_, ref_);
  try {
    stub.boom();
    FAIL() << "expected UserException";
  } catch (const UserException& e) {
    EXPECT_EQ(e.id(), testing::kEchoFaultId);
    EXPECT_EQ(e.detail(), "boom requested");
  }
}

TEST_F(RpcTest, UnknownObjectRaisesObjectNotExist) {
  ObjRef bad = ref_;
  bad.object_key = "nope";
  EchoStub stub(client_, bad);
  EXPECT_THROW(stub.echo("x"), ObjectNotExist);
}

TEST_F(RpcTest, UnknownOperationRaisesBadOperation) {
  // Drive a raw request with an operation the skeleton rejects.
  RequestMessage req;
  req.operation = "no_such_op";
  req.object_key = ref_.object_key;
  ReplyMessage rep = client_.invoke_plain(ref_.endpoint, std::move(req));
  EXPECT_EQ(rep.status, ReplyStatus::kBadOperation);
}

TEST_F(RpcTest, MalformedArgumentsRaiseSystemException) {
  RequestMessage req;
  req.operation = "add";  // expects 8 bytes of args
  req.object_key = ref_.object_key;
  req.body = {1, 2};  // truncated
  ReplyMessage rep = client_.invoke_plain(ref_.endpoint, std::move(req));
  EXPECT_EQ(rep.status, ReplyStatus::kSystemException);
  EXPECT_TRUE(rep.exception.find("MARSHAL") != std::string::npos ||
              rep.exception.find("underflow") != std::string::npos);
}

TEST_F(RpcTest, TimeoutWhenServerCrashed) {
  net_.crash("server");
  EchoStub stub(client_, ref_);
  EXPECT_THROW(stub.echo("x"), TransportError);
  EXPECT_EQ(client_.stats().timeouts, 1u);
}

TEST_F(RpcTest, DeactivatedObjectRaises) {
  server_.adapter().deactivate("echo-1");
  EchoStub stub(client_, ref_);
  EXPECT_THROW(stub.echo("x"), ObjectNotExist);
}

TEST_F(RpcTest, NilReferenceRejectedLocally) {
  EchoStub stub(client_, ObjRef{});
  EXPECT_THROW(stub.echo("x"), ObjectNotExist);
  EXPECT_EQ(client_.stats().requests_sent, 0u);
}

TEST_F(RpcTest, ConcurrentClientsInterleave) {
  Orb client2(net_, "client2", 9001);
  EchoStub s1(client_, ref_);
  EchoStub s2(client2, ref_);
  EXPECT_EQ(s1.add(1, 2), 3);
  EXPECT_EQ(s2.add(3, 4), 7);
  EXPECT_EQ(s1.echo("a"), "a");
  EXPECT_EQ(impl_->calls, 3);
}

// A servant that itself performs an outgoing call: exercises nested
// event-loop pumping (server calls server).
class ChainedEcho : public testing::EchoSkeleton {
 public:
  ChainedEcho(Orb& orb, ObjRef next) : stub_(orb, std::move(next)) {}

  std::string echo(const std::string& s) override {
    return "chained:" + stub_.echo(s);
  }
  std::int32_t add(std::int32_t a, std::int32_t b) override {
    return stub_.add(a, b);
  }
  void set_value(std::int32_t v) override { stub_.set_value(v); }
  std::int32_t value() override { return stub_.value(); }
  util::Bytes blob(const util::Bytes& d) override { return stub_.blob(d); }
  void boom() override { stub_.boom(); }

 private:
  EchoStub stub_;
};

TEST_F(RpcTest, NestedServerToServerCall) {
  Orb middle(net_, "middle", 9000);
  auto chained = std::make_shared<ChainedEcho>(middle, ref_);
  ObjRef chain_ref = middle.adapter().activate("chain-1", chained);
  EchoStub stub(client_, chain_ref);
  EXPECT_EQ(stub.echo("x"), "chained:x");
  EXPECT_EQ(stub.add(5, 6), 11);
  // Exceptions propagate through the chain.
  EXPECT_THROW(stub.boom(), UserException);
}

TEST_F(RpcTest, StatsCountPaths) {
  EchoStub stub(client_, ref_);
  stub.echo("a");
  stub.echo("b");
  EXPECT_EQ(client_.stats().plain_path, 2u);
  EXPECT_EQ(client_.stats().qos_path, 0u);
  EXPECT_EQ(server_.stats().requests_dispatched, 2u);
}

TEST_F(RpcTest, AdapterDuplicateKeyRejected) {
  EXPECT_THROW(server_.adapter().activate("echo-1", impl_),
               std::invalid_argument);
}

TEST_F(RpcTest, AdapterEmptyKeyAndNullServantRejected) {
  EXPECT_THROW(server_.adapter().activate("", impl_), std::invalid_argument);
  EXPECT_THROW(server_.adapter().activate("x", nullptr),
               std::invalid_argument);
}

TEST_F(RpcTest, ReferenceReconstructsIor) {
  const ObjRef again = server_.adapter().reference("echo-1");
  EXPECT_EQ(again, ref_);
  EXPECT_THROW(server_.adapter().reference("nope"), ObjectNotExist);
}

TEST_F(RpcTest, CommandWithoutQosTransportFails) {
  RequestMessage cmd;
  cmd.kind = RequestKind::kCommand;
  cmd.operation = "list_modules";
  ReplyMessage rep = client_.invoke_plain(ref_.endpoint, std::move(cmd));
  EXPECT_EQ(rep.status, ReplyStatus::kSystemException);
  EXPECT_EQ(rep.exception, "maqs/NO_QOS_TRANSPORT");
}

}  // namespace
}  // namespace maqs::orb

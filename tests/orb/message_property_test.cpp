// Property tests for the GIOP-style message codecs and the flat
// ServiceContext: randomized round-trips, wire-order determinism, and a
// hand-built frame pinning the wire format the old std::map-based context
// produced (sorted keys), so the flat representation cannot drift.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "orb/message.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace maqs::orb {
namespace {

util::Bytes random_bytes(util::Rng& rng, std::size_t size) {
  util::Bytes out;
  out.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    out.push_back(static_cast<std::uint8_t>(rng.next()));
  }
  return out;
}

std::string random_key(util::Rng& rng) {
  static const char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz._-";
  const std::size_t len = 1 + rng.next_below(24);
  std::string key;
  key.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    key.push_back(kAlphabet[rng.next_below(sizeof(kAlphabet) - 1)]);
  }
  return key;
}

ServiceContext random_context(util::Rng& rng, std::size_t max_entries) {
  ServiceContext context;
  const std::size_t n = rng.next_below(max_entries + 1);
  for (std::size_t i = 0; i < n; ++i) {
    context[random_key(rng)] = random_bytes(rng, rng.next_below(64));
  }
  return context;
}

TEST(MessageProperty, RequestRoundTripRandomized) {
  util::Rng rng(0xF4F4);
  for (int iter = 0; iter < 200; ++iter) {
    RequestMessage req;
    req.request_id = rng.next();
    req.kind = rng.chance(0.3) ? RequestKind::kCommand
                               : RequestKind::kServiceRequest;
    req.qos_aware = rng.chance(0.5);
    req.object_key = random_key(rng);
    req.target_module = rng.chance(0.5) ? random_key(rng) : std::string{};
    req.operation = random_key(rng);
    req.context = random_context(rng, 8);
    req.body = random_bytes(rng, rng.next_below(512));

    const util::Bytes wire = req.encode();
    ASSERT_EQ(wire.size(), req.encoded_size())
        << "encoded_size() must match the bytes actually produced";
    const RequestMessage back = RequestMessage::decode(wire);
    EXPECT_EQ(back.request_id, req.request_id);
    EXPECT_EQ(back.kind, req.kind);
    EXPECT_EQ(back.qos_aware, req.qos_aware);
    EXPECT_EQ(back.object_key, req.object_key);
    EXPECT_EQ(back.target_module, req.target_module);
    EXPECT_EQ(back.operation, req.operation);
    EXPECT_EQ(back.context, req.context);
    EXPECT_EQ(back.body, req.body);
  }
}

TEST(MessageProperty, ReplyRoundTripRandomized) {
  util::Rng rng(0xBEEF);
  const ReplyStatus statuses[] = {
      ReplyStatus::kOk,           ReplyStatus::kUserException,
      ReplyStatus::kSystemException, ReplyStatus::kNotNegotiated,
      ReplyStatus::kNoSuchObject, ReplyStatus::kBadOperation,
  };
  for (int iter = 0; iter < 200; ++iter) {
    ReplyMessage rep;
    rep.request_id = rng.next();
    rep.status = statuses[rng.next_below(std::size(statuses))];
    rep.exception =
        rep.status == ReplyStatus::kOk ? std::string{} : random_key(rng);
    rep.context = random_context(rng, 8);
    rep.body = random_bytes(rng, rng.next_below(512));

    const util::Bytes wire = rep.encode();
    ASSERT_EQ(wire.size(), rep.encoded_size());
    const ReplyMessage back = ReplyMessage::decode(wire);
    EXPECT_EQ(back.request_id, rep.request_id);
    EXPECT_EQ(back.status, rep.status);
    EXPECT_EQ(back.exception, rep.exception);
    EXPECT_EQ(back.context, rep.context);
    EXPECT_EQ(back.body, rep.body);
  }
}

TEST(MessageProperty, LargeBodyRoundTrip) {
  util::Rng rng(0xCAFE);
  RequestMessage req;
  req.request_id = 42;
  req.object_key = "bulk";
  req.operation = "put";
  req.body = random_bytes(rng, 100 * 1024);
  req.context["qos.module"] = random_bytes(rng, 1024);

  const RequestMessage back = RequestMessage::decode(req.encode());
  EXPECT_EQ(back.body, req.body);
  EXPECT_EQ(back.context, req.context);
}

TEST(MessageProperty, WireOrderIndependentOfInsertionOrder) {
  // The old std::map context serialized keys in sorted order regardless of
  // insertion order; the flat context must keep producing those bytes.
  util::Rng rng(0x51DE);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<std::pair<std::string, util::Bytes>> entries;
    const std::size_t n = 1 + rng.next_below(8);
    for (std::size_t i = 0; i < n; ++i) {
      entries.emplace_back(random_key(rng), random_bytes(rng, 16));
    }

    RequestMessage sorted_insert;
    sorted_insert.request_id = 7;
    std::sort(entries.begin(), entries.end());
    for (const auto& [key, value] : entries) {
      sorted_insert.context[key] = value;
    }

    RequestMessage shuffled_insert;
    shuffled_insert.request_id = 7;
    // Deterministic shuffle via the seeded Rng.
    for (std::size_t i = entries.size(); i > 1; --i) {
      std::swap(entries[i - 1], entries[rng.next_below(i)]);
    }
    for (const auto& [key, value] : entries) {
      shuffled_insert.context[key] = value;
    }

    EXPECT_EQ(sorted_insert.encode(), shuffled_insert.encode());
  }
}

TEST(MessageProperty, DecodedContextKeysAreSorted) {
  util::Rng rng(0xD00D);
  RequestMessage req;
  req.request_id = 1;
  req.context = random_context(rng, 12);
  const RequestMessage back = RequestMessage::decode(req.encode());
  std::string prev;
  bool first = true;
  for (const auto& [key, value] : back.context) {
    if (!first) {
      EXPECT_LT(prev, key);
    }
    prev = key;
    first = false;
  }
}

TEST(MessageProperty, WireFormatPinnedAgainstHandBuiltFrame) {
  // Byte-for-byte reference frame, written out the way the pre-flat
  // (std::map) encoder laid it down: magic, u64 id, kind, qos flag,
  // length-prefixed strings, count-prefixed context sorted by key,
  // length-prefixed body. All integers little-endian.
  RequestMessage req;
  req.request_id = 0x0102030405060708ULL;
  req.kind = RequestKind::kServiceRequest;
  req.qos_aware = true;
  req.object_key = "obj";
  req.target_module = "";
  req.operation = "op";
  req.context["b"] = util::Bytes{0xBB};
  req.context["a"] = util::Bytes{0xAA};
  req.body = util::Bytes{0x01, 0x02};

  const util::Bytes expected = {
      0xA1,                                            // request magic
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // request id (LE)
      0x00,                                            // kind = service
      0x01,                                            // qos_aware
      0x03, 0x00, 0x00, 0x00, 'o',  'b',  'j',         // object_key
      0x00, 0x00, 0x00, 0x00,                          // target_module ""
      0x02, 0x00, 0x00, 0x00, 'o',  'p',               // operation
      0x02, 0x00, 0x00, 0x00,                          // context count
      0x01, 0x00, 0x00, 0x00, 'a',                     // key "a" first
      0x01, 0x00, 0x00, 0x00, 0xAA,                    //   value
      0x01, 0x00, 0x00, 0x00, 'b',                     // key "b" second
      0x01, 0x00, 0x00, 0x00, 0xBB,                    //   value
      0x02, 0x00, 0x00, 0x00, 0x01, 0x02,              // body
  };
  EXPECT_EQ(req.encode(), expected);
}

TEST(MessageProperty, SynthesizedFlagNeverTouchesTheWire) {
  // synthesized_locally is local provenance, not protocol: flipping it
  // must not change a single wire byte, and a decoded reply (which by
  // definition crossed the wire) must always come back with it false.
  util::Rng rng(0x10CA);
  for (int iter = 0; iter < 100; ++iter) {
    ReplyMessage rep;
    rep.request_id = rng.next();
    rep.status = ReplyStatus::kSystemException;
    rep.exception = random_key(rng);
    rep.context = random_context(rng, 4);
    rep.body = random_bytes(rng, rng.next_below(128));

    rep.synthesized_locally = false;
    const util::Bytes wire_clear = rep.encode();
    rep.synthesized_locally = true;
    const util::Bytes wire_set = rep.encode();
    ASSERT_EQ(wire_clear, wire_set);
    ASSERT_EQ(wire_set.size(), rep.encoded_size());

    const ReplyMessage back = ReplyMessage::decode(wire_set);
    EXPECT_FALSE(back.synthesized_locally);
    EXPECT_EQ(back.exception, rep.exception);
  }
}

TEST(MessageProperty, ContextDuplicateInsertOverwrites) {
  ServiceContext context;
  context["k"] = util::Bytes{1};
  context["k"] = util::Bytes{2};
  EXPECT_EQ(context.size(), 1u);
  EXPECT_EQ(context.at("k"), util::Bytes{2});
  context.set("k", util::Bytes{3});
  EXPECT_EQ(context.at("k"), util::Bytes{3});
  EXPECT_TRUE(context.erase("k"));
  EXPECT_FALSE(context.erase("k"));
  EXPECT_TRUE(context.empty());
}

}  // namespace
}  // namespace maqs::orb

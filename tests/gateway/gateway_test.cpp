// End-to-end edge gateway tests: HTTP/JSON client -> route table -> DII
// through the full client interceptor chain -> Echo servant, plus the
// exception -> status mapping, MTOM blob offload, QoS classification and
// trace propagation.
#include <gtest/gtest.h>

#include <string>

#include "gateway/gateway.hpp"
#include "gateway/json.hpp"
#include "gateway/mtom.hpp"
#include "net/network.hpp"
#include "qidl/repository.hpp"
#include "sched/scheduler.hpp"
#include "support/echo.hpp"
#include "support/http_client.hpp"
#include "trace/trace.hpp"

namespace maqs::gateway {
namespace {

using maqs::testing::EchoImpl;
using maqs::testing::HttpTestClient;
using maqs::testing::kGatewayEchoQidl;

class GatewayTest : public ::testing::Test {
 protected:
  GatewayTest()
      : repo_(qidl::InterfaceRepository::build(qidl::analyze(kGatewayEchoQidl))),
        net_(loop_, 7),
        server_(net_, "server", 9000),
        edge_(net_, "edge", 9001),
        gw_(edge_, repo_, 8080),
        web_(net_, {"web", 80}, gw_.endpoint()) {
    impl_ = std::make_shared<EchoImpl>();
    ref_ = server_.adapter().activate("echo-1", impl_);
    gw_.expose("Echo", ref_);
  }

  static std::string text(const HttpResponse& resp) {
    return std::string(reinterpret_cast<const char*>(resp.body.data()),
                       resp.body.size());
  }

  /// The "error.code" member of a structured fault body.
  static std::string fault_code(const HttpResponse& resp) {
    const JsonValue body = parse_json(text(resp));
    const JsonValue* error = body.find("error");
    if (error == nullptr || error->find("code") == nullptr) return {};
    return error->find("code")->as_string();
  }

  qidl::InterfaceRepository repo_;
  sim::EventLoop loop_;
  net::Network net_;
  orb::Orb server_;
  orb::Orb edge_;
  Gateway gw_;
  HttpTestClient web_;
  std::shared_ptr<EchoImpl> impl_;
  orb::ObjRef ref_;
};

TEST_F(GatewayTest, RouteTableCoversEveryOperation) {
  ASSERT_EQ(gw_.routes().routes().size(), 6u);
  EXPECT_NE(gw_.routes().find("/api/Echo/add"), nullptr);
  EXPECT_NE(gw_.routes().find("/api/Echo/blob"), nullptr);
  EXPECT_EQ(gw_.routes().find("/api/Echo/nope"), nullptr);
}

TEST_F(GatewayTest, AddRoundTrip) {
  const auto resp = web_.request("POST", "/api/Echo/add", "{\"a\":2,\"b\":40}");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(text(*resp), "{\"result\":42}");
  EXPECT_EQ(impl_->calls, 1);
  EXPECT_EQ(gw_.stats().ok, 1u);
}

TEST_F(GatewayTest, EchoAndVoidAndNoArgOperations) {
  auto resp = web_.request("POST", "/api/Echo/echo", "{\"s\":\"hello\"}");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(text(*resp), "{\"result\":\"hello\"}");

  resp = web_.request("POST", "/api/Echo/set_value", "{\"v\":7}");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(text(*resp), "{\"result\":null}");

  // Empty body is accepted for zero-parameter operations.
  resp = web_.request("POST", "/api/Echo/value", "");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(text(*resp), "{\"result\":7}");
}

TEST_F(GatewayTest, KeepAliveAndPipelining) {
  // Two requests in a single frame: responses must come back in order on
  // the same connection.
  util::Bytes frame =
      HttpTestClient::encode_request("POST", "/api/Echo/add",
                                     "{\"a\":1,\"b\":1}");
  const util::Bytes second = HttpTestClient::encode_request(
      "POST", "/api/Echo/add", "{\"a\":2,\"b\":2}");
  frame.insert(frame.end(), second.begin(), second.end());
  web_.send_raw(std::move(frame));
  auto first = web_.await_response();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(text(*first), "{\"result\":2}");
  auto next = web_.await_response();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(text(*next), "{\"result\":4}");
  EXPECT_EQ(gw_.open_connections(), 1u);
}

TEST_F(GatewayTest, UnknownRouteIs404) {
  const auto resp = web_.request("POST", "/api/Echo/nope", "{}");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 404);
  EXPECT_EQ(fault_code(*resp), "maqs/NO_ROUTE");
  EXPECT_EQ(gw_.stats().not_found, 1u);
}

TEST_F(GatewayTest, WrongMethodIs400) {
  const auto resp = web_.request("GET", "/api/Echo/add", "");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 400);
  EXPECT_EQ(fault_code(*resp), "maqs/BAD_METHOD");
}

TEST_F(GatewayTest, UnexposedInterfaceIs404) {
  Gateway bare(edge_, repo_, 8081);
  HttpTestClient client(net_, {"web2", 80}, bare.endpoint());
  const auto resp = client.request("POST", "/api/Echo/add",
                                   "{\"a\":1,\"b\":2}");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 404);
  EXPECT_EQ(fault_code(*resp), "maqs/NOT_EXPOSED");
}

TEST_F(GatewayTest, BadBodiesAre400) {
  const char* bodies[] = {
      "not json",                 // unparseable
      "[1,2]",                    // not an object
      "{\"a\":1}",                // missing parameter
      "{\"a\":1,\"b\":2,\"c\":3}",  // unknown parameter
      "{\"a\":\"x\",\"b\":2}",    // wrong type
      "{\"a\":2147483648,\"b\":0}",  // out of range for long
  };
  for (const char* body : bodies) {
    const auto resp = web_.request("POST", "/api/Echo/add", body);
    ASSERT_TRUE(resp.has_value()) << body;
    EXPECT_EQ(resp->status, 400) << body;
    EXPECT_EQ(fault_code(*resp), "maqs/BAD_BODY") << body;
  }
  EXPECT_EQ(impl_->calls, 0);
}

TEST_F(GatewayTest, MalformedHttpIs400AndDropsConnection) {
  web_.send_text("THIS IS NOT HTTP\r\n\r\n");
  const auto resp = web_.await_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 400);
  EXPECT_EQ(fault_code(*resp), "maqs/BAD_REQUEST");
  EXPECT_EQ(gw_.stats().malformed, 1u);
  EXPECT_EQ(gw_.open_connections(), 0u);
}

TEST_F(GatewayTest, UserExceptionIs500WithDetail) {
  const auto resp = web_.request("POST", "/api/Echo/boom", "{}");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 500);
  EXPECT_EQ(fault_code(*resp), maqs::testing::kEchoFaultId);
  EXPECT_NE(text(*resp).find("boom requested"), std::string::npos);
}

TEST_F(GatewayTest, UpstreamTimeoutIs504) {
  edge_.set_default_timeout(200 * sim::kMillisecond);
  net_.crash("server");
  const auto resp = web_.request("POST", "/api/Echo/add", "{\"a\":1,\"b\":2}");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 504);
  EXPECT_EQ(fault_code(*resp), "maqs/TIMEOUT");
  EXPECT_EQ(gw_.stats().gateway_timeout, 1u);
}

TEST_F(GatewayTest, OpenCircuitIs503WithRetryAfter) {
  edge_.set_default_timeout(100 * sim::kMillisecond);
  orb::BreakerConfig breaker;
  breaker.failure_threshold = 2;
  breaker.open_period = 10 * sim::kSecond;
  edge_.set_breaker_config(breaker);
  net_.crash("server");
  // Two timeouts trip the breaker; the third request fast-fails.
  for (int i = 0; i < 2; ++i) {
    const auto resp =
        web_.request("POST", "/api/Echo/add", "{\"a\":1,\"b\":2}");
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status, 504);
  }
  const auto resp = web_.request("POST", "/api/Echo/add", "{\"a\":1,\"b\":2}");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 503);
  EXPECT_EQ(fault_code(*resp), "maqs/CIRCUIT_OPEN");
  ASSERT_TRUE(resp->header("retry-after").has_value());
  EXPECT_EQ(*resp->header("retry-after"), "1");
  EXPECT_EQ(gw_.stats().unavailable, 1u);
}

TEST_F(GatewayTest, SchedulerOverloadIs503) {
  // A zero-capacity best-effort queue sheds any arrival while the server
  // is busy; pace the service rate so a warm-up call occupies it.
  sched::SchedulerConfig config;
  sched::ClassConfig best;
  best.name = sched::kBestEffortClassName;
  best.queue_limit = 0;
  config.classes.push_back(best);
  config.service_rate_rps = 10.0;  // 100ms per request
  sched::RequestScheduler scheduler(server_, config);

  // An idle server is work-conserving and serves the first call inline.
  const auto warm = web_.request("POST", "/api/Echo/add", "{\"a\":0,\"b\":0}");
  ASSERT_TRUE(warm.has_value());
  EXPECT_EQ(warm->status, 200);

  // The next arrival lands inside the busy window and is shed.
  const auto resp = web_.request("POST", "/api/Echo/add", "{\"a\":1,\"b\":2}");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 503);
  EXPECT_EQ(fault_code(*resp), sched::kOverloadException);
  ASSERT_TRUE(resp->header("retry-after").has_value());
}

TEST_F(GatewayTest, TenantHeaderBecomesQosClassTag) {
  // gold tenants ride a gold-class queue that absorbs the busy window;
  // unknown tenants fall into best-effort, whose zero-capacity queue
  // sheds — observable proof the header became the qos.class context tag.
  sched::SchedulerConfig config;
  sched::ClassConfig gold;
  gold.name = "gold";
  gold.weight = 3.0;
  gold.queue_limit = 16;
  gold.deadline_budget = 1 * sim::kSecond;
  config.classes.push_back(gold);
  sched::ClassConfig best;
  best.name = sched::kBestEffortClassName;
  best.queue_limit = 0;
  config.classes.push_back(best);
  config.service_rate_rps = 10.0;  // 100ms per request
  sched::RequestScheduler scheduler(server_, config);

  gw_.set_tenant_class("acme", "gold");

  // First gold call dispatches inline and opens a 100ms busy window.
  const auto gold_resp = web_.request("POST", "/api/Echo/add",
                                      "{\"a\":1,\"b\":2}",
                                      {{"x-maqs-tenant", "acme"}});
  ASSERT_TRUE(gold_resp.has_value());
  EXPECT_EQ(gold_resp->status, 200);

  // Second gold call (explicit class header) queues and still completes.
  const auto direct = web_.request("POST", "/api/Echo/add",
                                   "{\"a\":3,\"b\":4}",
                                   {{"x-qos-class", "gold"}});
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(direct->status, 200);

  // Unknown tenant -> best_effort -> shed while the server is busy.
  const auto best_resp = web_.request("POST", "/api/Echo/add",
                                      "{\"a\":5,\"b\":6}",
                                      {{"x-maqs-tenant", "unknown"}});
  ASSERT_TRUE(best_resp.has_value());
  EXPECT_EQ(best_resp->status, 503);
}

TEST_F(GatewayTest, SmallBlobInlinesAsJsonArray) {
  const auto resp = web_.request("POST", "/api/Echo/blob",
                                 "{\"data\":[1,2,255]}");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(text(*resp), "{\"result\":[1,2,255]}");
}

TEST_F(GatewayTest, LargeBlobGoesOutOfBandWhenAccepted) {
  // Build a multipart request whose blob argument rides a binary part,
  // and ask for a multipart response.
  std::string blob(4096, '\0');
  for (std::size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<char>('a' + (i % 23));
  }
  const util::Bytes blob_bytes(blob.begin(), blob.end());
  MultipartBuilder builder("req-b");
  builder.add_json_root("{\"data\":{\"$blob\":\"cid:d0\"}}");
  builder.add_blob_part("d0", blob_bytes);  // view; must outlive finish()
  const util::Bytes container = builder.finish();

  std::string head =
      "POST /api/Echo/blob HTTP/1.1\r\n"
      "content-type: " + builder.content_type() + "\r\n"
      "accept: multipart/related\r\n"
      "content-length: " + std::to_string(container.size()) + "\r\n\r\n";
  util::Bytes frame(head.begin(), head.end());
  frame.insert(frame.end(), container.begin(), container.end());
  web_.send_raw(std::move(frame));

  const auto resp = web_.await_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  ASSERT_TRUE(resp->header("content-type").has_value());
  const ContentType ct = parse_content_type(*resp->header("content-type"));
  ASSERT_EQ(ct.media_type, "multipart/related");
  const auto parsed = parse_multipart_related(resp->body, ct.boundary);
  ASSERT_TRUE(parsed.has_value());
  // Root references the blob part; the part carries the echoed bytes.
  const JsonValue root = parse_json(std::string(
      reinterpret_cast<const char*>(parsed->root.data()), parsed->root.size()));
  const JsonValue* ref = root.find("result")->find("$blob");
  ASSERT_NE(ref, nullptr);
  const MtomPart* part = parsed->find(ref->as_string());
  ASSERT_NE(part, nullptr);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(part->data.data()),
                        part->data.size()),
            blob);
  EXPECT_EQ(gw_.stats().mtom_parts_in, 1u);
  EXPECT_EQ(gw_.stats().mtom_parts_out, 1u);
}

TEST_F(GatewayTest, LargeBlobInlinesWithoutAcceptHeader) {
  // Same call without Accept: multipart/related stays inline JSON.
  std::string args = "{\"data\":[";
  for (int i = 0; i < 2048; ++i) {
    args += (i ? ",7" : "7");
  }
  args += "]}";
  const auto resp = web_.request("POST", "/api/Echo/blob", args);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  ASSERT_TRUE(resp->header("content-type").has_value());
  EXPECT_EQ(*resp->header("content-type"), "application/json");
}

TEST_F(GatewayTest, TracePropagatesFromHeaderThroughInvocation) {
  trace::TraceRecorder recorder(loop_);
  recorder.set_enabled(true);
  edge_.set_trace_recorder(&recorder);

  const auto resp = web_.request("POST", "/api/Echo/add", "{\"a\":1,\"b\":2}",
                                 {{"x-trace-id", "abc123"}});
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  ASSERT_TRUE(resp->header("x-trace-id").has_value());
  EXPECT_EQ(*resp->header("x-trace-id"), "0000000000abc123");

  // The gateway.request root span owns a client.request child, all under
  // the caller's trace id.
  const auto spans = recorder.spans();
  const trace::Span* root = nullptr;
  const trace::Span* client = nullptr;
  for (const trace::Span& span : spans) {
    if (std::string_view(span.name) == "gateway.request") root = &span;
    if (std::string_view(span.name) == "client.request") client = &span;
  }
  ASSERT_NE(root, nullptr);
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(root->trace_id, 0xabc123u);
  EXPECT_EQ(client->trace_id, 0xabc123u);
  EXPECT_EQ(client->parent_id, root->span_id);
  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(root->detail, "POST /api/Echo/add");
}

TEST_F(GatewayTest, MintsTraceWhenNoHeader) {
  trace::TraceRecorder recorder(loop_);
  recorder.set_enabled(true);
  edge_.set_trace_recorder(&recorder);
  const auto resp = web_.request("POST", "/api/Echo/add", "{\"a\":1,\"b\":2}");
  ASSERT_TRUE(resp.has_value());
  EXPECT_TRUE(resp->header("x-trace-id").has_value());
}

TEST_F(GatewayTest, IdleConnectionsAreReaped) {
  const auto resp = web_.request("POST", "/api/Echo/add", "{\"a\":1,\"b\":2}");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(gw_.open_connections(), 1u);
  loop_.run_for(31 * sim::kSecond);
  gw_.sweep_idle();
  EXPECT_EQ(gw_.open_connections(), 0u);
  EXPECT_EQ(gw_.stats().idle_reaped, 1u);
}

TEST_F(GatewayTest, ExposeRejectsUnknownInterface) {
  EXPECT_THROW(gw_.expose("Nope", ref_), Error);
}

}  // namespace
}  // namespace maqs::gateway

// JSON document model + Any⇄JSON conversion tests.
#include <gtest/gtest.h>

#include <string>

#include "cdr/typecode.hpp"
#include "gateway/json.hpp"

namespace maqs::gateway {
namespace {

using cdr::Any;
using cdr::TCKind;
using cdr::TypeCode;

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_EQ(parse_json("42").as_integer(), 42);
  EXPECT_EQ(parse_json("-7").as_integer(), -7);
  EXPECT_DOUBLE_EQ(parse_json("2.5").as_number(), 2.5);
  EXPECT_DOUBLE_EQ(parse_json("1e3").as_number(), 1000.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
  EXPECT_EQ(parse_json("  \"a\\nb\\\"c\\\\d\"  ").as_string(), "a\nb\"c\\d");
  // Strings are byte sequences: \u00XX is one byte, higher code points
  // take their UTF-8 encoding.
  EXPECT_EQ(parse_json("\"\\u0041\\u00e9\"").as_string(), "A\xe9");
  EXPECT_EQ(parse_json("\"\\u20ac\"").as_string(), "\xe2\x82\xac");
}

TEST(JsonParse, Containers) {
  const JsonValue arr = parse_json("[1, 2, [3]]");
  ASSERT_TRUE(arr.is_array());
  ASSERT_EQ(arr.as_array().size(), 3u);
  EXPECT_EQ(arr.as_array()[2].as_array()[0].as_integer(), 3);

  const JsonValue obj = parse_json("{\"a\": 1, \"b\": {\"c\": []}}");
  ASSERT_TRUE(obj.is_object());
  ASSERT_NE(obj.find("a"), nullptr);
  EXPECT_EQ(obj.find("a")->as_integer(), 1);
  ASSERT_NE(obj.find("b"), nullptr);
  EXPECT_NE(obj.find("b")->find("c"), nullptr);
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(JsonParse, RejectsMalformed) {
  for (const char* text :
       {"", "{", "[1,]", "{\"a\":}", "{a:1}", "\"unterminated", "nul",
        "1.2.3", "[1] extra", "{\"a\":1,}", "\x01"}) {
    EXPECT_THROW(parse_json(text), JsonError) << text;
  }
}

TEST(JsonParse, RejectsRunawayDepth) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_THROW(parse_json(deep), JsonError);
}

TEST(JsonWrite, DeterministicAndRoundTrips) {
  const char* text =
      "{\"s\":\"a\\\"b\",\"n\":-3,\"d\":2.5,\"t\":true,\"z\":null,"
      "\"arr\":[1,2],\"obj\":{\"k\":\"v\"}}";
  const JsonValue parsed = parse_json(text);
  const std::string once = write_json(parsed);
  EXPECT_EQ(write_json(parse_json(once)), once);  // stable fixed point
  EXPECT_EQ(parse_json(once), parsed);
}

TEST(AnyToJson, Scalars) {
  EXPECT_TRUE(any_to_json(Any::make_void()).is_null());
  EXPECT_EQ(any_to_json(Any::from_bool(true)).as_bool(), true);
  EXPECT_EQ(any_to_json(Any::from_octet(255)).as_integer(), 255);
  EXPECT_EQ(any_to_json(Any::from_short(-5)).as_integer(), -5);
  EXPECT_EQ(any_to_json(Any::from_long(123456)).as_integer(), 123456);
  EXPECT_EQ(any_to_json(Any::from_longlong(1LL << 40)).as_integer(),
            1LL << 40);
  EXPECT_DOUBLE_EQ(any_to_json(Any::from_double(2.25)).as_number(), 2.25);
  EXPECT_EQ(any_to_json(Any::from_string("hi")).as_string(), "hi");
}

TEST(AnyToJson, EnumBecomesName) {
  const auto color = TypeCode::enum_tc("Color", {"red", "green", "blue"});
  EXPECT_EQ(any_to_json(Any::from_enum(color, 1)).as_string(), "green");
}

TEST(JsonToAny, ScalarsAndRanges) {
  EXPECT_EQ(json_to_any(parse_json("200"), TypeCode::octet_tc()).as_octet(),
            200);
  EXPECT_EQ(json_to_any(parse_json("-7"), TypeCode::long_tc()).as_long(), -7);
  EXPECT_DOUBLE_EQ(
      json_to_any(parse_json("2.5"), TypeCode::double_tc()).as_double(), 2.5);
  // Integral JSON numbers widen into float targets.
  EXPECT_DOUBLE_EQ(
      json_to_any(parse_json("3"), TypeCode::double_tc()).as_double(), 3.0);
  // Range violations are rejected, not truncated.
  EXPECT_THROW(json_to_any(parse_json("256"), TypeCode::octet_tc()),
               JsonError);
  EXPECT_THROW(json_to_any(parse_json("-1"), TypeCode::octet_tc()), JsonError);
  EXPECT_THROW(json_to_any(parse_json("40000"), TypeCode::short_tc()),
               JsonError);
  EXPECT_THROW(
      json_to_any(parse_json("2147483648"), TypeCode::long_tc()), JsonError);
  EXPECT_THROW(json_to_any(parse_json("1.5"), TypeCode::long_tc()), JsonError);
  EXPECT_THROW(json_to_any(parse_json("\"x\""), TypeCode::long_tc()),
               JsonError);
}

TEST(JsonToAny, EnumByNameAndOrdinal) {
  const auto color = TypeCode::enum_tc("Color", {"red", "green", "blue"});
  EXPECT_EQ(json_to_any(parse_json("\"blue\""), color).as_enum_ordinal(), 2u);
  EXPECT_EQ(json_to_any(parse_json("1"), color).as_enum_name(), "green");
  EXPECT_THROW(json_to_any(parse_json("\"mauve\""), color), JsonError);
  EXPECT_THROW(json_to_any(parse_json("9"), color), JsonError);
}

TEST(JsonToAny, SequenceAndStruct) {
  const auto seq = TypeCode::sequence_tc(TypeCode::long_tc());
  const Any parsed = json_to_any(parse_json("[1,2,3]"), seq);
  ASSERT_EQ(parsed.as_elements().size(), 3u);
  EXPECT_EQ(parsed.as_elements()[2].as_long(), 3);

  const auto point = TypeCode::struct_tc(
      "Point", {{"x", TypeCode::long_tc()}, {"y", TypeCode::long_tc()}});
  // Field order in the document does not matter.
  const Any p = json_to_any(parse_json("{\"y\":2,\"x\":1}"), point);
  EXPECT_EQ(p.as_elements()[0].as_long(), 1);
  EXPECT_EQ(p.as_elements()[1].as_long(), 2);
  // Missing and unknown fields are rejected.
  EXPECT_THROW(json_to_any(parse_json("{\"x\":1}"), point), JsonError);
  EXPECT_THROW(json_to_any(parse_json("{\"x\":1,\"y\":2,\"z\":3}"), point),
               JsonError);
}

TEST(JsonAnyRoundTrip, NestedValue) {
  const auto point = TypeCode::struct_tc(
      "Point", {{"x", TypeCode::long_tc()},
                {"tags", TypeCode::sequence_tc(TypeCode::string_tc())}});
  const Any value = Any::from_struct(
      point,
      {Any::from_long(7),
       Any::from_sequence(TypeCode::string_tc(),
                          {Any::from_string("a"), Any::from_string("b")})});
  const Any back =
      json_to_any(parse_json(write_json(any_to_json(value))), point);
  EXPECT_EQ(back, value);
}

}  // namespace
}  // namespace maqs::gateway

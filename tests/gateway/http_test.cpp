// HttpParser / HttpResponseParser unit tests: framing, torn reads,
// pipelining, chunked bodies, limits, poisoning.
#include <gtest/gtest.h>

#include <string>

#include "gateway/http.hpp"

namespace maqs::gateway {
namespace {

util::Bytes bytes(std::string_view s) {
  return util::Bytes(s.begin(), s.end());
}

std::string body_text(const HttpRequest& req) {
  return std::string(reinterpret_cast<const char*>(req.body.data()),
                     req.body.size());
}

TEST(HttpParser, ParsesSimpleRequest) {
  HttpParser parser;
  parser.feed(bytes("POST /api/Echo/add HTTP/1.1\r\n"
                    "Content-Type: application/json\r\n"
                    "content-length: 13\r\n\r\n"
                    "{\"a\":1,\"b\":2}"));
  HttpRequest req;
  ASSERT_EQ(parser.poll(req), HttpParser::Result::kRequest);
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.target, "/api/Echo/add");
  EXPECT_EQ(req.version, "HTTP/1.1");
  EXPECT_TRUE(req.keep_alive);
  ASSERT_TRUE(req.header("content-type").has_value());
  EXPECT_EQ(*req.header("content-type"), "application/json");
  EXPECT_EQ(body_text(req), "{\"a\":1,\"b\":2}");
  EXPECT_EQ(parser.poll(req), HttpParser::Result::kNeedMore);
}

TEST(HttpParser, HeaderNamesFoldToLowercase) {
  HttpParser parser;
  parser.feed(bytes("GET / HTTP/1.1\r\nX-TRACE-ID: abc\r\n\r\n"));
  HttpRequest req;
  ASSERT_EQ(parser.poll(req), HttpParser::Result::kRequest);
  ASSERT_TRUE(req.header("x-trace-id").has_value());
  EXPECT_EQ(*req.header("x-trace-id"), "abc");
}

TEST(HttpParser, TornReadsAtEveryByte) {
  const std::string wire =
      "POST /x HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello";
  for (std::size_t split = 1; split < wire.size(); ++split) {
    HttpParser parser;
    parser.feed(bytes(wire.substr(0, split)));
    HttpRequest req;
    // The request must never complete early and never error mid-feed.
    const auto first = parser.poll(req);
    ASSERT_NE(first, HttpParser::Result::kError) << "split=" << split;
    parser.feed(bytes(wire.substr(split)));
    if (first != HttpParser::Result::kRequest) {
      ASSERT_EQ(parser.poll(req), HttpParser::Result::kRequest)
          << "split=" << split;
    }
    EXPECT_EQ(body_text(req), "hello") << "split=" << split;
  }
}

TEST(HttpParser, PipelinedRequestsInOneFeed) {
  HttpParser parser;
  parser.feed(bytes("GET /a HTTP/1.1\r\n\r\n"
                    "POST /b HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi"
                    "GET /c HTTP/1.1\r\n\r\n"));
  HttpRequest req;
  ASSERT_EQ(parser.poll(req), HttpParser::Result::kRequest);
  EXPECT_EQ(req.target, "/a");
  ASSERT_EQ(parser.poll(req), HttpParser::Result::kRequest);
  EXPECT_EQ(req.target, "/b");
  EXPECT_EQ(body_text(req), "hi");
  ASSERT_EQ(parser.poll(req), HttpParser::Result::kRequest);
  EXPECT_EQ(req.target, "/c");
  EXPECT_EQ(parser.poll(req), HttpParser::Result::kNeedMore);
}

TEST(HttpParser, ChunkedBody) {
  HttpParser parser;
  parser.feed(bytes("POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"
                    "5\r\nhello\r\n6;ext=1\r\n world\r\n0\r\n\r\n"));
  HttpRequest req;
  ASSERT_EQ(parser.poll(req), HttpParser::Result::kRequest);
  EXPECT_EQ(body_text(req), "hello world");
}

TEST(HttpParser, ChunkedWithTrailerFields) {
  HttpParser parser;
  parser.feed(bytes("POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"
                    "3\r\nabc\r\n0\r\nx-checksum: 9\r\n\r\n"));
  HttpRequest req;
  ASSERT_EQ(parser.poll(req), HttpParser::Result::kRequest);
  EXPECT_EQ(body_text(req), "abc");
}

TEST(HttpParser, ConnectionCloseAndHttp10Defaults) {
  HttpParser parser;
  parser.feed(bytes("GET /a HTTP/1.1\r\nConnection: close\r\n\r\n"
                    "GET /b HTTP/1.0\r\n\r\n"
                    "GET /c HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"));
  HttpRequest req;
  ASSERT_EQ(parser.poll(req), HttpParser::Result::kRequest);
  EXPECT_FALSE(req.keep_alive);
  ASSERT_EQ(parser.poll(req), HttpParser::Result::kRequest);
  EXPECT_FALSE(req.keep_alive);  // HTTP/1.0 default
  ASSERT_EQ(parser.poll(req), HttpParser::Result::kRequest);
  EXPECT_TRUE(req.keep_alive);
}

TEST(HttpParser, MalformedRequestLinePoisons) {
  for (const char* wire :
       {"BROKEN\r\n\r\n", "GET  HTTP/1.1\r\n\r\n", "GET /x HTTP/2\r\n\r\n",
        "GET noslash HTTP/1.1\r\n\r\n"}) {
    HttpParser parser;
    parser.feed(bytes(wire));
    HttpRequest req;
    EXPECT_EQ(parser.poll(req), HttpParser::Result::kError) << wire;
    EXPECT_TRUE(parser.poisoned()) << wire;
    EXPECT_FALSE(parser.error().empty()) << wire;
    // Poisoned parsers stay poisoned.
    parser.feed(bytes("GET / HTTP/1.1\r\n\r\n"));
    EXPECT_EQ(parser.poll(req), HttpParser::Result::kError) << wire;
  }
}

TEST(HttpParser, MalformedFramingPoisons) {
  for (const char* wire :
       {"GET / HTTP/1.1\r\nbad header line\r\n\r\n",
        "GET / HTTP/1.1\r\n: novalue\r\n\r\n",
        "POST / HTTP/1.1\r\ncontent-length: 12x\r\n\r\n",
        "POST / HTTP/1.1\r\ncontent-length: -4\r\n\r\n",
        "POST / HTTP/1.1\r\ntransfer-encoding: gzip\r\n\r\n",
        "POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\nzz\r\n",
        "POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n2\r\nabXX"}) {
    HttpParser parser;
    parser.feed(bytes(wire));
    HttpRequest req;
    EXPECT_EQ(parser.poll(req), HttpParser::Result::kError) << wire;
  }
}

TEST(HttpParser, OversizedHeaderBlockPoisons) {
  HttpParser parser;
  std::string wire = "GET / HTTP/1.1\r\n";
  wire.append("x-pad: " + std::string(HttpParser::kMaxHeaderBytes, 'a') +
              "\r\n\r\n");
  parser.feed(bytes(wire));
  HttpRequest req;
  EXPECT_EQ(parser.poll(req), HttpParser::Result::kError);
}

TEST(HttpParser, OversizedBodyPoisons) {
  HttpParser parser;
  parser.feed(bytes("POST / HTTP/1.1\r\ncontent-length: " +
                    std::to_string(HttpParser::kMaxBodyBytes + 1) +
                    "\r\n\r\n"));
  HttpRequest req;
  EXPECT_EQ(parser.poll(req), HttpParser::Result::kError);
}

TEST(HttpParser, BufferCompactionKeepsPipelinedBytes) {
  HttpParser parser;
  HttpRequest req;
  // Many keep-alive requests across one connection; the internal buffer
  // must compact without losing the unparsed tail.
  for (int i = 0; i < 200; ++i) {
    parser.feed(bytes("POST /r HTTP/1.1\r\ncontent-length: 3\r\n\r\nabc"));
    ASSERT_EQ(parser.poll(req), HttpParser::Result::kRequest) << i;
    EXPECT_EQ(body_text(req), "abc");
  }
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(HttpResponse, EncodeParseRoundTrip) {
  HttpResponse resp;
  resp.status = 503;
  resp.set_header("content-type", "application/json");
  resp.set_header("retry-after", "1");
  const std::string body = "{\"error\":{}}";
  resp.body = bytes(body);

  HttpResponseParser parser;
  parser.feed(resp.encode());
  HttpResponse parsed;
  ASSERT_EQ(parser.poll(parsed), HttpResponseParser::Result::kResponse);
  EXPECT_EQ(parsed.status, 503);
  ASSERT_TRUE(parsed.header("retry-after").has_value());
  EXPECT_EQ(*parsed.header("retry-after"), "1");
  EXPECT_EQ(parsed.body, resp.body);
}

TEST(HttpResponseParser, TornResponse) {
  const std::string wire =
      "HTTP/1.1 200 OK\r\ncontent-length: 4\r\n\r\nbody";
  for (std::size_t split = 1; split < wire.size(); ++split) {
    HttpResponseParser parser;
    parser.feed(bytes(wire.substr(0, split)));
    HttpResponse resp;
    const auto first = parser.poll(resp);
    ASSERT_NE(first, HttpResponseParser::Result::kError);
    parser.feed(bytes(wire.substr(split)));
    if (first != HttpResponseParser::Result::kResponse) {
      ASSERT_EQ(parser.poll(resp), HttpResponseParser::Result::kResponse);
    }
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.body, bytes("body"));
  }
}

}  // namespace
}  // namespace maqs::gateway

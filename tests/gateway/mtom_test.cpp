// multipart/related (MTOM-style) container parse/build tests.
#include <gtest/gtest.h>

#include <string>

#include "gateway/mtom.hpp"

namespace maqs::gateway {
namespace {

util::Bytes bytes(std::string_view s) {
  return util::Bytes(s.begin(), s.end());
}

std::string text(util::BytesView view) {
  return std::string(reinterpret_cast<const char*>(view.data()), view.size());
}

TEST(ContentTypeParse, MediaTypeAndBoundary) {
  const ContentType plain = parse_content_type("application/json");
  EXPECT_EQ(plain.media_type, "application/json");
  EXPECT_TRUE(plain.boundary.empty());

  const ContentType multi = parse_content_type(
      "Multipart/Related; boundary=\"b-1\"; type=\"application/json\"");
  EXPECT_EQ(multi.media_type, "multipart/related");
  EXPECT_EQ(multi.boundary, "b-1");

  const ContentType bare = parse_content_type(
      "multipart/related;boundary=xyz");
  EXPECT_EQ(bare.boundary, "xyz");
}

TEST(MultipartParse, RootAndBlobParts) {
  const std::string body =
      "--B\r\n"
      "content-type: application/json\r\n"
      "\r\n"
      "{\"data\":{\"$blob\":\"cid:p1\"}}\r\n"
      "--B\r\n"
      "Content-ID: <p1>\r\n"
      "Content-Type: application/octet-stream\r\n"
      "\r\n"
      "\x01\x02\x03raw\r\n"
      "--B--\r\n";
  const util::Bytes wire = util::Bytes(body.begin(), body.end());
  const auto parsed = parse_multipart_related(wire, "B");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(text(parsed->root), "{\"data\":{\"$blob\":\"cid:p1\"}}");
  ASSERT_EQ(parsed->parts.size(), 1u);
  EXPECT_EQ(parsed->parts[0].content_id, "p1");
  EXPECT_EQ(parsed->parts[0].content_type, "application/octet-stream");
  EXPECT_EQ(text(parsed->parts[0].data), "\x01\x02\x03raw");
  // Lookup by cid URL or bare id.
  EXPECT_EQ(parsed->find("cid:p1"), &parsed->parts[0]);
  EXPECT_EQ(parsed->find("p1"), &parsed->parts[0]);
  EXPECT_EQ(parsed->find("cid:absent"), nullptr);
}

TEST(MultipartParse, ZeroCopyViewsAliasTheBody) {
  const std::string body =
      "--B\r\ncontent-type: application/json\r\n\r\nroot\r\n"
      "--B\r\ncontent-id: <x>\r\n\r\ndata\r\n--B--\r\n";
  const util::Bytes wire = bytes(body);
  const auto parsed = parse_multipart_related(wire, "B");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_GE(parsed->root.data(), wire.data());
  EXPECT_LT(parsed->root.data(), wire.data() + wire.size());
  EXPECT_GE(parsed->parts[0].data.data(), wire.data());
}

TEST(MultipartParse, RejectsMalformed) {
  for (const char* body :
       {"",                                    // empty
        "preamble\r\n--B\r\n\r\nx\r\n--B--",   // preamble not in subset
        "--B\r\n\r\nroot",                     // no closing delimiter
        "--B--\r\n",                           // closing before any part
        "--B\r\nno colon\r\n\r\nx\r\n--B--",   // bad part header
        "--Bxx\r\n\r\nx\r\n--B--",             // boundary mismatch
        "--B\r\n\r\nroot\r\n--B\r\n\r\nblob\r\n--B--"}) {  // part sans cid
    EXPECT_FALSE(parse_multipart_related(bytes(body), "B").has_value())
        << body;
  }
  EXPECT_FALSE(parse_multipart_related(bytes("--B\r\n\r\nx\r\n--B--"), "")
                   .has_value());
}

TEST(MultipartBuilder, RoundTripsThroughParser) {
  MultipartBuilder builder("bound-7");
  builder.add_json_root("{\"result\":{\"$blob\":\"cid:r0\"}}");
  const util::Bytes blob = bytes("binary\r\npayload");
  builder.add_blob_part("r0", blob);

  EXPECT_EQ(builder.content_type(),
            "multipart/related; boundary=bound-7; type=\"application/json\"");
  const std::size_t predicted = builder.encoded_size();
  const util::Bytes wire = builder.finish();
  EXPECT_EQ(wire.size(), predicted);

  const auto parsed = parse_multipart_related(wire, "bound-7");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(text(parsed->root), "{\"result\":{\"$blob\":\"cid:r0\"}}");
  ASSERT_EQ(parsed->parts.size(), 1u);
  EXPECT_EQ(parsed->parts[0].content_id, "r0");
  EXPECT_EQ(text(parsed->parts[0].data), "binary\r\npayload");
}

}  // namespace
}  // namespace maqs::gateway

// Many-node replica world: a ServiceDirectory node, N echo replicas with
// heartbeat agents, and a client running a ReplicaSelector — the harness
// for the naming/replication suites and the replica_storm chaos scenario.
//
// Topology (all on one deterministic simulator):
//
//   registry:9500   ServiceDirectory under the well-known key
//   server-1:9000   EchoImpl "echo-1" (+ optional gold-class scheduler,
//   ...              + "bulk-i" best-effort servant for storm pressure)
//   server-N:900(N-1)
//   client:9001     ReplicaSelector + DirectoryClient
//
// Every replica registers under one service name; lookups hand the client
// a multi-profile reference; selection/failover happen per invocation in
// the client's interceptor chain.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "naming/directory.hpp"
#include "naming/directory_client.hpp"
#include "naming/selector.hpp"
#include "sched/scheduler.hpp"
#include "support/chaos.hpp"

namespace maqs::testing {

inline const std::string kReplicaService = "echo-svc";

struct ReplicaWorld {
  struct Replica {
    std::unique_ptr<orb::Orb> orb;
    std::shared_ptr<EchoImpl> servant;
    std::shared_ptr<EchoImpl> bulk_servant;
    std::string object_key;
    std::unique_ptr<naming::HeartbeatAgent> agent;
    std::unique_ptr<sched::RequestScheduler> scheduler;
  };

  explicit ReplicaWorld(std::size_t replica_count = 3,
                        std::uint64_t seed = chaos_seed(),
                        naming::SelectorConfig selector_config = {})
      : net(loop, seed),
        registry(net, "registry", 9500),
        client(net, "client", 9001),
        directory(std::make_shared<naming::ServiceDirectory>(loop)),
        directory_client(client, registry.endpoint()),
        selector(client, selector_config) {
    registry.adapter().activate(naming::directory_object_key(), directory);
    for (std::size_t i = 1; i <= replica_count; ++i) {
      Replica replica;
      replica.orb = std::make_unique<orb::Orb>(
          net, "server-" + std::to_string(i),
          static_cast<std::uint16_t>(9000 + i - 1));
      replica.servant = std::make_shared<EchoImpl>();
      replica.object_key = "echo-" + std::to_string(i);
      replica.orb->adapter().activate(replica.object_key, replica.servant);
      replica.bulk_servant = std::make_shared<EchoImpl>();
      replica.orb->adapter().activate("bulk-" + std::to_string(i),
                                      replica.bulk_servant);
      replicas.push_back(std::move(replica));
    }
  }

  /// Registers every replica with the directory (direct in-process calls;
  /// deterministic and instant — heartbeats keep the leases alive once
  /// start_heartbeats ran).
  void register_all() {
    for (Replica& replica : replicas) {
      directory->register_member(
          kReplicaService, replica.servant->repo_id(),
          orb::AltProfile{replica.orb->endpoint(), replica.object_key}, 0.0,
          0);
    }
  }

  /// Starts a heartbeat agent per replica (registers over the wire too).
  void start_heartbeats(sim::Duration period = 50 * sim::kMillisecond) {
    for (Replica& replica : replicas) {
      naming::HeartbeatAgent::Config config;
      config.service = kReplicaService;
      config.object_key = replica.object_key;
      config.period = period;
      if (replica.scheduler != nullptr) {
        config.load_probe = core::make_load_probe(*replica.scheduler);
      }
      replica.agent = std::make_unique<naming::HeartbeatAgent>(
          *replica.orb, registry.endpoint(), config);
      replica.agent->start();
    }
  }

  /// Arms a gold + best-effort scheduler on every replica; each replica's
  /// echo servant is bound to "gold", the bulk servant rides best-effort.
  void arm_schedulers(double service_rps) {
    for (Replica& replica : replicas) {
      sched::SchedulerConfig config;
      sched::ClassConfig gold;
      gold.name = "gold";
      gold.weight = 3.0;
      gold.deadline_budget = 50 * sim::kMillisecond;
      gold.queue_limit = 32;
      config.classes.push_back(gold);
      sched::ClassConfig best;
      best.name = sched::kBestEffortClassName;
      best.weight = 1.0;
      best.deadline_budget = 20 * sim::kMillisecond;
      best.queue_limit = 8;
      config.classes.push_back(best);
      config.service_rate_rps = service_rps;
      config.total_limit = 40;
      replica.scheduler =
          std::make_unique<sched::RequestScheduler>(*replica.orb, config);
      replica.scheduler->classifier().bind_object(replica.object_key, "gold");
    }
  }

  /// Multi-profile reference for the service, fetched over the wire; also
  /// feeds the selector's least-loaded policy with the reported loads.
  orb::ObjRef lookup() {
    std::optional<naming::ServiceView> view =
        directory_client.lookup(kReplicaService);
    if (!view.has_value()) return {};
    selector.update_loads(view->ref.object_key, view->loads);
    return std::move(view->ref);
  }

  void crash_at(sim::TimePoint when, const net::NodeId& node) {
    const sim::TimePoint now = loop.now();
    loop.schedule(when > now ? when - now : 0,
                  [this, node] { net.crash(node); });
  }

  sim::EventLoop loop;
  net::Network net;
  orb::Orb registry;
  orb::Orb client;
  std::shared_ptr<naming::ServiceDirectory> directory;
  naming::DirectoryClient directory_client;
  naming::ReplicaSelector selector;
  std::vector<Replica> replicas;
};

}  // namespace maqs::testing

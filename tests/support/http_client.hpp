// Minimal HTTP client over the simulated network, for gateway tests and
// the bench HTTP rows: sends raw frames (so torn/malformed input is easy
// to produce) and parses responses with the gateway's own
// HttpResponseParser, pumping the event loop until a response completes.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "gateway/http.hpp"
#include "net/network.hpp"
#include "sim/event_loop.hpp"

namespace maqs::testing {

class HttpTestClient {
 public:
  HttpTestClient(net::Network& net, net::Address self, net::Address gateway)
      : net_(net), self_(self), gateway_(gateway) {
    if (!net_.has_node(self_.node)) net_.add_node(self_.node);
    net_.bind(self_, [this](const net::Address&, const util::Bytes& payload) {
      parser_.feed(payload);
      drain();
    });
  }
  ~HttpTestClient() { net_.unbind(self_); }
  HttpTestClient(const HttpTestClient&) = delete;
  HttpTestClient& operator=(const HttpTestClient&) = delete;

  void send_raw(util::Bytes frame) {
    net_.send(self_, gateway_, std::move(frame));
  }
  void send_text(std::string_view text) {
    send_raw(util::Bytes(text.begin(), text.end()));
  }

  /// Serializes a request; `headers` are emitted verbatim.
  static util::Bytes encode_request(
      const std::string& method, const std::string& target,
      std::string_view body,
      const std::vector<std::pair<std::string, std::string>>& headers = {}) {
    std::string out = method + " " + target + " HTTP/1.1\r\n";
    for (const auto& [name, value] : headers) {
      out += name + ": " + value + "\r\n";
    }
    out += "content-length: " + std::to_string(body.size()) + "\r\n\r\n";
    out += body;
    return util::Bytes(out.begin(), out.end());
  }

  /// Pumps the loop until one more response than before has arrived (or
  /// the deadline passes); returns it.
  std::optional<gateway::HttpResponse> await_response(
      sim::Duration timeout = 10 * sim::kSecond) {
    const std::size_t want = delivered_ + 1;
    const sim::TimePoint deadline = net_.loop().now() + timeout;
    net_.loop().run_until([&] {
      return responses_.size() >= want || net_.loop().now() >= deadline;
    });
    if (responses_.size() < want) return std::nullopt;
    gateway::HttpResponse out = std::move(responses_[delivered_]);
    ++delivered_;
    return out;
  }

  /// Blocking request/response round trip.
  std::optional<gateway::HttpResponse> request(
      const std::string& method, const std::string& target,
      std::string_view body,
      const std::vector<std::pair<std::string, std::string>>& headers = {},
      sim::Duration timeout = 10 * sim::kSecond) {
    send_raw(encode_request(method, target, body, headers));
    return await_response(timeout);
  }

  /// Frees already-delivered responses so bench loops that run hundreds
  /// of thousands of round trips keep a flat footprint.
  void discard_delivered() {
    responses_.erase(responses_.begin(),
                     responses_.begin() +
                         static_cast<std::ptrdiff_t>(delivered_));
    delivered_ = 0;
  }

  std::size_t responses_seen() const noexcept { return responses_.size(); }
  bool parser_failed() const noexcept {
    return !parser_.error().empty();
  }

 private:
  void drain() {
    gateway::HttpResponse resp;
    while (parser_.poll(resp) ==
           gateway::HttpResponseParser::Result::kResponse) {
      responses_.push_back(std::move(resp));
      resp = gateway::HttpResponse{};
    }
  }

  net::Network& net_;
  net::Address self_;
  net::Address gateway_;
  gateway::HttpResponseParser parser_;
  std::vector<gateway::HttpResponse> responses_;
  std::size_t delivered_ = 0;
};

/// The Echo QIDL source shared by gateway tests (matches
/// tests/support/echo.hpp's hand-written stub/skeleton).
inline const char* const kGatewayEchoQidl = R"(
  module test {
    interface Echo {
      string echo(in string s);
      long add(in long a, in long b);
      void set_value(in long v);
      long value();
      sequence<octet> blob(in sequence<octet> data);
      void boom();
    };
  };
)";

}  // namespace maqs::testing

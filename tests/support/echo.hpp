// Hand-written "generated-style" stub/skeleton pair for the interface
//
//   interface Echo {
//     string echo(in string s);
//     long   add(in long a, in long b);
//     void   set_value(in long v);
//     long   value();
//     sequence<octet> blob(in sequence<octet> data);   // payload echo
//     void   boom();                                   // raises EchoFault
//   };
//
// This is exactly the code shape the qidlc emitter produces (the emitter
// tests assert that); sharing it keeps ORB/core tests independent from the
// code generator.
#pragma once

#include <string>

#include "cdr/decoder.hpp"
#include "cdr/encoder.hpp"
#include "orb/exceptions.hpp"
#include "orb/servant.hpp"
#include "orb/stub.hpp"

namespace maqs::testing {

inline const std::string kEchoRepoId = "IDL:test/Echo:1.0";
inline const std::string kEchoFaultId = "IDL:test/EchoFault:1.0";

class EchoStub : public orb::StubBase {
 public:
  EchoStub(orb::Orb& orb, orb::ObjRef ref)
      : orb::StubBase(orb, std::move(ref)) {}

  std::string echo(const std::string& s) const {
    cdr::Encoder args = cdr::Encoder::pooled();
    args.write_string(s);
    cdr::Decoder result(invoke_operation("echo", args.take()));
    std::string out = result.read_string();
    result.expect_end();
    return out;
  }

  std::int32_t add(std::int32_t a, std::int32_t b) const {
    cdr::Encoder args = cdr::Encoder::pooled();
    args.write_i32(a);
    args.write_i32(b);
    cdr::Decoder result(invoke_operation("add", args.take()));
    const std::int32_t out = result.read_i32();
    result.expect_end();
    return out;
  }

  void set_value(std::int32_t v) const {
    cdr::Encoder args = cdr::Encoder::pooled();
    args.write_i32(v);
    invoke_operation("set_value", args.take());
  }

  std::int32_t value() const {
    cdr::Decoder result(invoke_operation("value", {}));
    const std::int32_t out = result.read_i32();
    result.expect_end();
    return out;
  }

  util::Bytes blob(const util::Bytes& data) const {
    cdr::Encoder args = cdr::Encoder::pooled(data.size() + 8);
    args.write_bytes(data);
    cdr::Decoder result(invoke_operation("blob", args.take()));
    util::Bytes out = result.read_bytes();
    result.expect_end();
    return out;
  }

  void boom() const { invoke_operation("boom", {}); }
};

/// Skeleton: unmarshals and delegates to the pure-virtual implementation
/// hooks, exactly like emitted code.
class EchoSkeleton : public orb::Servant {
 public:
  const std::string& repo_id() const override { return kEchoRepoId; }

  void dispatch(const std::string& operation, cdr::Decoder& args,
                cdr::Encoder& out, orb::ServerContext& ctx) override {
    (void)ctx;
    if (operation == "echo") {
      const std::string s = args.read_string();
      args.expect_end();
      out.write_string(echo(s));
    } else if (operation == "add") {
      const std::int32_t a = args.read_i32();
      const std::int32_t b = args.read_i32();
      args.expect_end();
      out.write_i32(add(a, b));
    } else if (operation == "set_value") {
      const std::int32_t v = args.read_i32();
      args.expect_end();
      set_value(v);
    } else if (operation == "value") {
      args.expect_end();
      out.write_i32(value());
    } else if (operation == "blob") {
      const util::Bytes data = args.read_bytes();
      args.expect_end();
      out.write_bytes(blob(data));
    } else if (operation == "boom") {
      args.expect_end();
      boom();
    } else {
      throw orb::BadOperation("Echo: unknown operation " + operation);
    }
  }

  virtual std::string echo(const std::string& s) = 0;
  virtual std::int32_t add(std::int32_t a, std::int32_t b) = 0;
  virtual void set_value(std::int32_t v) = 0;
  virtual std::int32_t value() = 0;
  virtual util::Bytes blob(const util::Bytes& data) = 0;
  virtual void boom() = 0;
};

/// Plain implementation used across the test suite.
class EchoImpl : public EchoSkeleton {
 public:
  std::string echo(const std::string& s) override {
    ++calls;
    return s;
  }
  std::int32_t add(std::int32_t a, std::int32_t b) override {
    ++calls;
    return a + b;
  }
  void set_value(std::int32_t v) override {
    ++calls;
    value_ = v;
  }
  std::int32_t value() override {
    ++calls;
    return value_;
  }
  util::Bytes blob(const util::Bytes& data) override {
    ++calls;
    return data;
  }
  void boom() override {
    ++calls;
    throw orb::UserException(kEchoFaultId, "boom requested");
  }

  int calls = 0;

 private:
  std::int32_t value_ = 0;
};

}  // namespace maqs::testing

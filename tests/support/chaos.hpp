// Chaos harness: a full client/server QoS world plus fault-injection
// helpers for the resilience integration suite.
//
// ChaosWorld wires the same stack as the adaptation tests (two ORBs, two
// QoS transports, negotiation service + negotiator + adaptation manager,
// resource manager) and adds:
//   - a plain Echo servant for transport-level scenarios (loss, crash,
//     partition) that need no QoS machinery,
//   - the "chaos.flaky" characteristic whose transport module fails on
//     demand, for the quarantine/renegotiation scenarios,
//   - schedule_at-style wrappers over the network fault-injection API so
//     scenarios read as timelines,
//   - a sequential workload runner reporting success/failure/latency.
//
// Determinism: every stochastic input (link loss, jitter) draws from the
// network's seeded RNG; MAQS_CHAOS_SEED overrides the seed so CI can run
// a small seed matrix over the same scenarios.
#pragma once

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

#include "characteristics/compression.hpp"
#include "characteristics/encryption.hpp"
#include "core/adaptation.hpp"
#include "core/retry.hpp"
#include "core/sched_bridge.hpp"
#include "net/network.hpp"
#include "sched/scheduler.hpp"
#include "support/qos_echo.hpp"

namespace maqs::testing {

/// Seed for chaos scenarios: MAQS_CHAOS_SEED when set, else 42.
inline std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("MAQS_CHAOS_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 42;
}

// ---- flaky characteristic (module failure injection) ----

inline const std::string& flaky_module_name() {
  static const std::string kName = "chaos.flaky.module";
  return kName;
}

inline const std::string& flaky_name() {
  static const std::string kName = "chaos.flaky";
  return kName;
}

/// Shared failure switch: the test flips `failing`, the module (owned by
/// the transport) reads it per invocation.
struct FlakyState {
  bool failing = false;
  int invocations = 0;
  int failures = 0;
};

class FlakyModule final : public core::QosModule {
 public:
  explicit FlakyModule(std::shared_ptr<FlakyState> state)
      : core::QosModule(flaky_module_name()), state_(std::move(state)) {}

  orb::ReplyMessage invoke(orb::RequestMessage req,
                           const orb::ObjRef& target) override {
    ++state_->invocations;
    if (state_->failing) {
      ++state_->failures;
      throw core::QosError("chaos: injected module failure");
    }
    return core::QosModule::invoke(std::move(req), target);
  }

 private:
  std::shared_ptr<FlakyState> state_;
};

inline core::CharacteristicDescriptor flaky_descriptor() {
  return core::CharacteristicDescriptor(
      flaky_name(), core::QosCategory::kFaultTolerance, {},
      {
          core::DimensionDesc{"level",
                              {cdr::Any::from_long(64), cdr::Any::from_long(32),
                               cdr::Any::from_long(16), cdr::Any::from_long(8),
                               cdr::Any::from_long(4), cdr::Any::from_long(2),
                               cdr::Any::from_long(1)},
                              0},
      },
      {});
}

/// Provider for the flaky characteristic: module-level only (no mediator,
/// no server impl), demanding `level` cpu so admission and the halving
/// policy behave like the real characteristics.
inline core::CharacteristicProvider make_flaky_provider(
    std::shared_ptr<FlakyState> state) {
  core::CharacteristicProvider provider;
  provider.descriptor = flaky_descriptor();
  provider.module = flaky_module_name();
  auto& registry = core::ModuleFactoryRegistry::instance();
  if (!registry.contains(flaky_module_name())) {
    registry.register_factory(flaky_module_name(), [state] {
      return std::make_unique<FlakyModule>(state);
    });
  }
  provider.resource_demand =
      [](const std::map<std::string, cdr::Any>& params) {
        core::ResourceDemand demand;
        demand["cpu"] = static_cast<double>(params.at("level").as_integer());
        return demand;
      };
  return provider;
}

// ---- the world ----

struct ChaosWorld {
  explicit ChaosWorld(std::uint64_t seed = chaos_seed())
      : net(loop, seed),
        server(net, "server", 9000),
        client(net, "client", 9001),
        server_transport(server),
        client_transport(client),
        flaky_state(std::make_shared<FlakyState>()),
        providers(make_providers(flaky_state)),
        negotiation(server_transport, providers, resources),
        negotiator(client_transport, providers),
        adaptation(client_transport, negotiator) {
    resources.declare("cpu", 100.0);
    resources.declare("bandwidth", 1000.0);
    plain_servant = std::make_shared<EchoImpl>();
    plain_ref = server.adapter().activate("chaos-plain", plain_servant);
    qos_servant = std::make_shared<QosEchoImpl>();
    qos_servant->assign_characteristic(flaky_descriptor());
    orb::QosProfile profile;
    profile.characteristic = flaky_name();
    qos_ref = server.adapter().activate("chaos-echo", qos_servant, {profile});
    // Woven data-path servant for the bandwidth-collapse scenario:
    // compression + encryption negotiate real capability matrices here.
    stream_servant = std::make_shared<QosEchoImpl>();
    stream_servant->assign_characteristic(
        characteristics::compression_descriptor());
    stream_servant->assign_characteristic(
        characteristics::encryption_descriptor());
    orb::QosProfile compress;
    compress.characteristic = characteristics::compression_name();
    orb::QosProfile encrypt;
    encrypt.characteristic = characteristics::encryption_name();
    stream_ref = server.adapter().activate("chaos-stream", stream_servant,
                                           {compress, encrypt});
  }

  ~ChaosWorld() {
    // The factory closure captures this world's FlakyState; drop it so
    // the next world registers a fresh one.
    core::ModuleFactoryRegistry::instance().unregister(flaky_module_name());
  }

  static core::ProviderRegistry make_providers(
      const std::shared_ptr<FlakyState>& state) {
    core::ProviderRegistry registry;
    registry.add(make_flaky_provider(state));
    registry.add(characteristics::make_compression_provider());
    registry.add(characteristics::make_encryption_psk_provider());
    return registry;
  }

  /// One step down the agreement's preference lattice per violation,
  /// resource-aware (the cheapest step relieving a violated budget wins).
  core::AdaptationManager::Policy lattice_policy() const {
    return core::make_lattice_policy(providers);
  }

  /// Arms the server-side request scheduler (the overload scenario): a
  /// "gold" class with 3x the best-effort weight, bound to the QoS echo
  /// object, server paced at `service_rps`. The global bound sits below
  /// the sum of the class limits so gold arrivals under full queues evict
  /// best-effort victims, and the overload signal is wired to the
  /// negotiation service so the first gold shed of an episode pushes a
  /// violation (renegotiate-once) to the client's adaptation manager.
  sched::RequestScheduler& arm_scheduler(double service_rps) {
    sched::SchedulerConfig config;
    sched::ClassConfig gold;
    gold.name = "gold";
    gold.weight = 3.0;
    gold.deadline_budget = 50 * sim::kMillisecond;
    gold.queue_limit = 16;
    config.classes.push_back(gold);
    sched::ClassConfig best;
    best.name = sched::kBestEffortClassName;
    best.weight = 1.0;
    best.deadline_budget = 20 * sim::kMillisecond;
    best.queue_limit = 8;
    config.classes.push_back(best);
    config.service_rate_rps = service_rps;
    config.total_limit = 20;
    scheduler = std::make_unique<sched::RequestScheduler>(server, config);
    scheduler->classifier().bind_object("chaos-echo", "gold");
    core::attach_overload_renegotiation(*scheduler, negotiation);
    return *scheduler;
  }

  // ---- fault timeline helpers (absolute virtual-time points) ----

  void at(sim::TimePoint when, std::function<void()> action) {
    const sim::TimePoint now = loop.now();
    loop.schedule(when > now ? when - now : 0, std::move(action));
  }
  void crash_at(sim::TimePoint when, const net::NodeId& node) {
    at(when, [this, node] { net.crash(node); });
  }
  void restart_at(sim::TimePoint when, const net::NodeId& node) {
    at(when, [this, node] { net.restart(node); });
  }
  void partition_at(sim::TimePoint when, const net::NodeId& node,
                    int group) {
    at(when, [this, node, group] { net.set_partition(node, group); });
  }
  void heal_at(sim::TimePoint when) {
    at(when, [this] { net.heal_partitions(); });
  }

  sim::EventLoop loop;
  net::Network net;
  orb::Orb server;
  orb::Orb client;
  core::QosTransport server_transport;
  core::QosTransport client_transport;
  core::ResourceManager resources;
  std::shared_ptr<FlakyState> flaky_state;
  core::ProviderRegistry providers;
  core::NegotiationService negotiation;
  core::Negotiator negotiator;
  core::AdaptationManager adaptation;
  std::shared_ptr<EchoImpl> plain_servant;
  orb::ObjRef plain_ref;
  std::shared_ptr<QosEchoImpl> qos_servant;
  orb::ObjRef qos_ref;
  std::shared_ptr<QosEchoImpl> stream_servant;
  orb::ObjRef stream_ref;
  /// Present once arm_scheduler() ran; declared last so it unregisters
  /// from the server's chain and event loop before they are destroyed.
  std::unique_ptr<sched::RequestScheduler> scheduler;
};

// ---- workload runner ----

struct WorkloadReport {
  int attempted = 0;
  int succeeded = 0;
  int failed = 0;
  sim::Duration max_latency = 0;
};

/// Runs `count` sequential blocking calls, `spacing` of virtual time
/// apart, tallying outcomes. Sequential (call, then advance) keeps the
/// event-loop nesting flat and the timeline readable.
template <typename Call>
WorkloadReport run_workload(sim::EventLoop& loop, int count,
                            sim::Duration spacing, Call&& call) {
  WorkloadReport report;
  for (int i = 0; i < count; ++i) {
    ++report.attempted;
    const sim::TimePoint start = loop.now();
    try {
      call(i);
      ++report.succeeded;
    } catch (const Error&) {
      ++report.failed;
    }
    const sim::Duration took = loop.now() - start;
    if (took > report.max_latency) report.max_latency = took;
    loop.run_for(spacing);
  }
  return report;
}

// ---- overload storm (scheduler shed path) ----

/// Per-class tally of an asynchronous request storm. `answered()` vs
/// `sent` is the zero-silent-drop check: the scheduler's overload
/// contract says every request is eventually answered — served, or
/// rejected with a classified maqs/OVERLOAD — never dropped.
struct StormReport {
  int sent = 0;
  int ok = 0;        ///< kOk replies
  int overload = 0;  ///< maqs/OVERLOAD rejections
  int other = 0;     ///< anything else (timeouts, unexpected faults)

  int answered() const { return ok + overload + other; }
};

/// Schedules `count` asynchronous echo requests against `object_key`,
/// `spacing` of virtual time apart starting at `start`, tallying reply
/// outcomes into `report` (which must outlive the run).
inline void schedule_storm(ChaosWorld& world, const std::string& object_key,
                           int count, sim::Duration spacing,
                           sim::TimePoint start, StormReport& report) {
  for (int i = 0; i < count; ++i) {
    world.at(start + i * spacing, [&world, &report, object_key, i] {
      orb::RequestMessage req;
      req.operation = "echo";
      req.object_key = object_key;
      cdr::Encoder enc;
      enc.write_string("s" + std::to_string(i));
      req.body = enc.take();
      ++report.sent;
      world.client.send_request(
          world.server.endpoint(), std::move(req),
          [&report](const orb::ReplyMessage& rep) {
            if (rep.status == orb::ReplyStatus::kOk) {
              ++report.ok;
            } else if (rep.exception.rfind(sched::kOverloadException, 0) ==
                       0) {
              ++report.overload;
            } else {
              ++report.other;
            }
          });
    });
  }
}

}  // namespace maqs::testing

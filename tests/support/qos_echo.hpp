// QoS-enabled Echo: the generated-style *QoS* server skeleton (Fig. 2
// shape — derives from the QoS skeleton base and implements the
// application dispatch), plus a stateful implementation exposing the
// state-access aspect used by replication.
#pragma once

#include "core/qos_skeleton.hpp"
#include "support/echo.hpp"

namespace maqs::testing {

/// What qidlc emits for `interface Echo` when QoS characteristics are
/// assigned: same operation unmarshaling as EchoSkeleton, woven through
/// QosServantBase::dispatch.
class QosEchoSkeleton : public core::QosServantBase {
 public:
  const std::string& repo_id() const override { return kEchoRepoId; }

  virtual std::string echo(const std::string& s) = 0;
  virtual std::int32_t add(std::int32_t a, std::int32_t b) = 0;
  virtual void set_value(std::int32_t v) = 0;
  virtual std::int32_t value() = 0;
  virtual util::Bytes blob(const util::Bytes& data) = 0;
  virtual void boom() = 0;

 protected:
  void dispatch_app(const std::string& operation, cdr::Decoder& args,
                    cdr::Encoder& out, orb::ServerContext& ctx) override {
    (void)ctx;
    if (operation == "echo") {
      const std::string s = args.read_string();
      args.expect_end();
      out.write_string(echo(s));
    } else if (operation == "add") {
      const std::int32_t a = args.read_i32();
      const std::int32_t b = args.read_i32();
      args.expect_end();
      out.write_i32(add(a, b));
    } else if (operation == "set_value") {
      const std::int32_t v = args.read_i32();
      args.expect_end();
      set_value(v);
    } else if (operation == "value") {
      args.expect_end();
      out.write_i32(value());
    } else if (operation == "blob") {
      const util::Bytes data = args.read_bytes();
      args.expect_end();
      out.write_bytes(blob(data));
    } else if (operation == "boom") {
      args.expect_end();
      boom();
    } else {
      throw orb::BadOperation("Echo: unknown operation " + operation);
    }
  }
};

/// Stateful QoS-enabled Echo with the state-access aspect: `value` is the
/// replicated state.
class QosEchoImpl : public QosEchoSkeleton, public core::StateAccess {
 public:
  std::string echo(const std::string& s) override {
    ++calls;
    return s;
  }
  std::int32_t add(std::int32_t a, std::int32_t b) override {
    ++calls;
    return a + b;
  }
  void set_value(std::int32_t v) override {
    ++calls;
    value_ = v;
  }
  std::int32_t value() override {
    ++calls;
    return value_;
  }
  util::Bytes blob(const util::Bytes& data) override {
    ++calls;
    return data;
  }
  void boom() override {
    ++calls;
    throw orb::UserException(kEchoFaultId, "boom requested");
  }

  // ---- state-access aspect (replication cross-cut) ----
  core::StateAccess* state_access() override { return this; }
  util::Bytes get_state() override {
    cdr::Encoder enc;
    enc.write_i32(value_);
    return enc.take();
  }
  void set_state(util::BytesView state) override {
    cdr::Decoder dec(state);
    value_ = dec.read_i32();
  }

  int calls = 0;

 private:
  std::int32_t value_ = 0;
};

}  // namespace maqs::testing

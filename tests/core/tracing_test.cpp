// End-to-end causal tracing: one woven compress+encrypt request must
// produce a single trace whose spans cover every interception layer, the
// Chrome-trace export must load (parse) and cover the same path, traces
// from a fixed sim seed must be byte-identical across runs, and peers
// without tracing must interoperate untouched.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>

#include "characteristics/compression.hpp"
#include "characteristics/encryption.hpp"
#include "core/mediator.hpp"
#include "core/monitoring.hpp"
#include "core/qos_transport.hpp"
#include "core/stats.hpp"
#include "net/network.hpp"
#include "support/qos_echo.hpp"
#include "trace/trace.hpp"

namespace maqs::core {
namespace {

using maqs::testing::EchoStub;
using maqs::testing::QosEchoImpl;

Agreement make_agreement(const std::string& characteristic,
                         std::map<std::string, cdr::Any> params) {
  Agreement agreement;
  agreement.id = 1;
  agreement.characteristic = characteristic;
  agreement.object_key = "echo";
  agreement.params = std::move(params);
  agreement.state = AgreementState::kActive;
  return agreement;
}

/// The bench_f4 woven scenario, shrunk for tests: compression + encryption
/// mediators on the stub, matching impls in the skeleton, QoS transports
/// on both ORBs, one shared recorder so client and server spans land in
/// the same ring. Everything is seeded deterministically (Network default
/// seed), so two instances replay identically.
struct WovenWorld {
  sim::EventLoop loop;
  net::Network network{loop};
  orb::Orb server{network, "server", 9000};
  orb::Orb client{network, "client", 9001};
  QosTransport server_transport{server};
  QosTransport client_transport{client};
  trace::TraceRecorder recorder{loop};
  std::shared_ptr<QosEchoImpl> servant = std::make_shared<QosEchoImpl>();
  std::shared_ptr<CompositeMediator> mediator =
      std::make_shared<CompositeMediator>();
  orb::ObjRef ref;

  WovenWorld() {
    recorder.set_enabled(true);
    server.set_trace_recorder(&recorder);
    client.set_trace_recorder(&recorder);

    servant->assign_characteristic(characteristics::compression_descriptor());
    servant->assign_characteristic(characteristics::encryption_descriptor());
    orb::QosProfile compression;
    compression.characteristic = characteristics::compression_name();
    orb::QosProfile encryption;
    encryption.characteristic = characteristics::encryption_name();
    ref = server.adapter().activate("echo", servant,
                                    {compression, encryption});

    const Agreement compress_agreement = make_agreement(
        characteristics::compression_name(),
        {{"algorithm", cdr::Any::from_string("lz77")},
         {"level", cdr::Any::from_long(32)},
         {"min_size", cdr::Any::from_long(64)}});
    const Agreement encrypt_agreement =
        make_agreement(characteristics::encryption_name(),
                       {{"psk", cdr::Any::from_string("test-psk")},
                        {"integrity", cdr::Any::from_bool(true)}});

    auto compress_mediator =
        std::make_shared<characteristics::CompressionMediator>();
    compress_mediator->bind_agreement(compress_agreement);
    mediator->add(compress_mediator);
    auto encrypt_mediator =
        std::make_shared<characteristics::EncryptionMediator>();
    encrypt_mediator->bind_agreement(encrypt_agreement);
    mediator->add(encrypt_mediator);

    auto compress_impl = std::make_shared<characteristics::CompressionImpl>();
    compress_impl->bind_agreement(compress_agreement);
    servant->install_impl(compress_impl);
    auto encrypt_impl = std::make_shared<characteristics::EncryptionImpl>();
    encrypt_impl->bind_agreement(encrypt_agreement);
    servant->install_impl(encrypt_impl);
  }

  EchoStub make_stub() {
    EchoStub stub(client, ref);
    stub.set_mediator(mediator);
    return stub;
  }
};

int count_name(const std::vector<trace::Span>& spans, const char* name) {
  return static_cast<int>(
      std::count_if(spans.begin(), spans.end(), [&](const trace::Span& s) {
        return std::string_view(s.name) == name;
      }));
}

TEST(TracingIntegrationTest, WovenRequestProducesSingleCompleteTrace) {
  WovenWorld world;
  EchoStub stub = world.make_stub();
  EXPECT_EQ(stub.add(1, 2), 3);

  const std::vector<trace::Span> spans = world.recorder.spans();
  ASSERT_FALSE(spans.empty());
  // Every span belongs to the one minted trace.
  const trace::TraceId trace_id = spans.front().trace_id;
  for (const trace::Span& s : spans) EXPECT_EQ(s.trace_id, trace_id);
  EXPECT_EQ(world.recorder.stats().traces_started, 1u);
  EXPECT_EQ(world.recorder.stats().traces_sampled, 1u);

  // The acceptance path: mediator weaving, transport dispatch, network
  // transit (request + reply), server prolog/epilog, adapter dispatch.
  EXPECT_EQ(count_name(spans, "client.request"), 1);
  EXPECT_EQ(count_name(spans, "mediator.outbound"), 2);
  EXPECT_EQ(count_name(spans, "mediator.inbound"), 2);
  EXPECT_EQ(count_name(spans, "transport.plain"), 1);
  EXPECT_EQ(count_name(spans, "net.transit"), 2);
  EXPECT_EQ(count_name(spans, "server.request"), 1);
  EXPECT_EQ(count_name(spans, "adapter.dispatch"), 1);
  EXPECT_EQ(count_name(spans, "skeleton.prolog"), 2);
  EXPECT_EQ(count_name(spans, "skeleton.transform_args"), 2);
  EXPECT_EQ(count_name(spans, "skeleton.app"), 1);
  EXPECT_EQ(count_name(spans, "skeleton.transform_result"), 2);
  EXPECT_EQ(count_name(spans, "skeleton.epilog"), 2);

  // Exactly one root: the client request. Everything else parents inside
  // the trace.
  int roots = 0;
  for (const trace::Span& s : spans) {
    if (s.parent_id == 0) {
      ++roots;
      EXPECT_STREQ(s.name, "client.request");
    }
  }
  EXPECT_EQ(roots, 1);

  // The mediator spans carry the characteristic as detail.
  bool saw_compression = false;
  for (const trace::Span& s : spans) {
    if (std::string_view(s.name) == "mediator.outbound" &&
        s.detail == characteristics::compression_name()) {
      saw_compression = true;
    }
  }
  EXPECT_TRUE(saw_compression);
}

// Minimal recursive-descent JSON reader: enough to prove the export is
// well-formed JSON (chrome://tracing loads it with exactly this grammar),
// not just a string that contains the right substrings.
class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  bool parse() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      pos_ += text_[pos_] == '\\' ? 2 : 1;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\r' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

TEST(TracingIntegrationTest, ChromeExportLoadsAndCoversTheWovenPath) {
  WovenWorld world;
  EchoStub stub = world.make_stub();
  stub.echo("traced");

  std::ostringstream os;
  world.recorder.export_chrome_trace(os);
  const std::string json = os.str();

  JsonReader reader(json);
  EXPECT_TRUE(reader.parse()) << json;

  for (const char* name :
       {"client.request", "mediator.outbound", "transport.plain",
        "net.transit", "server.request", "skeleton.prolog", "skeleton.app",
        "skeleton.epilog", "mediator.inbound"}) {
    EXPECT_NE(json.find(std::string("\"name\":\"") + name + "\""),
              std::string::npos)
        << "missing span " << name;
  }
  // The tree dump covers the same trace without throwing.
  std::ostringstream tree;
  world.recorder.dump_tree(tree);
  EXPECT_NE(tree.str().find("client.request(echo)"), std::string::npos);
}

TEST(TracingIntegrationTest, FixedSeedTracesAreByteIdenticalAcrossRuns) {
  auto run = [] {
    WovenWorld world;
    EchoStub stub = world.make_stub();
    stub.add(3, 4);
    stub.echo("determinism");
    std::ostringstream os;
    world.recorder.export_chrome_trace(os);
    world.recorder.dump_tree(os);
    return os.str();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(TracingIntegrationTest, PeerWithoutTracingIgnoresTheContextEntry) {
  WovenWorld world;
  // Server side opts out entirely: the "qos.trace" entry still crosses the
  // wire but nobody re-attaches it.
  world.server.set_trace_recorder(nullptr);
  EchoStub stub = world.make_stub();
  EXPECT_EQ(stub.add(5, 6), 11);

  const std::vector<trace::Span> spans = world.recorder.spans();
  EXPECT_GT(spans.size(), 0u);
  EXPECT_EQ(count_name(spans, "client.request"), 1);
  // No re-attach: the context entry crossed the wire and was ignored.
  EXPECT_EQ(count_name(spans, "server.request"), 0);
  // Single-process simulator caveat: the server's dispatch runs nested
  // inside the client's still-open scope (the blocking call pumps the
  // event loop), so its skeleton work is attributed to the client trace
  // even though the server ORB opted out. In a distributed deployment
  // each process has its own scope stack and these would be absent.
  EXPECT_EQ(count_name(spans, "skeleton.app"), 1);
}

TEST(TracingIntegrationTest, GarbageContextEntryIsToleratedServerSide) {
  sim::EventLoop loop;
  net::Network network(loop);
  orb::Orb server(network, "server", 9000);
  orb::Orb client(network, "client", 9001);
  trace::TraceRecorder recorder(loop);
  recorder.set_enabled(true);
  server.set_trace_recorder(&recorder);

  auto servant = std::make_shared<maqs::testing::EchoImpl>();
  orb::ObjRef ref = server.adapter().activate("echo", servant);

  // Hand-built request with a malformed trace entry: wrong size, junk
  // bytes. The server must decode-reject it and serve the call normally.
  orb::RequestMessage req;
  req.operation = "add";
  cdr::Encoder args;
  args.write_i32(20);
  args.write_i32(22);
  req.body = args.take();
  req.context.set(trace::kTraceContextKey, util::to_bytes("not-a-context"));

  orb::ReplyMessage rep = client.invoke(ref, std::move(req));
  EXPECT_EQ(rep.status, orb::ReplyStatus::kOk);
  cdr::Decoder result(rep.body);
  EXPECT_EQ(result.read_i32(), 42);
  EXPECT_EQ(recorder.span_count(), 0u);
}

TEST(TracingIntegrationTest, SamplingDecisionRidesTheWire) {
  WovenWorld world;
  world.recorder.set_sample_every(2);
  EchoStub stub = world.make_stub();
  stub.add(1, 1);  // trace 1: sampled in
  const std::size_t after_first = world.recorder.span_count();
  stub.add(2, 2);  // trace 2: sampled out everywhere, server included
  EXPECT_GT(after_first, 0u);
  EXPECT_EQ(world.recorder.span_count(), after_first);
  EXPECT_EQ(world.recorder.stats().traces_started, 2u);
  EXPECT_EQ(world.recorder.stats().traces_sampled, 1u);
}

TEST(TracingIntegrationTest, SpanDurationsFeedTheMonitor) {
  WovenWorld world;
  Monitor monitor;
  attach_recorder(monitor, world.recorder);
  EchoStub stub = world.make_stub();
  stub.echo("monitored");

  const MetricSeries* series = monitor.find_series("span.client.request");
  ASSERT_NE(series, nullptr);
  EXPECT_GE(series->count(), 1u);
  EXPECT_NE(monitor.find_series("span.skeleton.app"), nullptr);
}

TEST(TracingIntegrationTest, ThrownExceptionsCarryTheActiveTraceId) {
  WovenWorld world;
  EchoStub stub = world.make_stub();
  bool raised = false;
  try {
    stub.boom();
  } catch (const orb::UserException& e) {
    raised = true;
    // The exception was re-raised client-side inside the client.request
    // scope, so it is stamped with the live trace id.
    EXPECT_EQ(e.trace_id(), 1u);
  }
  EXPECT_TRUE(raised);
  // The server span carries the failure annotation.
  bool server_error = false;
  for (const trace::Span& s : world.recorder.spans()) {
    if (!s.error.empty()) server_error = true;
  }
  EXPECT_TRUE(server_error);

  // Outside any scope, errors stamp trace id 0 (no false attribution).
  EXPECT_EQ(QosError("untraced").trace_id(), 0u);
}

// Satellite of the pipeline refactor: retry wraps trace. Every wire
// attempt gets its own retry.attempt child span directly under the root
// client.request span, with the backoff points recorded between them —
// instead of one smeared span opened outside the retry loop.
TEST(TracingIntegrationTest, RetryAttemptsGetTheirOwnChildSpans) {
  sim::EventLoop loop;
  net::Network network{loop};
  orb::Orb server{network, "server", 9000};
  orb::Orb client{network, "client", 9001};
  trace::TraceRecorder recorder{loop};
  recorder.set_enabled(true);
  client.set_trace_recorder(&recorder);

  auto servant = std::make_shared<QosEchoImpl>();
  const orb::ObjRef ref = server.adapter().activate("echo", servant);

  struct GrantTwo final : orb::RetryAdvisor {
    std::optional<sim::Duration> on_attempt_failed(
        const net::Address&, const orb::RequestMessage&,
        const orb::ReplyMessage&, int attempt, sim::Duration) override {
      if (attempt >= 3) return std::nullopt;
      return sim::kMillisecond;
    }
  } advisor;
  client.set_retry_advisor(&advisor);
  // Crashed server: every attempt times out, so the advisor drives two
  // retries before the invocation surfaces the transport fault.
  network.crash("server");

  EchoStub stub(client, ref);
  EXPECT_THROW(stub.echo("x"), orb::TransportError);

  const std::vector<trace::Span> spans = recorder.spans();
  EXPECT_EQ(count_name(spans, "client.request"), 1);
  EXPECT_EQ(count_name(spans, "retry.attempt"), 3);
  EXPECT_EQ(count_name(spans, "retry.backoff"), 2);

  trace::SpanId root = 0;
  for (const trace::Span& s : spans) {
    if (std::string_view(s.name) == "client.request") root = s.span_id;
  }
  ASSERT_NE(root, 0u);
  int attempt_no = 1;
  for (const trace::Span& s : spans) {
    if (std::string_view(s.name) == "retry.attempt") {
      EXPECT_EQ(s.parent_id, root);
      EXPECT_EQ(s.detail, "attempt=" + std::to_string(attempt_no));
      ++attempt_no;
    }
  }
  EXPECT_EQ(attempt_no, 4);
  EXPECT_EQ(client.stats().requests_retried, 2u);
}

TEST(TracingIntegrationTest, SnapshotGathersAllFourLayers) {
  WovenWorld world;
  EchoStub stub = world.make_stub();
  stub.add(1, 2);

  const StatsSnapshot snap =
      collect_stats(world.client, &world.client_transport);
  EXPECT_TRUE(snap.has_transport);
  EXPECT_TRUE(snap.has_trace);
  EXPECT_EQ(snap.orb.requests_sent, 1u);
  EXPECT_EQ(snap.orb.qos_path, 1u);
  EXPECT_EQ(snap.transport.requests_fallback_plain, 1u);
  EXPECT_GE(snap.net.messages_delivered, 2u);
  EXPECT_EQ(snap.trace.traces_started, 1u);
  const std::string text = snap.to_string();
  EXPECT_NE(text.find("[qos-transport]"), std::string::npos);
  EXPECT_NE(text.find("traces_sampled = 1"), std::string::npos);
}

}  // namespace
}  // namespace maqs::core

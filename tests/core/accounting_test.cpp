#include "core/accounting.hpp"

#include <gtest/gtest.h>

namespace maqs::core {
namespace {

Agreement agreement_with_level(std::uint64_t id, std::int32_t level) {
  Agreement agreement;
  agreement.id = id;
  agreement.characteristic = "Compression";
  agreement.params = {{"level", cdr::Any::from_long(level)}};
  agreement.state = AgreementState::kActive;
  return agreement;
}

class AccountingTest : public ::testing::Test {
 protected:
  sim::EventLoop loop_;
  AccountingService accounting_{loop_};
};

TEST_F(AccountingTest, MetersRequestsAndBytes) {
  accounting_.open(agreement_with_level(1, 4));
  accounting_.charge(1, 1000);
  accounting_.charge(1, 500);
  const UsageRecord* usage = accounting_.usage(1);
  ASSERT_NE(usage, nullptr);
  EXPECT_EQ(usage->requests, 2u);
  EXPECT_EQ(usage->bytes, 1500u);
}

TEST_F(AccountingTest, RejectsUnknownAndClosedAccounts) {
  EXPECT_THROW(accounting_.charge(9, 1), QosError);
  EXPECT_THROW(accounting_.invoice(9, linear_tariff(1, 1)), QosError);
  accounting_.open(agreement_with_level(1, 4));
  accounting_.close(1);
  EXPECT_THROW(accounting_.charge(1, 1), QosError);
  EXPECT_EQ(accounting_.usage(9), nullptr);
  EXPECT_THROW(accounting_.open(Agreement{}), QosError);  // id 0
}

TEST_F(AccountingTest, ActiveTimeTracksVirtualClock) {
  accounting_.open(agreement_with_level(1, 4));
  loop_.run_for(2 * sim::kSecond);
  EXPECT_EQ(accounting_.usage(1)->active_for(loop_.now()), 2 * sim::kSecond);
  accounting_.close(1);
  loop_.run_for(3 * sim::kSecond);
  // Closed accounts stop accruing time.
  EXPECT_EQ(accounting_.usage(1)->active_for(loop_.now()), 2 * sim::kSecond);
}

TEST_F(AccountingTest, LinearTariffPricesLevelTimeAndVolume) {
  accounting_.open(agreement_with_level(1, 10));
  loop_.run_for(5 * sim::kSecond);
  accounting_.charge(1, 2 * 1024 * 1024);  // 2 MiB
  // 0.1 credits per level-second + 3 credits per MiB:
  // 0.1 * 10 * 5 + 3 * 2 = 5 + 6 = 11.
  EXPECT_NEAR(accounting_.invoice(1, linear_tariff(0.1, 3.0)), 11.0, 1e-9);
}

TEST_F(AccountingTest, TariffDefaultsLevelToOneWhenParamMissing) {
  Agreement agreement;
  agreement.id = 2;
  agreement.characteristic = "Actuality";  // no "level" param
  accounting_.open(agreement);
  loop_.run_for(4 * sim::kSecond);
  EXPECT_NEAR(accounting_.invoice(2, linear_tariff(1.0, 0.0)), 4.0, 1e-9);
}

TEST_F(AccountingTest, ReopenAfterRenegotiationKeepsUsage) {
  accounting_.open(agreement_with_level(1, 4));
  accounting_.charge(1, 100);
  accounting_.close(1);
  // Renegotiated to a new level: usage continues, level updates.
  accounting_.open(agreement_with_level(1, 8));
  accounting_.charge(1, 100);
  EXPECT_EQ(accounting_.usage(1)->bytes, 200u);
  EXPECT_EQ(accounting_.open_accounts(), 1u);
}

TEST_F(AccountingTest, OpenAccountsCount) {
  accounting_.open(agreement_with_level(1, 1));
  accounting_.open(agreement_with_level(2, 1));
  EXPECT_EQ(accounting_.open_accounts(), 2u);
  accounting_.close(1);
  EXPECT_EQ(accounting_.open_accounts(), 1u);
}

}  // namespace
}  // namespace maqs::core

// PercentileSketch vs exact order statistics on known distributions.
#include "core/percentile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace maqs::core {
namespace {

// Exact quantile with the sketch's own rank convention (1-based,
// ceil(q*n)), so comparisons isolate bucketing error only.
std::uint64_t exact_permille(std::vector<std::uint64_t> sorted,
                             std::uint32_t permille) {
  const std::uint64_t rank =
      (sorted.size() * permille + 999) / 1000;
  return sorted[static_cast<std::size_t>(rank == 0 ? 0 : rank - 1)];
}

TEST(PercentileSketch, EmptyAndSingleSample) {
  PercentileSketch sketch;
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_EQ(sketch.p50(), 0u);
  EXPECT_EQ(sketch.value_at_permille(999), 0u);

  sketch.record(42);
  EXPECT_EQ(sketch.count(), 1u);
  EXPECT_EQ(sketch.min(), 42u);
  EXPECT_EQ(sketch.max(), 42u);
  EXPECT_EQ(sketch.p50(), 42u);
  EXPECT_EQ(sketch.p999(), 42u);
}

TEST(PercentileSketch, SmallValuesAreExact) {
  // Everything below kExactLimit sits in unit-width buckets: quantiles of
  // 1..100 come back exactly (values above 64 span 2-wide buckets, but
  // their upper edges coincide with odd sample values; p99 of 1..100 is
  // 99 on the nose).
  PercentileSketch sketch;
  std::vector<std::uint64_t> values;
  for (std::uint64_t v = 1; v <= 100; ++v) {
    sketch.record(v);
    values.push_back(v);
  }
  EXPECT_EQ(sketch.min(), 1u);
  EXPECT_EQ(sketch.max(), 100u);
  EXPECT_EQ(sketch.p50(), exact_permille(values, 500));
  EXPECT_EQ(sketch.p99(), exact_permille(values, 990));
  // Rank 100 lands in the [100,101] bucket; the clamp keeps the report
  // inside the observed range.
  EXPECT_EQ(sketch.p999(), 100u);
}

TEST(PercentileSketch, RelativeErrorBoundOnUniformAndHeavyTail) {
  // Two deterministic streams: uniform over [1, 2^20] and an exponential
  // (mean 50k, the shape of simulated latencies). Every reported quantile
  // must sit within one bucket width — 1/32 relative — of the exact order
  // statistic, and must never understate it (upper-edge convention).
  util::Rng rng(20260808);
  std::vector<std::uint64_t> uniform;
  std::vector<std::uint64_t> heavy;
  PercentileSketch uniform_sketch;
  PercentileSketch heavy_sketch;
  for (int i = 0; i < 200'000; ++i) {
    const std::uint64_t u = 1 + rng.next_below(std::uint64_t{1} << 20);
    uniform.push_back(u);
    uniform_sketch.record(u);
    const std::uint64_t e =
        1 + static_cast<std::uint64_t>(rng.exponential(50'000.0));
    heavy.push_back(e);
    heavy_sketch.record(e);
  }
  std::sort(uniform.begin(), uniform.end());
  std::sort(heavy.begin(), heavy.end());
  for (std::uint32_t pm : {100u, 250u, 500u, 900u, 990u, 999u}) {
    SCOPED_TRACE(pm);
    const std::uint64_t u_exact = exact_permille(uniform, pm);
    const std::uint64_t u_got = uniform_sketch.value_at_permille(pm);
    EXPECT_GE(u_got, u_exact);
    EXPECT_LE(u_got, u_exact + u_exact / 32 + 1);
    const std::uint64_t h_exact = exact_permille(heavy, pm);
    const std::uint64_t h_got = heavy_sketch.value_at_permille(pm);
    EXPECT_GE(h_got, h_exact);
    EXPECT_LE(h_got, h_exact + h_exact / 32 + 1);
  }
  // Quantiles are monotone in q by construction.
  EXPECT_LE(heavy_sketch.p50(), heavy_sketch.p99());
  EXPECT_LE(heavy_sketch.p99(), heavy_sketch.p999());
  EXPECT_LE(heavy_sketch.p999(), heavy_sketch.max());
}

TEST(PercentileSketch, MergeIsOrderIndependentAndLossless) {
  // Shard the same stream four ways; merging the shards in any order must
  // reproduce the unsharded sketch's every answer (bucket adds commute).
  util::Rng rng(7);
  PercentileSketch whole;
  PercentileSketch shards[4];
  for (int i = 0; i < 50'000; ++i) {
    const std::uint64_t v = rng.next_below(std::uint64_t{1} << 30);
    whole.record(v);
    shards[i % 4].record(v);
  }
  PercentileSketch forward;
  for (const auto& shard : shards) forward.merge(shard);
  PercentileSketch backward;
  for (int s = 3; s >= 0; --s) backward.merge(shards[s]);

  EXPECT_EQ(forward.count(), whole.count());
  EXPECT_EQ(backward.count(), whole.count());
  EXPECT_EQ(forward.min(), whole.min());
  EXPECT_EQ(forward.max(), whole.max());
  for (std::uint32_t pm = 0; pm <= 1000; pm += 25) {
    ASSERT_EQ(forward.value_at_permille(pm), whole.value_at_permille(pm))
        << "permille " << pm;
    ASSERT_EQ(backward.value_at_permille(pm), whole.value_at_permille(pm))
        << "permille " << pm;
  }
}

TEST(PercentileSketch, HugeValuesDoNotOverflowIndexing) {
  PercentileSketch sketch;
  sketch.record(0);
  sketch.record(~std::uint64_t{0});
  sketch.record(std::uint64_t{1} << 63);
  EXPECT_EQ(sketch.count(), 3u);
  EXPECT_EQ(sketch.min(), 0u);
  EXPECT_EQ(sketch.max(), ~std::uint64_t{0});
  EXPECT_EQ(sketch.value_at_permille(1000), ~std::uint64_t{0});
  EXPECT_LE(sketch.p50(), ~std::uint64_t{0});
}

}  // namespace
}  // namespace maqs::core

// Unit coverage for the streaming transform pipeline primitives:
// TransformArena (slab reuse), ChainBuf (headroom bookkeeping and
// materialization modes) and TransformChain (stage ordering, computed
// headroom, reverse symmetry). The characteristic-level wire equivalence
// lives in tests/property/streaming_equivalence_test.cpp.
#include "core/transform.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>

#include "core/characteristic.hpp"
#include "util/buffer_pool.hpp"
#include "util/bytes.hpp"

namespace maqs::core {
namespace {

using util::Bytes;

// ---- TransformArena ----

TEST(TransformArena, RegionsAreDisjointWithinARun) {
  TransformArena arena;
  std::span<std::uint8_t> a = arena.allocate(100);
  std::span<std::uint8_t> b = arena.allocate(200);
  std::fill(a.begin(), a.end(), 0x11);
  std::fill(b.begin(), b.end(), 0x22);
  EXPECT_TRUE(std::all_of(a.begin(), a.end(),
                          [](std::uint8_t v) { return v == 0x11; }));
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(b.size(), 200u);
}

TEST(TransformArena, ResetRecyclesSlabStorage) {
  TransformArena arena;
  std::uint8_t* first = arena.allocate(512).data();
  arena.reset();
  // Same request after reset lands on the same slab byte.
  EXPECT_EQ(arena.allocate(512).data(), first);
}

TEST(TransformArena, OversizedRequestGetsOwnSlab) {
  TransformArena arena;
  const std::size_t big = 1 << 20;
  std::span<std::uint8_t> region = arena.allocate(big);
  EXPECT_EQ(region.size(), big);
  region[0] = 1;
  region[big - 1] = 2;
}

// ---- ChainBuf ----

TEST(ChainBuf, PrependConsumesHeadroomAndDropFrontUndoesIt) {
  TransformArena arena;
  ChainBuf buf(arena, 0);
  std::span<std::uint8_t> region = arena.allocate(16 + 4);
  std::memcpy(region.data() + 16, "body", 4);
  buf.adopt(region, 16, 4);
  EXPECT_EQ(buf.headroom(), 16u);
  EXPECT_EQ(buf.size(), 4u);

  std::uint8_t* hdr = buf.prepend(8);
  std::memcpy(hdr, "HEADER!!", 8);
  EXPECT_EQ(buf.headroom(), 8u);
  EXPECT_EQ(buf.size(), 12u);

  buf.drop_front(8);
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(std::memcmp(buf.view().data(), "body", 4), 0);
}

TEST(ChainBuf, PrependBeyondHeadroomThrows) {
  TransformArena arena;
  ChainBuf buf(arena, 0);
  std::span<std::uint8_t> region = arena.allocate(8);
  buf.adopt(region, 2, 6);
  EXPECT_THROW(buf.prepend(3), QosError);
  EXPECT_THROW(buf.drop_front(7), QosError);
}

TEST(ChainBuf, MaterializeTrimsBorrowedBodyInPlace) {
  TransformArena arena;
  Bytes body = {1, 2, 3, 4, 5, 6};
  ChainBuf buf(arena, 0);
  buf.borrow(body);
  buf.drop_front(2);
  buf.materialize_into(body);
  EXPECT_EQ(body, (Bytes{3, 4, 5, 6}));
}

TEST(ChainBuf, MaterializeCopiesArenaRegion) {
  TransformArena arena;
  Bytes body = {9, 9};
  ChainBuf buf(arena, 0);
  std::span<std::uint8_t> region = arena.allocate(3);
  region[0] = 7;
  region[1] = 8;
  region[2] = 9;
  buf.adopt(region, 0, 3);
  buf.materialize_into(body);
  EXPECT_EQ(body, (Bytes{7, 8, 9}));
}

TEST(ChainBuf, MaterializeSwapsStageOwnedBuffer) {
  TransformArena arena;
  Bytes stage_scratch = {1, 2, 3, 4};
  Bytes body = {0};
  ChainBuf buf(arena, 0);
  buf.adopt_bytes(stage_scratch);
  buf.drop_front(1);
  const std::uint8_t* storage = stage_scratch.data();
  buf.materialize_into(body);
  EXPECT_EQ(body, (Bytes{2, 3, 4}));
  // Swap, not copy: the body now owns the stage buffer's storage and the
  // stage inherited the caller's old allocation for its next run.
  EXPECT_EQ(body.data(), storage);
}

// ---- TransformChain ----

/// Prepends one marker byte; reverse checks and strips it. Verifies the
/// chain pre-reserved enough headroom that prepend never throws.
class MarkerStage final : public StreamingTransform {
 public:
  explicit MarkerStage(std::string label, std::uint8_t marker)
      : label_(std::move(label)), marker_(marker) {}

  const std::string& label() const override { return label_; }
  std::size_t forward_overhead() const noexcept override { return 1; }

  void forward(ChainBuf& buf, const TransformContext&) override {
    if (buf.headroom() < 1) {
      // First stage over a borrowed body: move into the arena with the
      // chain-computed downstream reserve, like the real stages do.
      const std::size_t reserve = buf.reserve_front();
      const std::size_t n = buf.size();
      std::span<std::uint8_t> region = buf.arena().allocate(reserve + 1 + n);
      std::memcpy(region.data() + reserve + 1, buf.view().data(), n);
      buf.adopt(region, reserve + 1, n);
    }
    *buf.prepend(1) = marker_;
  }

  void reverse(ChainBuf& buf, const TransformContext&) override {
    ASSERT_GE(buf.size(), 1u);
    EXPECT_EQ(buf.view()[0], marker_);
    buf.drop_front(1);
  }

 private:
  std::string label_;
  std::uint8_t marker_;
};

TEST(TransformChain, StagesRunForwardInOrderReverseInverted) {
  MarkerStage inner("inner", 'A');
  MarkerStage outer("outer", 'B');
  TransformChain chain;
  chain.add(&inner);
  chain.add(&outer);

  Bytes body = {0x10, 0x20};
  chain.run_forward(body, {1, false});
  // outer ran last, so its marker is outermost (front).
  EXPECT_EQ(body, (Bytes{'B', 'A', 0x10, 0x20}));

  chain.run_reverse(body, {1, false});
  EXPECT_EQ(body, (Bytes{0x10, 0x20}));
}

TEST(TransformChain, EmptyChainLeavesBodyUntouched) {
  TransformChain chain;
  Bytes body = {1, 2, 3};
  chain.run_forward(body, {1, false});
  chain.run_reverse(body, {1, false});
  EXPECT_EQ(body, (Bytes{1, 2, 3}));
}

TEST(TransformChain, AddingNullStageThrows) {
  TransformChain chain;
  EXPECT_THROW(chain.add(nullptr), QosError);
}

TEST(TransformChain, SteadyStateRunsDoNotGrowTheArena) {
  MarkerStage inner("inner", 'x');
  MarkerStage outer("outer", 'y');
  TransformChain chain;
  chain.add(&inner);
  chain.add(&outer);

  util::BufferPool::instance().clear();
  Bytes body(256);
  std::iota(body.begin(), body.end(), 0);
  const Bytes original = body;
  chain.run_forward(body, {1, false});
  chain.run_reverse(body, {1, false});
  ASSERT_EQ(body, original);

  // After the warm-up run the arena owns its slab; further runs must not
  // touch the pool again (reset() recycles in place).
  const std::uint64_t misses = util::BufferPool::instance().misses();
  for (int i = 0; i < 10; ++i) {
    chain.run_forward(body, {static_cast<std::uint64_t>(i), false});
    chain.run_reverse(body, {static_cast<std::uint64_t>(i), false});
    ASSERT_EQ(body, original);
  }
  EXPECT_EQ(util::BufferPool::instance().misses(), misses);
}

}  // namespace
}  // namespace maqs::core

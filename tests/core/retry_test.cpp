// Unit tests for fault classification and the retry governor: the
// provenance table, policy presets, attempt caps, backoff growth/clamping,
// and the deadline budget.
#include <gtest/gtest.h>

#include <string>

#include "core/retry.hpp"

namespace maqs::core {
namespace {

orb::ReplyMessage make_reply(orb::ReplyStatus status, std::string exception,
                             bool synthesized) {
  orb::ReplyMessage rep;
  rep.status = status;
  rep.exception = std::move(exception);
  rep.synthesized_locally = synthesized;
  return rep;
}

TEST(ClassifyFaultTest, ProvenanceTable) {
  using orb::ReplyStatus;
  // Non-system-exception statuses are not faults, whatever they carry.
  EXPECT_EQ(classify_fault(make_reply(ReplyStatus::kOk, "", false)),
            FaultKind::kNone);
  EXPECT_EQ(classify_fault(
                make_reply(ReplyStatus::kUserException, "IDL:X:1.0", false)),
            FaultKind::kNone);

  // Locally synthesized faults classify by exception id.
  EXPECT_EQ(classify_fault(make_reply(ReplyStatus::kSystemException,
                                      "maqs/TIMEOUT", true)),
            FaultKind::kLocalTimeout);
  EXPECT_EQ(classify_fault(make_reply(ReplyStatus::kSystemException,
                                      "maqs/CIRCUIT_OPEN", true)),
            FaultKind::kCircuitOpen);
  EXPECT_EQ(classify_fault(make_reply(ReplyStatus::kSystemException,
                                      "maqs/SOMETHING_ELSE", true)),
            FaultKind::kLocalFault);

  // The same exception id without local provenance is a remote fault —
  // the misclassification this PR fixes.
  EXPECT_EQ(classify_fault(make_reply(ReplyStatus::kSystemException,
                                      "maqs/TIMEOUT", false)),
            FaultKind::kRemoteException);
  EXPECT_EQ(classify_fault(
                make_reply(ReplyStatus::kSystemException, "anything", false)),
            FaultKind::kRemoteException);
}

TEST(RetryPolicyTest, IdempotentPresetRetriesLocalFaultsOnly) {
  const RetryPolicy policy = RetryPolicy::idempotent();
  EXPECT_TRUE(policy.should_retry(FaultKind::kLocalTimeout));
  EXPECT_TRUE(policy.should_retry(FaultKind::kCircuitOpen));
  EXPECT_TRUE(policy.should_retry(FaultKind::kLocalFault));
  EXPECT_FALSE(policy.should_retry(FaultKind::kRemoteException));
  EXPECT_FALSE(policy.should_retry(FaultKind::kNone));
}

TEST(RetryPolicyTest, AtMostOncePresetOnlyRetriesProvablyUnsent) {
  const RetryPolicy policy = RetryPolicy::at_most_once();
  // A timeout leaves server-side execution state unknown: not retried.
  EXPECT_FALSE(policy.should_retry(FaultKind::kLocalTimeout));
  // A breaker fast-fail provably never left the process: safe.
  EXPECT_TRUE(policy.should_retry(FaultKind::kCircuitOpen));
  EXPECT_FALSE(policy.should_retry(FaultKind::kRemoteException));
}

TEST(RetryGovernorTest, BaseBackoffGrowsAndClamps) {
  RetryPolicy policy;
  policy.initial_backoff = 2 * sim::kMillisecond;
  policy.multiplier = 2.0;
  policy.max_backoff = 10 * sim::kMillisecond;
  const RetryGovernor governor(policy, 7);
  EXPECT_EQ(governor.base_backoff(1), 2 * sim::kMillisecond);
  EXPECT_EQ(governor.base_backoff(2), 4 * sim::kMillisecond);
  EXPECT_EQ(governor.base_backoff(3), 8 * sim::kMillisecond);
  EXPECT_EQ(governor.base_backoff(4), 10 * sim::kMillisecond);  // clamped
  EXPECT_EQ(governor.base_backoff(50), 10 * sim::kMillisecond);
}

TEST(RetryGovernorTest, DeniesAtAttemptCap) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.jitter = 0.0;
  RetryGovernor governor(policy, 7);
  const orb::ReplyMessage timeout =
      make_reply(orb::ReplyStatus::kSystemException, "maqs/TIMEOUT", true);
  orb::RequestMessage req;
  EXPECT_TRUE(governor.on_attempt_failed({}, req, timeout, 1, 0).has_value());
  EXPECT_TRUE(governor.on_attempt_failed({}, req, timeout, 2, 0).has_value());
  EXPECT_FALSE(governor.on_attempt_failed({}, req, timeout, 3, 0).has_value());
  EXPECT_EQ(governor.retries_granted(), 2u);
  EXPECT_EQ(governor.retries_denied(), 1u);
}

TEST(RetryGovernorTest, DeniesNonRetriableClass) {
  RetryGovernor governor(RetryPolicy::idempotent(), 7);
  const orb::ReplyMessage remote =
      make_reply(orb::ReplyStatus::kSystemException, "server-side", false);
  orb::RequestMessage req;
  EXPECT_FALSE(governor.on_attempt_failed({}, req, remote, 1, 0).has_value());
  EXPECT_EQ(governor.retries_denied(), 1u);
  EXPECT_EQ(governor.retries_granted(), 0u);
}

TEST(RetryGovernorTest, DeniesWhenBackoffWouldExceedBudget) {
  RetryPolicy policy;
  policy.initial_backoff = 10 * sim::kMillisecond;
  policy.jitter = 0.0;
  policy.deadline_budget = 25 * sim::kMillisecond;
  RetryGovernor governor(policy, 7);
  const orb::ReplyMessage timeout =
      make_reply(orb::ReplyStatus::kSystemException, "maqs/TIMEOUT", true);
  orb::RequestMessage req;
  // elapsed 5ms + 10ms backoff = 15ms <= 25ms: granted.
  EXPECT_EQ(governor.on_attempt_failed({}, req, timeout, 1,
                                       5 * sim::kMillisecond),
            std::optional<sim::Duration>(10 * sim::kMillisecond));
  // elapsed 20ms + 20ms backoff = 40ms > 25ms: denied even though the
  // attempt cap is not reached.
  EXPECT_FALSE(governor
                   .on_attempt_failed({}, req, timeout, 2,
                                      20 * sim::kMillisecond)
                   .has_value());
  EXPECT_EQ(governor.retries_granted(), 1u);
  EXPECT_EQ(governor.retries_denied(), 1u);
}

TEST(RetryGovernorTest, JitterStaysWithinConfiguredBand) {
  RetryPolicy policy;
  policy.initial_backoff = 10 * sim::kMillisecond;
  policy.multiplier = 1.0;
  policy.jitter = 0.2;
  policy.max_attempts = 1000;
  RetryGovernor governor(policy, 1234);
  const orb::ReplyMessage timeout =
      make_reply(orb::ReplyStatus::kSystemException, "maqs/TIMEOUT", true);
  orb::RequestMessage req;
  for (int i = 1; i < 500; ++i) {
    const auto backoff = governor.on_attempt_failed({}, req, timeout, i, 0);
    ASSERT_TRUE(backoff.has_value());
    EXPECT_GE(*backoff, 8 * sim::kMillisecond);
    EXPECT_LE(*backoff, 12 * sim::kMillisecond);
  }
}

TEST(FaultKindNameTest, CoversEveryKind) {
  EXPECT_STREQ(fault_kind_name(FaultKind::kNone), "none");
  EXPECT_STREQ(fault_kind_name(FaultKind::kLocalTimeout), "local-timeout");
  EXPECT_STREQ(fault_kind_name(FaultKind::kCircuitOpen), "circuit-open");
  EXPECT_STREQ(fault_kind_name(FaultKind::kLocalFault), "local-fault");
  EXPECT_STREQ(fault_kind_name(FaultKind::kRemoteException),
               "remote-exception");
}

}  // namespace
}  // namespace maqs::core

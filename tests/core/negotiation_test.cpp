// Negotiation protocol end-to-end: accept, counter, reject, preferences,
// renegotiate, terminate — with the Compression provider as the mechanism.
#include <gtest/gtest.h>

#include "characteristics/compression.hpp"
#include "core/adaptation.hpp"
#include "core/negotiation.hpp"
#include "net/network.hpp"
#include "support/qos_echo.hpp"

namespace maqs::core {
namespace {

using characteristics::compression_name;
using characteristics::make_compression_provider;
using maqs::testing::EchoStub;
using maqs::testing::QosEchoImpl;

class NegotiationTest : public ::testing::Test {
 protected:
  NegotiationTest()
      : net_(loop_),
        server_(net_, "server", 9000),
        client_(net_, "client", 9001),
        server_transport_(server_),
        client_transport_(client_),
        negotiation_(server_transport_, providers(), resources_),
        negotiator_(client_transport_, providers()) {
    resources_.declare("cpu", 100.0);
    resources_.declare("bandwidth", 1000.0);
    servant_ = std::make_shared<QosEchoImpl>();
    servant_->assign_characteristic(
        characteristics::compression_descriptor());
    orb::QosProfile profile;
    profile.characteristic = compression_name();
    ref_ = server_.adapter().activate("echo-1", servant_, {profile});
  }

  static const ProviderRegistry& providers() {
    static const ProviderRegistry registry = [] {
      ProviderRegistry r;
      r.add(make_compression_provider());
      return r;
    }();
    return registry;
  }

  sim::EventLoop loop_;
  net::Network net_;
  orb::Orb server_;
  orb::Orb client_;
  QosTransport server_transport_;
  QosTransport client_transport_;
  ResourceManager resources_;
  NegotiationService negotiation_;
  Negotiator negotiator_;
  std::shared_ptr<QosEchoImpl> servant_;
  orb::ObjRef ref_;
};

TEST_F(NegotiationTest, SuccessfulNegotiationInstallsBothSides) {
  EchoStub stub(client_, ref_);
  Agreement agreement = negotiator_.negotiate(
      stub, compression_name(), {{"level", cdr::Any::from_long(16)}});
  EXPECT_GT(agreement.id, 0u);
  EXPECT_EQ(agreement.state, AgreementState::kActive);
  EXPECT_EQ(agreement.int_param("level"), 16);
  // The capability matrix pinned its most preferred point and the first
  // negotiation is agreement version 1.
  EXPECT_EQ(agreement.string_param("algorithm"), "lz77");
  EXPECT_EQ(agreement.version(), 1);
  ASSERT_NE(agreement.matrix.find_value("algorithm"), nullptr);
  EXPECT_EQ(agreement.matrix.find_value("algorithm")->as_string(), "lz77");

  // Client weaving installed.
  auto composite =
      std::dynamic_pointer_cast<CompositeMediator>(stub.mediator());
  ASSERT_NE(composite, nullptr);
  EXPECT_NE(composite->find(compression_name()), nullptr);
  // Server weaving installed.
  ASSERT_NE(servant_->active_impl(), nullptr);
  EXPECT_EQ(servant_->active_impl()->characteristic(), compression_name());
  EXPECT_EQ(servant_->active_impl()->agreement().id, agreement.id);
  // Resources reserved.
  EXPECT_EQ(resources_.reserved("cpu"), 16.0);

  // And traffic flows correctly through the woven path.
  EXPECT_EQ(stub.echo("compressed hello"), "compressed hello");
  EXPECT_EQ(stub.add(4, 5), 9);
}

TEST_F(NegotiationTest, QosOpsWorkAfterNegotiationOnly) {
  EchoStub stub(client_, ref_);
  orb::RequestMessage probe;
  probe.object_key = "echo-1";
  probe.operation = "qos_compression_ratio";
  EXPECT_EQ(client_.invoke_plain(ref_.endpoint, probe).status,
            orb::ReplyStatus::kNotNegotiated);
  negotiator_.negotiate(stub, compression_name(), {});
  orb::ReplyMessage rep = client_.invoke_plain(ref_.endpoint, probe);
  EXPECT_EQ(rep.status, orb::ReplyStatus::kOk);
}

TEST_F(NegotiationTest, UnknownCharacteristicRejected) {
  EchoStub stub(client_, ref_);
  EXPECT_THROW(negotiator_.negotiate(stub, "NoSuchQoS", {}),
               NegotiationFailed);
}

TEST_F(NegotiationTest, InvalidParamsRejected) {
  EchoStub stub(client_, ref_);
  EXPECT_THROW(
      negotiator_.negotiate(stub, compression_name(),
                            {{"level", cdr::Any::from_long(9999)}}),
      NegotiationFailed);
}

TEST_F(NegotiationTest, NonQosObjectRejected) {
  auto plain = std::make_shared<maqs::testing::EchoImpl>();
  orb::QosProfile profile;
  profile.characteristic = compression_name();
  orb::ObjRef plain_ref =
      server_.adapter().activate("plain-1", plain, {profile});
  EchoStub stub(client_, plain_ref);
  EXPECT_THROW(negotiator_.negotiate(stub, compression_name(), {}),
               NegotiationFailed);
  // Failed binding must not leak the reservation.
  EXPECT_EQ(resources_.reserved("cpu"), 0.0);
}

TEST_F(NegotiationTest, UnassignedCharacteristicRejected) {
  auto servant = std::make_shared<QosEchoImpl>();  // nothing assigned
  orb::ObjRef ref2 = server_.adapter().activate("echo-2", servant);
  EchoStub stub(client_, ref2);
  EXPECT_THROW(negotiator_.negotiate(stub, compression_name(), {}),
               NegotiationFailed);
}

TEST_F(NegotiationTest, CounterOfferAcceptedByDefault) {
  // Demand 80 + 80 cpu: the second negotiation cannot fit at lz77 and the
  // server counters one lattice step down (rle caps cpu at 8).
  EchoStub stub1(client_, ref_);
  negotiator_.negotiate(stub1, compression_name(),
                        {{"level", cdr::Any::from_long(80)}});
  auto servant2 = std::make_shared<QosEchoImpl>();
  servant2->assign_characteristic(characteristics::compression_descriptor());
  orb::QosProfile profile;
  profile.characteristic = compression_name();
  orb::ObjRef ref2 = server_.adapter().activate("echo-2", servant2, {profile});
  EchoStub stub2(client_, ref2);
  Agreement degraded = negotiator_.negotiate(
      stub2, compression_name(), {{"level", cdr::Any::from_long(80)}});
  EXPECT_EQ(degraded.string_param("algorithm"), "rle");
  EXPECT_EQ(degraded.int_param("level"), 80);
  EXPECT_EQ(resources_.reserved("cpu"), 88.0);
}

TEST_F(NegotiationTest, CounterOfferRefusedByPreferences) {
  EchoStub stub1(client_, ref_);
  negotiator_.negotiate(stub1, compression_name(),
                        {{"level", cdr::Any::from_long(80)}});
  auto servant2 = std::make_shared<QosEchoImpl>();
  servant2->assign_characteristic(characteristics::compression_descriptor());
  orb::QosProfile profile;
  profile.characteristic = compression_name();
  orb::ObjRef ref2 = server_.adapter().activate("echo-2", servant2, {profile});
  EchoStub stub2(client_, ref2);
  // The lattice counter keeps the level but degrades the algorithm; a
  // client that only accepts lz77 refuses it.
  ClientPreferences prefs;
  prefs.allowed["algorithm"] = {cdr::Any::from_string("lz77")};
  EXPECT_THROW(
      negotiator_.negotiate(stub2, compression_name(),
                            {{"level", cdr::Any::from_long(80)}}, &prefs),
      NegotiationFailed);
}

TEST_F(NegotiationTest, RejectWhenNothingFits) {
  resources_.declare("cpu", 0.5);  // below even level 1
  EchoStub stub(client_, ref_);
  EXPECT_THROW(negotiator_.negotiate(stub, compression_name(),
                                     {{"level", cdr::Any::from_long(4)}}),
               NegotiationFailed);
}

TEST_F(NegotiationTest, RenegotiateSwapsLevel) {
  EchoStub stub(client_, ref_);
  Agreement agreement = negotiator_.negotiate(
      stub, compression_name(), {{"level", cdr::Any::from_long(32)}});
  EXPECT_EQ(resources_.reserved("cpu"), 32.0);
  Agreement updated = negotiator_.renegotiate(
      stub, agreement, {{"level", cdr::Any::from_long(8)}});
  EXPECT_EQ(updated.id, agreement.id);
  EXPECT_EQ(updated.int_param("level"), 8);
  // An accepted renegotiation advances the agreement version by one.
  EXPECT_EQ(updated.version(), agreement.version() + 1);
  EXPECT_EQ(resources_.reserved("cpu"), 8.0);
  // Server-side impl rebound at the new level.
  EXPECT_EQ(servant_->active_impl()->agreement().int_param("level"), 8);
  // Traffic still flows.
  EXPECT_EQ(stub.echo("renegotiated"), "renegotiated");
}

TEST_F(NegotiationTest, RenegotiateUnknownAgreementFails) {
  EchoStub stub(client_, ref_);
  Agreement bogus;
  bogus.id = 4242;
  bogus.characteristic = compression_name();
  bogus.object_key = "echo-1";
  EXPECT_THROW(negotiator_.renegotiate(stub, bogus, {}), NegotiationFailed);
}

TEST_F(NegotiationTest, TerminateRemovesWeavingAndReservation) {
  EchoStub stub(client_, ref_);
  Agreement agreement = negotiator_.negotiate(
      stub, compression_name(), {{"level", cdr::Any::from_long(16)}});
  negotiator_.terminate(stub, agreement);
  EXPECT_EQ(resources_.reserved("cpu"), 0.0);
  EXPECT_EQ(servant_->active_impl(), nullptr);
  auto composite =
      std::dynamic_pointer_cast<CompositeMediator>(stub.mediator());
  ASSERT_NE(composite, nullptr);
  EXPECT_EQ(composite->find(compression_name()), nullptr);
  // Plain traffic unaffected afterwards.
  EXPECT_EQ(stub.echo("plain again"), "plain again");
  EXPECT_EQ(negotiation_.agreements().get(agreement.id).state,
            AgreementState::kTerminated);
}

TEST_F(NegotiationTest, ParamsCodecRoundTrip) {
  std::map<std::string, cdr::Any> params{
      {"a", cdr::Any::from_long(1)},
      {"b", cdr::Any::from_string("x")},
      {"c", cdr::Any::from_bool(true)}};
  EXPECT_EQ(decode_params(encode_params(params), 0), params);
  EXPECT_THROW(decode_params({cdr::Any::from_string("dangling")}, 0),
               QosError);
}

TEST_F(NegotiationTest, EachAgreementIndependent) {
  // Two clients, two agreements at different levels on different objects.
  auto servant2 = std::make_shared<QosEchoImpl>();
  servant2->assign_characteristic(characteristics::compression_descriptor());
  orb::QosProfile profile;
  profile.characteristic = compression_name();
  orb::ObjRef ref2 = server_.adapter().activate("echo-2", servant2, {profile});

  EchoStub stub1(client_, ref_);
  EchoStub stub2(client_, ref2);
  Agreement a1 = negotiator_.negotiate(stub1, compression_name(),
                                       {{"level", cdr::Any::from_long(4)}});
  Agreement a2 = negotiator_.negotiate(stub2, compression_name(),
                                       {{"level", cdr::Any::from_long(8)}});
  EXPECT_NE(a1.id, a2.id);
  EXPECT_EQ(negotiation_.agreements().active_count(), 2u);
  EXPECT_EQ(resources_.reserved("cpu"), 12.0);
}

}  // namespace
}  // namespace maqs::core

#include "core/resource.hpp"

#include <gtest/gtest.h>

namespace maqs::core {
namespace {

TEST(ResourceManager, DeclareAndQuery) {
  ResourceManager rm;
  rm.declare("cpu", 100.0);
  EXPECT_TRUE(rm.is_declared("cpu"));
  EXPECT_FALSE(rm.is_declared("gpu"));
  EXPECT_EQ(rm.capacity("cpu"), 100.0);
  EXPECT_EQ(rm.available("cpu"), 100.0);
  EXPECT_EQ(rm.reserved("cpu"), 0.0);
  EXPECT_THROW(rm.capacity("gpu"), QosError);
}

TEST(ResourceManager, ReserveAndRelease) {
  ResourceManager rm;
  rm.declare("cpu", 100.0);
  EXPECT_TRUE(rm.try_reserve({{"cpu", 60.0}}));
  EXPECT_EQ(rm.available("cpu"), 40.0);
  EXPECT_FALSE(rm.try_reserve({{"cpu", 50.0}}));
  EXPECT_EQ(rm.reserved("cpu"), 60.0);  // failed reserve changes nothing
  rm.release({{"cpu", 60.0}});
  EXPECT_EQ(rm.available("cpu"), 100.0);
}

TEST(ResourceManager, BundleReservationIsAtomic) {
  ResourceManager rm;
  rm.declare("cpu", 10.0);
  rm.declare("mem", 10.0);
  // mem does not fit -> neither resource must be touched.
  EXPECT_FALSE(rm.try_reserve({{"cpu", 5.0}, {"mem", 20.0}}));
  EXPECT_EQ(rm.reserved("cpu"), 0.0);
  EXPECT_EQ(rm.reserved("mem"), 0.0);
  EXPECT_TRUE(rm.try_reserve({{"cpu", 5.0}, {"mem", 5.0}}));
}

TEST(ResourceManager, UnknownResourceInDemandThrows) {
  ResourceManager rm;
  rm.declare("cpu", 10.0);
  EXPECT_THROW(rm.try_reserve({{"gpu", 1.0}}), QosError);
}

TEST(ResourceManager, ReleaseClampsAtZeroAndIgnoresUnknown) {
  ResourceManager rm;
  rm.declare("cpu", 10.0);
  rm.release({{"cpu", 5.0}, {"gpu", 5.0}});
  EXPECT_EQ(rm.reserved("cpu"), 0.0);
}

TEST(ResourceManager, OverReleaseIsCountedNotSilent) {
  ResourceManager rm;
  rm.declare("cpu", 10.0);
  rm.declare("mem", 10.0);
  EXPECT_EQ(rm.over_releases(), 0u);

  // Releasing more than is reserved still clamps (availability must not
  // exceed capacity) but each clamp is an upstream accounting bug and is
  // counted instead of passing silently.
  rm.try_reserve({{"cpu", 4.0}});
  rm.release({{"cpu", 6.0}});
  EXPECT_EQ(rm.reserved("cpu"), 0.0);
  EXPECT_EQ(rm.over_releases(), 1u);

  // A balanced release is not an over-release.
  rm.try_reserve({{"cpu", 4.0}});
  rm.release({{"cpu", 4.0}});
  EXPECT_EQ(rm.over_releases(), 1u);

  // Every clamped resource in a bundle counts.
  rm.try_reserve({{"cpu", 1.0}, {"mem", 1.0}});
  rm.release({{"cpu", 2.0}, {"mem", 2.0}});
  EXPECT_EQ(rm.over_releases(), 3u);
}

TEST(ResourceManager, CapacityChangeNotifiesListeners) {
  ResourceManager rm;
  rm.declare("cpu", 100.0);
  rm.try_reserve({{"cpu", 80.0}});
  std::vector<std::tuple<std::string, double, double>> events;
  rm.subscribe([&](const std::string& name, double cap, double reserved) {
    events.emplace_back(name, cap, reserved);
  });
  rm.set_capacity("cpu", 50.0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::get<0>(events[0]), "cpu");
  EXPECT_EQ(std::get<1>(events[0]), 50.0);
  EXPECT_EQ(std::get<2>(events[0]), 80.0);
}

TEST(ResourceManager, OverloadDetection) {
  ResourceManager rm;
  rm.declare("cpu", 100.0);
  rm.declare("mem", 100.0);
  rm.try_reserve({{"cpu", 80.0}});
  EXPECT_FALSE(rm.overloaded());
  rm.set_capacity("cpu", 50.0);
  EXPECT_TRUE(rm.overloaded());
  EXPECT_EQ(rm.overloaded_resources(),
            (std::vector<std::string>{"cpu"}));
}

}  // namespace
}  // namespace maqs::core

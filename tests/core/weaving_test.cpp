// Fig. 2 semantics: client mediator weaving, server QoS-skeleton weaving,
// delegate exchange, prolog/epilog bracketing, NotNegotiated raising.
#include <gtest/gtest.h>

#include "core/mediator.hpp"
#include "core/qos_skeleton.hpp"
#include "net/network.hpp"
#include "support/qos_echo.hpp"

namespace maqs::core {
namespace {

using maqs::testing::EchoStub;
using maqs::testing::QosEchoImpl;

CharacteristicDescriptor fake_characteristic(const std::string& name) {
  return CharacteristicDescriptor(
      name, QosCategory::kOther, {},
      {QosOpDesc{"qos_" + name + "_op", QosOpKind::kMechanism}});
}

/// Records the weaving order and tags payloads.
class TracingImpl : public QosImpl {
 public:
  explicit TracingImpl(const std::string& characteristic,
                       std::vector<std::string>& trace)
      : QosImpl(characteristic), trace_(trace) {}

  void prolog(orb::ServerContext&) override { trace_.push_back("prolog"); }
  void epilog(orb::ServerContext&) override { trace_.push_back("epilog"); }
  util::Bytes transform_args(util::Bytes args, orb::ServerContext&) override {
    trace_.push_back("args");
    return args;
  }
  util::Bytes transform_result(util::Bytes result,
                               orb::ServerContext&) override {
    trace_.push_back("result");
    return result;
  }
  void dispatch_qos_op(const std::string& op, cdr::Decoder& args,
                       cdr::Encoder& out, orb::ServerContext&) override {
    args.expect_end();
    trace_.push_back("qos:" + op);
    out.write_string("qos-result");
  }

 private:
  std::vector<std::string>& trace_;
};

class WeavingTest : public ::testing::Test {
 protected:
  WeavingTest()
      : net_(loop_),
        server_(net_, "server", 9000),
        client_(net_, "client", 9001) {
    impl_ = std::make_shared<QosEchoImpl>();
    impl_->assign_characteristic(fake_characteristic("FT"));
    impl_->assign_characteristic(fake_characteristic("LB"));
    ref_ = server_.adapter().activate("echo-1", impl_);
  }

  sim::EventLoop loop_;
  net::Network net_;
  orb::Orb server_;
  orb::Orb client_;
  std::shared_ptr<QosEchoImpl> impl_;
  orb::ObjRef ref_;
  std::vector<std::string> trace_;
};

TEST_F(WeavingTest, AppOperationsWorkWithoutNegotiation) {
  EchoStub stub(client_, ref_);
  EXPECT_EQ(stub.add(1, 2), 3);
}

TEST_F(WeavingTest, QosOpOnAssignedButNotNegotiatedRaisesNotNegotiated) {
  // Fig. 2: "only the operations of the actual negotiated QoS
  // characteristic are processed while others raise an exception".
  orb::RequestMessage req;
  req.object_key = "echo-1";
  req.operation = "qos_FT_op";
  orb::ReplyMessage rep = client_.invoke_plain(ref_.endpoint, std::move(req));
  EXPECT_EQ(rep.status, orb::ReplyStatus::kNotNegotiated);
}

TEST_F(WeavingTest, NegotiatedCharacteristicProcessesItsQosOps) {
  impl_->set_active_impl(std::make_shared<TracingImpl>("FT", trace_));
  orb::RequestMessage req;
  req.object_key = "echo-1";
  req.operation = "qos_FT_op";
  orb::ReplyMessage rep = client_.invoke_plain(ref_.endpoint, std::move(req));
  EXPECT_EQ(rep.status, orb::ReplyStatus::kOk);
  EXPECT_EQ(trace_, (std::vector<std::string>{"qos:qos_FT_op"}));
}

TEST_F(WeavingTest, OtherAssignedCharacteristicStillRaises) {
  impl_->set_active_impl(std::make_shared<TracingImpl>("FT", trace_));
  orb::RequestMessage req;
  req.object_key = "echo-1";
  req.operation = "qos_LB_op";  // assigned, but LB is not negotiated
  orb::ReplyMessage rep = client_.invoke_plain(ref_.endpoint, std::move(req));
  EXPECT_EQ(rep.status, orb::ReplyStatus::kNotNegotiated);
}

TEST_F(WeavingTest, PrologEpilogBracketEveryAppOperation) {
  impl_->set_active_impl(std::make_shared<TracingImpl>("FT", trace_));
  EchoStub stub(client_, ref_);
  stub.add(1, 2);
  EXPECT_EQ(trace_, (std::vector<std::string>{"prolog", "args", "result",
                                              "epilog"}));
  trace_.clear();
  stub.echo("x");
  EXPECT_EQ(trace_.size(), 4u);
}

TEST_F(WeavingTest, DelegateExchangeAtRuntime) {
  impl_->set_active_impl(std::make_shared<TracingImpl>("FT", trace_));
  EXPECT_EQ(impl_->active_impl()->characteristic(), "FT");
  // Exchange to LB at runtime (renegotiation of a different
  // characteristic).
  impl_->set_active_impl(std::make_shared<TracingImpl>("LB", trace_));
  EXPECT_EQ(impl_->active_impl()->characteristic(), "LB");
  orb::RequestMessage req;
  req.object_key = "echo-1";
  req.operation = "qos_LB_op";
  EXPECT_EQ(client_.invoke_plain(ref_.endpoint, std::move(req)).status,
            orb::ReplyStatus::kOk);
  orb::RequestMessage req2;
  req2.object_key = "echo-1";
  req2.operation = "qos_FT_op";
  EXPECT_EQ(client_.invoke_plain(ref_.endpoint, std::move(req2)).status,
            orb::ReplyStatus::kNotNegotiated);
}

TEST_F(WeavingTest, ClearingDelegateDisablesQosOps) {
  impl_->set_active_impl(std::make_shared<TracingImpl>("FT", trace_));
  impl_->set_active_impl(nullptr);
  orb::RequestMessage req;
  req.object_key = "echo-1";
  req.operation = "qos_FT_op";
  EXPECT_EQ(client_.invoke_plain(ref_.endpoint, std::move(req)).status,
            orb::ReplyStatus::kNotNegotiated);
}

TEST_F(WeavingTest, UnassignedCharacteristicImplRejected) {
  EXPECT_THROW(
      impl_->set_active_impl(std::make_shared<TracingImpl>("XX", trace_)),
      QosError);
}

TEST_F(WeavingTest, DuplicateAssignmentRejected) {
  EXPECT_THROW(impl_->assign_characteristic(fake_characteristic("FT")),
               QosError);
}

TEST_F(WeavingTest, ClashingQosOpNamesRejected) {
  auto other = std::make_shared<QosEchoImpl>();
  other->assign_characteristic(fake_characteristic("A"));
  // Second characteristic with the same op name.
  CharacteristicDescriptor clash(
      "B", QosCategory::kOther, {},
      {QosOpDesc{"qos_A_op", QosOpKind::kMechanism}});
  EXPECT_THROW(other->assign_characteristic(clash), QosError);
}

TEST_F(WeavingTest, AttachDetachLifecycle) {
  class LifecycleImpl : public QosImpl {
   public:
    LifecycleImpl() : QosImpl("FT") {}
    void attach(QosServerContext& ctx) override { attached = &ctx; }
    void detach() override { attached = nullptr; }
    QosServerContext* attached = nullptr;
  };
  auto lifecycle = std::make_shared<LifecycleImpl>();
  impl_->set_active_impl(lifecycle);
  ASSERT_NE(lifecycle->attached, nullptr);
  // The aspect-integration interface is reachable through the context.
  EXPECT_NE(lifecycle->attached->state_access(), nullptr);
  impl_->set_active_impl(nullptr);
  EXPECT_EQ(lifecycle->attached, nullptr);
}

TEST_F(WeavingTest, WovenServantAppliesSameRules) {
  auto plain = std::make_shared<maqs::testing::EchoImpl>();
  auto woven = std::make_shared<WovenServant>(plain);
  woven->assign_characteristic(fake_characteristic("FT"));
  orb::ObjRef ref = server_.adapter().activate("woven-1", woven);
  EchoStub stub(client_, ref);
  EXPECT_EQ(stub.add(2, 3), 5);
  orb::RequestMessage req;
  req.object_key = "woven-1";
  req.operation = "qos_FT_op";
  EXPECT_EQ(client_.invoke_plain(ref.endpoint, std::move(req)).status,
            orb::ReplyStatus::kNotNegotiated);
  // EchoImpl has no state access.
  EXPECT_EQ(woven->state_access(), nullptr);
}

TEST_F(WeavingTest, WovenServantRejectsNull) {
  EXPECT_THROW(WovenServant(nullptr), QosError);
}

// ---- client-side mediator weaving ----

class TaggingMediator : public Mediator {
 public:
  TaggingMediator(std::string name, std::vector<std::string>& trace)
      : Mediator(std::move(name)), trace_(trace) {}

  void outbound(orb::RequestMessage& req, orb::ObjRef&) override {
    trace_.push_back("out:" + characteristic());
    req.body.push_back(0xFF);  // visible payload change
  }
  void inbound(const orb::RequestMessage&, orb::ReplyMessage&) override {
    trace_.push_back("in:" + characteristic());
  }

 private:
  std::vector<std::string>& trace_;
};

TEST_F(WeavingTest, MediatorInterceptsEveryCall) {
  // Use a plain echo (no QoS skeleton) and a mediator that appends one
  // byte: the server must see the modified stream (here: trailing garbage
  // is rejected by the skeleton, proving interception happened).
  EchoStub stub(client_, ref_);
  auto composite = std::make_shared<CompositeMediator>();
  composite->add(std::make_shared<TaggingMediator>("T", trace_));
  stub.set_mediator(composite);
  EXPECT_THROW(stub.add(1, 2), orb::SystemException);  // trailing byte
  EXPECT_EQ(trace_, (std::vector<std::string>{"out:T", "in:T"}));
}

TEST_F(WeavingTest, CompositeMediatorOrdering) {
  CompositeMediator composite;
  composite.add(std::make_shared<TaggingMediator>("A", trace_));
  composite.add(std::make_shared<TaggingMediator>("B", trace_));
  orb::RequestMessage req;
  orb::ObjRef target;
  composite.outbound(req, target);
  orb::ReplyMessage rep;
  composite.inbound(req, rep);
  // Outbound in order, inbound reversed.
  EXPECT_EQ(trace_, (std::vector<std::string>{"out:A", "out:B", "in:B",
                                              "in:A"}));
}

TEST_F(WeavingTest, CompositeMediatorManagement) {
  CompositeMediator composite;
  composite.add(std::make_shared<TaggingMediator>("A", trace_));
  EXPECT_THROW(composite.add(std::make_shared<TaggingMediator>("A", trace_)),
               QosError);
  EXPECT_NE(composite.find("A"), nullptr);
  EXPECT_EQ(composite.find("B"), nullptr);
  EXPECT_TRUE(composite.remove("A"));
  EXPECT_FALSE(composite.remove("A"));
  EXPECT_EQ(composite.size(), 0u);
  EXPECT_THROW(composite.add(nullptr), QosError);
}

TEST_F(WeavingTest, MediatorDefaultQosOperationRejects) {
  TaggingMediator mediator("X", trace_);
  EXPECT_THROW(mediator.qos_operation("qos_anything", {}), QosError);
}

}  // namespace
}  // namespace maqs::core

#include "core/binding.hpp"

#include <gtest/gtest.h>

namespace maqs::core {
namespace {

class BindingTest : public ::testing::Test {
 protected:
  BindingTest() : service_(catalog_) {
    catalog_.add(CharacteristicDescriptor("Compression",
                                          QosCategory::kBandwidth, {}, {}));
    catalog_.add(CharacteristicDescriptor(
        "Encryption", QosCategory::kPrivacy, {}, {}));
    catalog_.add(CharacteristicDescriptor(
        "Replication", QosCategory::kFaultTolerance, {}, {}));
  }

  CharacteristicCatalog catalog_;
  BindingService service_;
};

TEST_F(BindingTest, InterfaceLevelBindingAllowed) {
  service_.bind("IDL:demo/Hello:1.0", "Compression");
  EXPECT_TRUE(service_.is_bound("IDL:demo/Hello:1.0", "Compression"));
  EXPECT_EQ(service_.bindings("IDL:demo/Hello:1.0"),
            (std::vector<std::string>{"Compression"}));
}

TEST_F(BindingTest, OperationLevelForbidden) {
  // Paper §3.2: assignment to operations or parameters is forbidden.
  EXPECT_THROW(service_.bind("IDL:demo/Hello:1.0", "Compression",
                             BindingGranularity::kOperation),
               QosError);
}

TEST_F(BindingTest, ParameterLevelForbidden) {
  EXPECT_THROW(service_.bind("IDL:demo/Hello:1.0", "Compression",
                             BindingGranularity::kParameter),
               QosError);
}

TEST_F(BindingTest, UnknownCharacteristicRejected) {
  EXPECT_THROW(service_.bind("IDL:demo/Hello:1.0", "Nope"), QosError);
}

TEST_F(BindingTest, DuplicateBindingRejected) {
  service_.bind("IDL:demo/Hello:1.0", "Compression");
  EXPECT_THROW(service_.bind("IDL:demo/Hello:1.0", "Compression"), QosError);
}

TEST_F(BindingTest, MultipleCompatibleCharacteristics) {
  service_.bind("IDL:demo/Hello:1.0", "Compression");
  service_.bind("IDL:demo/Hello:1.0", "Encryption");
  EXPECT_EQ(service_.bindings("IDL:demo/Hello:1.0").size(), 2u);
}

TEST_F(BindingTest, ConflictsBlockCoBinding) {
  service_.declare_conflict("Replication", "Encryption");
  EXPECT_TRUE(service_.conflicts("Encryption", "Replication"));  // symmetric
  service_.bind("IDL:demo/Hello:1.0", "Replication");
  EXPECT_THROW(service_.bind("IDL:demo/Hello:1.0", "Encryption"), QosError);
  // On another interface, Encryption alone is fine.
  service_.bind("IDL:demo/Other:1.0", "Encryption");
}

TEST_F(BindingTest, UnbindAllowsRebinding) {
  service_.bind("IDL:demo/Hello:1.0", "Compression");
  service_.unbind("IDL:demo/Hello:1.0", "Compression");
  EXPECT_FALSE(service_.is_bound("IDL:demo/Hello:1.0", "Compression"));
  service_.bind("IDL:demo/Hello:1.0", "Compression");
  // Unbinding unknown things is harmless.
  service_.unbind("IDL:none", "Compression");
}

TEST_F(BindingTest, GranularityNames) {
  EXPECT_STREQ(binding_granularity_name(BindingGranularity::kInterface),
               "interface");
  EXPECT_STREQ(binding_granularity_name(BindingGranularity::kOperation),
               "operation");
  EXPECT_STREQ(binding_granularity_name(BindingGranularity::kParameter),
               "parameter");
}

}  // namespace
}  // namespace maqs::core

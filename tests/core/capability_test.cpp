// CapabilityMatrix unit suite: the preference-lattice operations every
// negotiation and adaptation path leans on, plus the shared offer-review
// helper behind handle_negotiate/handle_renegotiate.
#include <gtest/gtest.h>

#include "core/capability.hpp"
#include "core/negotiation.hpp"
#include "core/provider.hpp"
#include "core/resource.hpp"

namespace maqs::core {
namespace {

cdr::Any S(const char* s) { return cdr::Any::from_string(s); }
cdr::Any L(std::int32_t v) { return cdr::Any::from_long(v); }
cdr::Any B(bool v) { return cdr::Any::from_bool(v); }

/// Three dimensions with distinct degradation priorities: the algorithm
/// drops first, the key size second, integrity last.
CapabilityMatrix make_matrix() {
  return CapabilityMatrix({
      DimensionDesc{"algorithm", {S("lz77"), S("rle"), S("none")}, 0},
      DimensionDesc{"key_bits", {L(128), L(64)}, 1},
      DimensionDesc{"integrity", {B(true), B(false)}, 2},
  });
}

TEST(CapabilityMatrixTest, ConstructionChoosesMostPreferredPoint) {
  const CapabilityMatrix matrix = make_matrix();
  EXPECT_FALSE(matrix.empty());
  EXPECT_EQ(matrix.version(), 0);
  EXPECT_EQ(matrix.rank_distance(), 0u);
  EXPECT_FALSE(matrix.at_floor());
  ASSERT_NE(matrix.find_value("algorithm"), nullptr);
  EXPECT_EQ(matrix.find_value("algorithm")->as_string(), "lz77");
  EXPECT_EQ(matrix.find_value("key_bits")->as_integer(), 128);
  EXPECT_TRUE(matrix.find_value("integrity")->as_bool());
  EXPECT_EQ(matrix.find_value("no-such-dimension"), nullptr);
  EXPECT_EQ(matrix.find_dimension("missing"), CapabilityMatrix::npos);
}

TEST(CapabilityMatrixTest, ChoosePinsRankedValuesOnly) {
  CapabilityMatrix matrix = make_matrix();
  EXPECT_TRUE(matrix.choose("algorithm", S("rle")));
  EXPECT_EQ(matrix.find_value("algorithm")->as_string(), "rle");
  EXPECT_EQ(matrix.rank_distance(), 1u);
  // Neither unknown values nor unknown dimensions are choosable.
  EXPECT_FALSE(matrix.choose("algorithm", S("zip")));
  EXPECT_FALSE(matrix.choose("cipher", S("rle")));
  EXPECT_EQ(matrix.find_value("algorithm")->as_string(), "rle");
}

TEST(CapabilityMatrixTest, RestrictToCutsPrefixButKeepsDegradationRoom) {
  CapabilityMatrix matrix = make_matrix();
  ASSERT_TRUE(matrix.restrict_to("algorithm", S("rle")));
  // The more-preferred prefix (lz77) is gone; rle is now the top...
  const std::size_t i = matrix.find_dimension("algorithm");
  ASSERT_NE(i, CapabilityMatrix::npos);
  ASSERT_EQ(matrix.dimensions()[i].ranked.size(), 2u);
  EXPECT_EQ(matrix.find_value("algorithm")->as_string(), "rle");
  EXPECT_EQ(matrix.rank_distance(), 0u);
  // ...and degradation below the restricted point still works.
  EXPECT_TRUE(matrix.degrade_dimension(i));
  EXPECT_EQ(matrix.find_value("algorithm")->as_string(), "none");
  EXPECT_FALSE(matrix.degrade_dimension(i));
}

TEST(CapabilityMatrixTest, DegradeStepWalksDimensionsByDegradeRank) {
  CapabilityMatrix matrix = make_matrix();
  // The algorithm (rank 0) floors first, then key_bits, then integrity.
  EXPECT_EQ(matrix.degrade_step(), "algorithm");  // lz77 -> rle
  EXPECT_EQ(matrix.degrade_step(), "algorithm");  // rle -> none
  EXPECT_EQ(matrix.degrade_step(), "key_bits");   // 128 -> 64
  EXPECT_EQ(matrix.degrade_step(), "integrity");  // true -> false
  EXPECT_TRUE(matrix.at_floor());
  EXPECT_EQ(matrix.degrade_step(), std::nullopt);
  EXPECT_EQ(matrix.rank_distance(), 4u);
}

TEST(CapabilityMatrixTest, ChosenParamsFlattenTheCurrentPoint) {
  CapabilityMatrix matrix = make_matrix();
  ASSERT_TRUE(matrix.choose("key_bits", L(64)));
  const std::map<std::string, cdr::Any> params = matrix.chosen_params();
  ASSERT_EQ(params.size(), 3u);
  EXPECT_EQ(params.at("algorithm").as_string(), "lz77");
  EXPECT_EQ(params.at("key_bits").as_integer(), 64);
  EXPECT_TRUE(params.at("integrity").as_bool());
}

TEST(CapabilityMatrixTest, SamePointComparesChosenValuesNotVersions) {
  CapabilityMatrix a = make_matrix();
  CapabilityMatrix b = make_matrix();
  b.set_version(5);
  EXPECT_TRUE(a.same_point(b));
  ASSERT_TRUE(b.choose("algorithm", S("none")));
  EXPECT_FALSE(a.same_point(b));
}

TEST(CapabilityMatrixTest, WireRoundTripPreservesLatticePointAndVersion) {
  CapabilityMatrix matrix = make_matrix();
  ASSERT_TRUE(matrix.choose("algorithm", S("rle")));
  matrix.set_version(7);

  const CapabilityMatrix decoded = CapabilityMatrix::from_any(matrix.to_any());
  EXPECT_EQ(decoded.version(), 7);
  ASSERT_EQ(decoded.dimensions().size(), 3u);
  EXPECT_TRUE(decoded.same_point(matrix));
  EXPECT_EQ(decoded.find_value("algorithm")->as_string(), "rle");
  // The lattice itself survives, not just the point: degradation order
  // and remaining room are intact on the decoded side.
  CapabilityMatrix walk = decoded;
  EXPECT_EQ(walk.degrade_step(), "algorithm");
  EXPECT_EQ(walk.find_value("algorithm")->as_string(), "none");
}

// ---- review_offer: the shared validation/admission helper ----

/// One dimension whose three points demand 50/20/5 bandwidth, plus a
/// scalar level param feeding the cpu demand.
CharacteristicProvider make_provider() {
  CharacteristicProvider provider;
  provider.descriptor = CharacteristicDescriptor(
      "test.capability", QosCategory::kBandwidth,
      {ParamDesc{"level", cdr::TypeCode::long_tc(), L(8), 1, 64}},
      {DimensionDesc{"algorithm", {S("heavy"), S("light"), S("off")}, 0}},
      {});
  provider.resource_demand =
      [](const std::map<std::string, cdr::Any>& params) {
        ResourceDemand demand;
        const std::string algorithm = params.at("algorithm").as_string();
        demand["bandwidth"] =
            algorithm == "heavy" ? 50.0 : algorithm == "light" ? 20.0 : 5.0;
        demand["cpu"] = static_cast<double>(params.at("level").as_integer());
        return demand;
      };
  return provider;
}

TEST(ReviewOfferTest, AcceptsAtOfferedPointAndKeepsDemandReserved) {
  const CharacteristicProvider provider = make_provider();
  ResourceManager resources;
  resources.declare("cpu", 100.0);
  resources.declare("bandwidth", 100.0);

  const OfferReview review =
      review_offer(provider, resources, nullptr,
                   provider.descriptor.default_matrix(), {});
  EXPECT_EQ(review.kind, AdmissionDecision::Kind::kAccept);
  EXPECT_TRUE(review.reserved);
  EXPECT_EQ(review.flattened.at("algorithm").as_string(), "heavy");
  EXPECT_EQ(review.flattened.at("level").as_integer(), 8);  // default filled
  EXPECT_DOUBLE_EQ(review.demand.at("bandwidth"), 50.0);
  // An accept leaves the demand reserved for the drafted agreement.
  EXPECT_DOUBLE_EQ(resources.reserved("bandwidth"), 50.0);
  EXPECT_DOUBLE_EQ(resources.reserved("cpu"), 8.0);
}

TEST(ReviewOfferTest, CountersAtBestFeasiblePointWithoutHoldingResources) {
  const CharacteristicProvider provider = make_provider();
  ResourceManager resources;
  resources.declare("cpu", 100.0);
  resources.declare("bandwidth", 30.0);  // heavy (50) cannot fit

  const OfferReview review =
      review_offer(provider, resources, nullptr,
                   provider.descriptor.default_matrix(), {});
  EXPECT_EQ(review.kind, AdmissionDecision::Kind::kCounter);
  EXPECT_FALSE(review.reserved);
  // Best feasible point in the offered lattice, one step down.
  EXPECT_EQ(review.matrix.find_value("algorithm")->as_string(), "light");
  EXPECT_EQ(review.flattened.at("algorithm").as_string(), "light");
  // Counters hold nothing until the client confirms.
  EXPECT_DOUBLE_EQ(resources.reserved("bandwidth"), 0.0);
  EXPECT_DOUBLE_EQ(resources.reserved("cpu"), 0.0);
}

TEST(ReviewOfferTest, RejectsDemandNamingUndeclaredResources) {
  const CharacteristicProvider provider = make_provider();
  ResourceManager resources;
  resources.declare("cpu", 100.0);  // no bandwidth budget declared

  const OfferReview review =
      review_offer(provider, resources, nullptr,
                   provider.descriptor.default_matrix(), {});
  EXPECT_EQ(review.kind, AdmissionDecision::Kind::kReject);
  EXPECT_NE(review.reason.find("undeclared resource"), std::string::npos);
  EXPECT_FALSE(review.reserved);
}

TEST(ReviewOfferTest, AdmissionPolicyShortCircuitsTheLatticeWalk) {
  const CharacteristicProvider provider = make_provider();
  ResourceManager resources;
  resources.declare("cpu", 100.0);
  resources.declare("bandwidth", 100.0);

  // A rejecting policy wins even though resources would fit the offer.
  AdmissionPolicy reject = [](const CharacteristicProvider&,
                              const std::map<std::string, cdr::Any>&,
                              ResourceManager&) {
    AdmissionDecision decision;
    decision.kind = AdmissionDecision::Kind::kReject;
    decision.reason = "policy says no";
    return decision;
  };
  const OfferReview rejected =
      review_offer(provider, resources, reject,
                   provider.descriptor.default_matrix(), {});
  EXPECT_EQ(rejected.kind, AdmissionDecision::Kind::kReject);
  EXPECT_EQ(rejected.reason, "policy says no");
  EXPECT_DOUBLE_EQ(resources.reserved("bandwidth"), 0.0);

  // A countering policy steers dimension values through counter_params.
  AdmissionPolicy counter = [](const CharacteristicProvider&,
                               const std::map<std::string, cdr::Any>&,
                               ResourceManager&) {
    AdmissionDecision decision;
    decision.kind = AdmissionDecision::Kind::kCounter;
    decision.counter_params = {{"algorithm", S("off")}};
    return decision;
  };
  const OfferReview countered =
      review_offer(provider, resources, counter,
                   provider.descriptor.default_matrix(), {});
  EXPECT_EQ(countered.kind, AdmissionDecision::Kind::kCounter);
  EXPECT_EQ(countered.matrix.find_value("algorithm")->as_string(), "off");
  EXPECT_EQ(countered.flattened.at("algorithm").as_string(), "off");
}

}  // namespace
}  // namespace maqs::core

#include "core/monitoring.hpp"

#include <gtest/gtest.h>

#include "core/characteristic.hpp"

namespace maqs::core {
namespace {

TEST(MetricSeries, Statistics) {
  MetricSeries series;
  for (double v : {4.0, 1.0, 3.0, 2.0}) series.record(0, v);
  EXPECT_EQ(series.count(), 4u);
  EXPECT_EQ(series.last(), 2.0);
  EXPECT_EQ(series.min(), 1.0);
  EXPECT_EQ(series.max(), 4.0);
  EXPECT_EQ(series.mean(), 2.5);
}

TEST(MetricSeries, Percentiles) {
  MetricSeries series;
  for (int i = 1; i <= 100; ++i) series.record(0, i);
  EXPECT_EQ(series.percentile(0.5), 50.0);
  EXPECT_EQ(series.percentile(0.99), 99.0);
  EXPECT_EQ(series.percentile(1.0), 100.0);
  EXPECT_EQ(series.percentile(0.0), 1.0);
}

TEST(MetricSeries, EmptyThrows) {
  MetricSeries series;
  EXPECT_TRUE(series.empty());
  EXPECT_THROW(series.last(), QosError);
  EXPECT_THROW(series.mean(), QosError);
  EXPECT_THROW(series.percentile(0.5), QosError);
}

TEST(MetricSeries, BoundedWindow) {
  MetricSeries series(10);
  for (int i = 0; i < 100; ++i) series.record(i, i);
  EXPECT_EQ(series.count(), 10u);
  EXPECT_EQ(series.min(), 90.0);  // only the newest 10 retained
}

TEST(Monitor, ThresholdMaxViolation) {
  Monitor monitor;
  monitor.set_threshold("lat", {.min = {}, .max = 100.0});
  std::vector<Violation> seen;
  monitor.subscribe([&](const Violation& v) { seen.push_back(v); });
  monitor.record("lat", 1, 50.0);
  monitor.record("lat", 2, 150.0);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].metric, "lat");
  EXPECT_EQ(seen[0].value, 150.0);
  EXPECT_EQ(seen[0].at, 2);
  EXPECT_EQ(monitor.violations_fired(), 1u);
}

TEST(Monitor, ThresholdMinViolation) {
  Monitor monitor;
  monitor.set_threshold("throughput", {.min = 10.0, .max = {}});
  int fired = 0;
  monitor.subscribe([&](const Violation&) { ++fired; });
  monitor.record("throughput", 1, 20.0);
  monitor.record("throughput", 2, 5.0);
  EXPECT_EQ(fired, 1);
}

TEST(Monitor, DebounceRequiresConsecutiveViolations) {
  Monitor monitor;
  monitor.set_debounce(3);
  monitor.set_threshold("lat", {.min = {}, .max = 10.0});
  int fired = 0;
  monitor.subscribe([&](const Violation& v) {
    ++fired;
    EXPECT_GE(v.consecutive, 3);
  });
  monitor.record("lat", 1, 20.0);
  monitor.record("lat", 2, 20.0);
  EXPECT_EQ(fired, 0);
  monitor.record("lat", 3, 5.0);  // streak broken
  monitor.record("lat", 4, 20.0);
  monitor.record("lat", 5, 20.0);
  monitor.record("lat", 6, 20.0);
  EXPECT_EQ(fired, 1);
}

TEST(Monitor, MetricsWithoutThresholdNeverFire) {
  Monitor monitor;
  int fired = 0;
  monitor.subscribe([&](const Violation&) { ++fired; });
  monitor.record("anything", 1, 1e9);
  EXPECT_EQ(fired, 0);
  EXPECT_NE(monitor.find_series("anything"), nullptr);
  EXPECT_EQ(monitor.find_series("other"), nullptr);
}

TEST(Monitor, ClearThresholdStopsFiring) {
  Monitor monitor;
  monitor.set_threshold("x", {.min = {}, .max = 1.0});
  int fired = 0;
  monitor.subscribe([&](const Violation&) { ++fired; });
  monitor.record("x", 1, 5.0);
  monitor.clear_threshold("x");
  monitor.record("x", 2, 5.0);
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace maqs::core

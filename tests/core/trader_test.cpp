#include "core/trader.hpp"

#include <gtest/gtest.h>

#include "characteristics/compression.hpp"
#include "characteristics/replication.hpp"
#include "net/network.hpp"
#include "support/echo.hpp"

namespace maqs::core {
namespace {

orb::ObjRef make_ref(const std::string& key,
                     const std::vector<std::string>& characteristics,
                     const std::string& repo_id = "IDL:test/Echo:1.0") {
  orb::ObjRef ref;
  ref.repo_id = repo_id;
  ref.endpoint = {"host", 9};
  ref.object_key = key;
  for (const std::string& name : characteristics) {
    orb::QosProfile profile;
    profile.characteristic = name;
    ref.qos.push_back(profile);
  }
  return ref;
}

TEST(Trader, ExportAndQueryByCharacteristic) {
  Trader trader;
  trader.export_offer({make_ref("a", {"Compression"}), {}, {}});
  trader.export_offer({make_ref("b", {"Replication"}), {}, {}});
  trader.export_offer({make_ref("c", {"Compression", "Encryption"}), {}, {}});
  EXPECT_EQ(trader.size(), 3u);
  EXPECT_EQ(trader.query("Compression").size(), 2u);
  EXPECT_EQ(trader.query("Replication").size(), 1u);
  EXPECT_EQ(trader.query("Actuality").size(), 0u);
}

TEST(Trader, CharacteristicsDefaultFromIorTag) {
  Trader trader;
  Offer offer;
  offer.ref = make_ref("a", {"Compression", "Encryption"});
  trader.export_offer(offer);  // empty characteristic list
  EXPECT_EQ(trader.query("Encryption").size(), 1u);
}

TEST(Trader, NilRefRejected) {
  Trader trader;
  EXPECT_THROW(trader.export_offer({orb::ObjRef{}, {}, {}}), QosError);
}

TEST(Trader, WithdrawRemovesOffer) {
  Trader trader;
  const auto id = trader.export_offer({make_ref("a", {"Compression"}), {}, {}});
  trader.withdraw(id);
  EXPECT_EQ(trader.query("Compression").size(), 0u);
  trader.withdraw(4242);  // harmless
}

TEST(Trader, QueryByInterface) {
  Trader trader;
  trader.export_offer(
      {make_ref("a", {"Compression"}, "IDL:x/A:1.0"), {}, {}});
  trader.export_offer(
      {make_ref("b", {"Compression"}, "IDL:x/B:1.0"), {}, {}});
  EXPECT_EQ(trader.query_interface("IDL:x/A:1.0").size(), 1u);
  EXPECT_EQ(trader.query_interface("IDL:x/C:1.0").size(), 0u);
}

TEST(Trader, QueryByCategory) {
  CharacteristicCatalog catalog;
  catalog.add(characteristics::compression_descriptor());
  catalog.add(characteristics::replication_descriptor());
  Trader trader;
  trader.export_offer({make_ref("a", {"Compression"}), {}, {}});
  trader.export_offer({make_ref("b", {"Replication"}), {}, {}});
  trader.export_offer({make_ref("c", {"UnknownChar"}), {}, {}});
  EXPECT_EQ(trader.query_category(QosCategory::kBandwidth, catalog).size(),
            1u);
  EXPECT_EQ(
      trader.query_category(QosCategory::kFaultTolerance, catalog).size(),
      1u);
  EXPECT_EQ(trader.query_category(QosCategory::kPrivacy, catalog).size(),
            0u);
}

class RemoteTraderTest : public ::testing::Test {
 protected:
  RemoteTraderTest()
      : net_(loop_),
        market_(net_, "market", 9000),
        seller_(net_, "seller", 9001),
        buyer_(net_, "buyer", 9002),
        client_(buyer_, market_.endpoint()),
        seller_client_(seller_, market_.endpoint()) {
    market_.adapter().activate(TraderServant::object_key(),
                               std::make_shared<TraderServant>(trader_));
  }

  sim::EventLoop loop_;
  net::Network net_;
  orb::Orb market_;
  orb::Orb seller_;
  orb::Orb buyer_;
  Trader trader_;
  TraderClient client_;
  TraderClient seller_client_;
};

TEST_F(RemoteTraderTest, ExportQueryWithdrawOverTheWire) {
  Offer offer;
  offer.ref = make_ref("svc-1", {"Compression"});
  offer.properties = {{"region", "eu"}};
  const std::uint64_t id = seller_client_.export_offer(offer);
  EXPECT_GT(id, 0u);

  const auto found = client_.query("Compression");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].object_key, "svc-1");
  EXPECT_TRUE(found[0].qos_aware());

  EXPECT_EQ(client_.query_interface("IDL:test/Echo:1.0").size(), 1u);
  seller_client_.withdraw(id);
  EXPECT_TRUE(client_.query("Compression").empty());
}

TEST_F(RemoteTraderTest, QueriedRefIsInvokable) {
  // The trader round-trip must preserve a usable reference.
  auto servant = std::make_shared<maqs::testing::EchoImpl>();
  orb::ObjRef real = seller_.adapter().activate("echo-1", servant);
  Offer offer;
  offer.ref = real;
  offer.characteristics = {"Compression"};
  seller_client_.export_offer(offer);

  const auto found = client_.query("Compression");
  ASSERT_EQ(found.size(), 1u);
  maqs::testing::EchoStub stub(buyer_, found[0]);
  EXPECT_EQ(stub.echo("via trader"), "via trader");
}

TEST_F(RemoteTraderTest, UnknownOperationRejected) {
  orb::RequestMessage req;
  req.object_key = TraderServant::object_key();
  req.operation = "frobnicate";
  EXPECT_EQ(buyer_.invoke_plain(market_.endpoint(), std::move(req)).status,
            orb::ReplyStatus::kBadOperation);
}

}  // namespace
}  // namespace maqs::core

// Failure injection on the infrastructure services: crashed servers,
// lossy links, restarts mid-agreement.
#include <gtest/gtest.h>

#include "characteristics/compression.hpp"
#include "core/negotiation.hpp"
#include "net/network.hpp"
#include "support/qos_echo.hpp"

namespace maqs::core {
namespace {

using characteristics::compression_name;
using maqs::testing::EchoStub;
using maqs::testing::QosEchoImpl;

class NegotiationFailureTest : public ::testing::Test {
 protected:
  NegotiationFailureTest()
      : net_(loop_),
        server_(net_, "server", 9000),
        client_(net_, "client", 9001),
        server_transport_(server_),
        client_transport_(client_),
        negotiation_(server_transport_, providers(), resources_),
        negotiator_(client_transport_, providers()) {
    resources_.declare("cpu", 1000.0);
    resources_.declare("bandwidth", 1000.0);
    client_.set_default_timeout(200 * sim::kMillisecond);
    servant_ = std::make_shared<QosEchoImpl>();
    servant_->assign_characteristic(
        characteristics::compression_descriptor());
    orb::QosProfile profile;
    profile.characteristic = compression_name();
    ref_ = server_.adapter().activate("echo-1", servant_, {profile});
  }

  static const ProviderRegistry& providers() {
    static const ProviderRegistry registry = [] {
      ProviderRegistry r;
      r.add(characteristics::make_compression_provider());
      return r;
    }();
    return registry;
  }

  sim::EventLoop loop_;
  net::Network net_;
  orb::Orb server_;
  orb::Orb client_;
  QosTransport server_transport_;
  QosTransport client_transport_;
  ResourceManager resources_;
  NegotiationService negotiation_;
  Negotiator negotiator_;
  std::shared_ptr<QosEchoImpl> servant_;
  orb::ObjRef ref_;
};

TEST_F(NegotiationFailureTest, NegotiationWithCrashedServerTimesOut) {
  net_.crash("server");
  EchoStub stub(client_, ref_);
  EXPECT_THROW(negotiator_.negotiate(stub, compression_name(), {}),
               orb::TransportError);
  // No client-side residue: no mediator, no module assignment.
  EXPECT_EQ(stub.mediator(), nullptr);
  EXPECT_EQ(client_transport_.assignment("echo-1"), std::nullopt);
}

TEST_F(NegotiationFailureTest, NegotiationSurvivesLossyLink) {
  net_.set_link("client", "server",
                net::LinkParams{.latency = 2 * sim::kMillisecond,
                                .bandwidth_bps = 1e6,
                                .loss_rate = 0.4});
  client_.set_default_timeout(5 * sim::kSecond);
  EchoStub stub(client_, ref_);
  // Reliable transport: loss costs time, not correctness.
  Agreement agreement = negotiator_.negotiate(stub, compression_name(), {});
  EXPECT_EQ(agreement.state, AgreementState::kActive);
  EXPECT_EQ(stub.echo("over lossy link"), "over lossy link");
}

TEST_F(NegotiationFailureTest, TrafficFailsCleanlyWhenServerCrashesLater) {
  EchoStub stub(client_, ref_);
  negotiator_.negotiate(stub, compression_name(), {});
  EXPECT_EQ(stub.echo("ok"), "ok");
  net_.crash("server");
  EXPECT_THROW(stub.echo("dead"), orb::TransportError);
}

TEST_F(NegotiationFailureTest, ServerRestartInvalidatesOldAgreementState) {
  EchoStub stub(client_, ref_);
  Agreement agreement = negotiator_.negotiate(stub, compression_name(), {});
  net_.crash("server");
  net_.restart("server");
  // The server process state survived in this harness (same Orb object),
  // so traffic still flows; renegotiation to the same id also works.
  EXPECT_EQ(stub.echo("after restart"), "after restart");
  Agreement updated = negotiator_.renegotiate(
      stub, agreement, {{"level", cdr::Any::from_long(2)}});
  EXPECT_EQ(updated.int_param("level"), 2);
}

TEST_F(NegotiationFailureTest, TerminateOnCrashedServerThrowsButCleansClient) {
  EchoStub stub(client_, ref_);
  Agreement agreement = negotiator_.negotiate(stub, compression_name(), {});
  net_.crash("server");
  EXPECT_THROW(negotiator_.terminate(stub, agreement), orb::TransportError);
  // Client-side weaving removal happens only on success; the mediator is
  // still installed (the agreement may well still exist server-side).
  auto composite =
      std::dynamic_pointer_cast<CompositeMediator>(stub.mediator());
  ASSERT_NE(composite, nullptr);
  EXPECT_NE(composite->find(compression_name()), nullptr);
}

TEST_F(NegotiationFailureTest, ViolationPushToCrashedClientIsHarmless) {
  EchoStub stub(client_, ref_);
  Agreement agreement = negotiator_.negotiate(stub, compression_name(), {});
  net_.crash("client");
  // The push is fire-and-forget; the server must not wedge.
  negotiation_.notify_violation(agreement.id, "test");
  loop_.run_until_idle();
  EXPECT_EQ(negotiation_.agreements().get(agreement.id).state,
            AgreementState::kViolated);
}

TEST_F(NegotiationFailureTest, ConcurrentNegotiationsFromTwoClients) {
  orb::Orb client2(net_, "client2", 9001);
  QosTransport transport2(client2);
  Negotiator negotiator2(transport2, providers());
  auto servant2 = std::make_shared<QosEchoImpl>();
  servant2->assign_characteristic(characteristics::compression_descriptor());
  orb::QosProfile profile;
  profile.characteristic = compression_name();
  orb::ObjRef ref2 = server_.adapter().activate("echo-2", servant2, {profile});

  EchoStub stub1(client_, ref_);
  EchoStub stub2(client2, ref2);
  Agreement a1 = negotiator_.negotiate(stub1, compression_name(),
                                       {{"level", cdr::Any::from_long(3)}});
  Agreement a2 = negotiator2.negotiate(stub2, compression_name(),
                                       {{"level", cdr::Any::from_long(5)}});
  EXPECT_NE(a1.id, a2.id);
  EXPECT_EQ(stub1.echo("one"), "one");
  EXPECT_EQ(stub2.echo("two"), "two");
  EXPECT_EQ(negotiation_.agreements().active_count(), 2u);
}

}  // namespace
}  // namespace maqs::core

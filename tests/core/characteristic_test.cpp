#include "core/characteristic.hpp"

#include <gtest/gtest.h>

namespace maqs::core {
namespace {

CharacteristicDescriptor sample() {
  return CharacteristicDescriptor(
      "Sample", QosCategory::kPerformance,
      {
          ParamDesc{"level", cdr::TypeCode::long_tc(),
                    cdr::Any::from_long(5), 1, 10},
          ParamDesc{"label", cdr::TypeCode::string_tc(),
                    cdr::Any::from_string("x"), {}, {}},
      },
      {
          QosOpDesc{"qos_setup", QosOpKind::kMechanism},
          QosOpDesc{"qos_sync", QosOpKind::kPeer},
          QosOpDesc{"qos_get_state", QosOpKind::kAspect},
      });
}

TEST(Characteristic, BasicAccessors) {
  const auto d = sample();
  EXPECT_EQ(d.name(), "Sample");
  EXPECT_EQ(d.category(), QosCategory::kPerformance);
  EXPECT_EQ(d.params().size(), 2u);
  EXPECT_EQ(d.operations().size(), 3u);
  EXPECT_TRUE(d.owns_operation("qos_sync"));
  EXPECT_FALSE(d.owns_operation("echo"));
  ASSERT_NE(d.find_param("level"), nullptr);
  EXPECT_EQ(d.find_param("nope"), nullptr);
}

TEST(Characteristic, EmptyNameRejected) {
  EXPECT_THROW(CharacteristicDescriptor("", QosCategory::kOther, {}, {}),
               QosError);
}

TEST(Characteristic, ParamWithoutTypeRejected) {
  EXPECT_THROW(
      CharacteristicDescriptor(
          "X", QosCategory::kOther,
          {ParamDesc{"p", nullptr, cdr::Any::from_long(1), {}, {}}}, {}),
      QosError);
}

TEST(Characteristic, DefaultValueTypeMismatchRejected) {
  EXPECT_THROW(
      CharacteristicDescriptor(
          "X", QosCategory::kOther,
          {ParamDesc{"p", cdr::TypeCode::long_tc(),
                     cdr::Any::from_string("not a long"), {}, {}}},
          {}),
      QosError);
}

TEST(Characteristic, DefaultParams) {
  const auto defaults = sample().default_params();
  EXPECT_EQ(defaults.at("level").as_long(), 5);
  EXPECT_EQ(defaults.at("label").as_string(), "x");
}

TEST(Characteristic, ValidateFillsDefaults) {
  const auto validated = sample().validate_params(
      {{"level", cdr::Any::from_long(7)}});
  EXPECT_EQ(validated.at("level").as_long(), 7);
  EXPECT_EQ(validated.at("label").as_string(), "x");
}

TEST(Characteristic, ValidateRejectsUnknownParam) {
  EXPECT_THROW(sample().validate_params({{"zzz", cdr::Any::from_long(1)}}),
               QosError);
}

TEST(Characteristic, ValidateRejectsTypeMismatch) {
  EXPECT_THROW(
      sample().validate_params({{"level", cdr::Any::from_string("7")}}),
      QosError);
}

TEST(Characteristic, ValidateEnforcesBounds) {
  EXPECT_THROW(sample().validate_params({{"level", cdr::Any::from_long(0)}}),
               QosError);
  EXPECT_THROW(sample().validate_params({{"level", cdr::Any::from_long(11)}}),
               QosError);
  EXPECT_NO_THROW(
      sample().validate_params({{"level", cdr::Any::from_long(10)}}));
  EXPECT_NO_THROW(
      sample().validate_params({{"level", cdr::Any::from_long(1)}}));
}

TEST(Catalog, AddAndLookup) {
  CharacteristicCatalog catalog;
  catalog.add(sample());
  EXPECT_TRUE(catalog.contains("Sample"));
  EXPECT_EQ(catalog.get("Sample").name(), "Sample");
  EXPECT_NE(catalog.find("Sample"), nullptr);
  EXPECT_EQ(catalog.find("Other"), nullptr);
  EXPECT_THROW(catalog.get("Other"), QosError);
}

TEST(Catalog, RejectsDuplicates) {
  CharacteristicCatalog catalog;
  catalog.add(sample());
  EXPECT_THROW(catalog.add(sample()), QosError);
}

TEST(Catalog, NamesSorted) {
  CharacteristicCatalog catalog;
  catalog.add(CharacteristicDescriptor("B", QosCategory::kOther, {}, {}));
  catalog.add(CharacteristicDescriptor("A", QosCategory::kOther, {}, {}));
  EXPECT_EQ(catalog.names(), (std::vector<std::string>{"A", "B"}));
}

TEST(Category, Names) {
  EXPECT_STREQ(qos_category_name(QosCategory::kFaultTolerance),
               "fault-tolerance");
  EXPECT_STREQ(qos_category_name(QosCategory::kPrivacy), "privacy");
}

}  // namespace
}  // namespace maqs::core

// Fig. 3 dispatch: module administration, dual-use requests (commands vs
// service requests), dynamic loading, fallback path, pseudo object.
#include <gtest/gtest.h>

#include "core/qos_transport.hpp"
#include "net/network.hpp"
#include "orb/dii.hpp"
#include "support/echo.hpp"

namespace maqs::core {
namespace {

/// Test module: reverses message bodies (self-inverse transform) and
/// counts command invocations.
class ReverseModule : public QosModule {
 public:
  ReverseModule() : QosModule("reverse") {}

  void transform_request(orb::RequestMessage& req) override {
    std::reverse(req.body.begin(), req.body.end());
  }
  void restore_request(orb::RequestMessage& req) override {
    std::reverse(req.body.begin(), req.body.end());
  }
  void transform_reply(const orb::RequestMessage&,
                       orb::ReplyMessage& rep) override {
    std::reverse(rep.body.begin(), rep.body.end());
  }
  void restore_reply(orb::ReplyMessage& rep) override {
    std::reverse(rep.body.begin(), rep.body.end());
  }
  cdr::Any command(const std::string& op,
                   const std::vector<cdr::Any>& args) override {
    if (op == "count") {
      return cdr::Any::from_long(static_cast<std::int32_t>(++count_));
    }
    return QosModule::command(op, args);
  }

 private:
  int count_ = 0;
};

class TransportTest : public ::testing::Test {
 protected:
  TransportTest()
      : net_(loop_),
        server_(net_, "server", 9000),
        client_(net_, "client", 9001),
        server_transport_(server_),
        client_transport_(client_) {
    auto& registry = ModuleFactoryRegistry::instance();
    if (!registry.contains("reverse")) {
      registry.register_factory(
          "reverse", [] { return std::make_unique<ReverseModule>(); });
    }
    impl_ = std::make_shared<maqs::testing::EchoImpl>();
    orb::QosProfile profile;
    profile.characteristic = "Reverse";
    ref_ = server_.adapter().activate("echo-1", impl_, {profile});
  }

  sim::EventLoop loop_;
  net::Network net_;
  orb::Orb server_;
  orb::Orb client_;
  QosTransport server_transport_;
  QosTransport client_transport_;
  std::shared_ptr<maqs::testing::EchoImpl> impl_;
  orb::ObjRef ref_;
};

TEST_F(TransportTest, LoadUnloadModules) {
  EXPECT_FALSE(client_transport_.is_loaded("reverse"));
  client_transport_.load_module("reverse");
  EXPECT_TRUE(client_transport_.is_loaded("reverse"));
  client_transport_.load_module("reverse");  // idempotent
  EXPECT_EQ(client_transport_.stats().modules_loaded, 1u);
  client_transport_.unload_module("reverse");
  EXPECT_FALSE(client_transport_.is_loaded("reverse"));
  EXPECT_THROW(client_transport_.load_module("no-such-module"), QosError);
}

TEST_F(TransportTest, QosAwareRequestWithModuleTakesModulePath) {
  client_transport_.assign("echo-1", "reverse");
  maqs::testing::EchoStub stub(client_, ref_);
  // Round-trip still correct: server transport reverses it back.
  EXPECT_EQ(stub.echo("through module"), "through module");
  EXPECT_EQ(client_transport_.stats().requests_via_module, 1u);
  EXPECT_EQ(server_transport_.stats().inbound_module_transforms, 1u);
  EXPECT_EQ(client_.stats().qos_path, 1u);
}

TEST_F(TransportTest, QosAwareRequestWithoutModuleFallsBackToPlain) {
  maqs::testing::EchoStub stub(client_, ref_);
  EXPECT_EQ(stub.echo("bootstrap"), "bootstrap");
  EXPECT_EQ(client_transport_.stats().requests_fallback_plain, 1u);
  EXPECT_EQ(client_transport_.stats().requests_via_module, 0u);
}

TEST_F(TransportTest, NonQosReferenceSkipsTransportEntirely) {
  auto plain_ref = ref_;
  plain_ref.qos.clear();
  maqs::testing::EchoStub stub(client_, plain_ref);
  EXPECT_EQ(stub.echo("plain"), "plain");
  EXPECT_EQ(client_.stats().plain_path, 1u);
  EXPECT_EQ(client_.stats().qos_path, 0u);
}

TEST_F(TransportTest, UnassignRestoresFallback) {
  client_transport_.assign("echo-1", "reverse");
  EXPECT_EQ(client_transport_.assignment("echo-1"), "reverse");
  client_transport_.unassign("echo-1");
  EXPECT_EQ(client_transport_.assignment("echo-1"), std::nullopt);
  maqs::testing::EchoStub stub(client_, ref_);
  stub.echo("x");
  EXPECT_EQ(client_transport_.stats().requests_fallback_plain, 1u);
}

TEST_F(TransportTest, UnloadRemovesAssignments) {
  client_transport_.assign("echo-1", "reverse");
  client_transport_.unload_module("reverse");
  EXPECT_EQ(client_transport_.assignment("echo-1"), std::nullopt);
}

TEST_F(TransportTest, TransportCommandsOverTheWire) {
  // "ping" on the remote transport.
  cdr::Any pong =
      orb::send_command(client_, server_.endpoint(), "", "ping", {});
  EXPECT_EQ(pong.as_string(), "pong");
  EXPECT_EQ(server_transport_.stats().commands_to_transport, 1u);

  // Remote module loading through a transport command (reflection:
  // extending the ORB at runtime).
  orb::send_command(client_, server_.endpoint(), "", "load_module",
                    {cdr::Any::from_string("reverse")});
  EXPECT_TRUE(server_transport_.is_loaded("reverse"));

  cdr::Any modules =
      orb::send_command(client_, server_.endpoint(), "", "list_modules", {});
  ASSERT_EQ(modules.as_elements().size(), 1u);
  EXPECT_EQ(modules.as_elements()[0].as_string(), "reverse");

  orb::send_command(client_, server_.endpoint(), "", "unload_module",
                    {cdr::Any::from_string("reverse")});
  EXPECT_FALSE(server_transport_.is_loaded("reverse"));
}

TEST_F(TransportTest, ModuleCommandsDispatchToModule) {
  // Command to an unloaded module loads it on request.
  cdr::Any count = orb::send_command(client_, server_.endpoint(), "reverse",
                                     "count", {});
  EXPECT_EQ(count.as_long(), 1);
  EXPECT_TRUE(server_transport_.is_loaded("reverse"));
  EXPECT_EQ(orb::send_command(client_, server_.endpoint(), "reverse",
                              "count", {})
                .as_long(),
            2);
  EXPECT_EQ(server_transport_.stats().commands_to_module, 2u);
}

TEST_F(TransportTest, UnknownCommandsReportErrors) {
  EXPECT_THROW(
      orb::send_command(client_, server_.endpoint(), "", "frobnicate", {}),
      orb::SystemException);
  EXPECT_THROW(orb::send_command(client_, server_.endpoint(), "reverse",
                                 "frobnicate", {}),
               orb::SystemException);
  EXPECT_THROW(orb::send_command(client_, server_.endpoint(),
                                 "no-such-module", "x", {}),
               orb::SystemException);
}

TEST_F(TransportTest, PseudoObjectAccessibleLikeAnyObject) {
  // The transport's static interface as a regular object (paper §4).
  orb::ObjRef pseudo_ref =
      server_.adapter().reference(QosTransport::pseudo_object_key());
  orb::DiiRequest load(client_, pseudo_ref, "load_module");
  load.add_arg(cdr::Any::from_string("reverse"));
  load.invoke();
  EXPECT_TRUE(server_transport_.is_loaded("reverse"));

  orb::DiiRequest is_loaded(client_, pseudo_ref, "is_loaded");
  is_loaded.add_arg(cdr::Any::from_string("reverse"));
  is_loaded.set_return_type(cdr::TypeCode::boolean_tc());
  EXPECT_TRUE(is_loaded.invoke().as_bool());

  orb::DiiRequest unload(client_, pseudo_ref, "unload_module");
  unload.add_arg(cdr::Any::from_string("reverse"));
  unload.invoke();
  EXPECT_FALSE(server_transport_.is_loaded("reverse"));
}

TEST_F(TransportTest, LocalTransportCommandInterface) {
  EXPECT_EQ(client_transport_.transport_command("ping", {}).as_string(),
            "pong");
  client_transport_.transport_command(
      "assign", {cdr::Any::from_string("obj"),
                 cdr::Any::from_string("reverse")});
  EXPECT_EQ(client_transport_.assignment("obj"), "reverse");
  client_transport_.transport_command("unassign",
                                      {cdr::Any::from_string("obj")});
  EXPECT_EQ(client_transport_.assignment("obj"), std::nullopt);
  EXPECT_THROW(client_transport_.transport_command("nope", {}), QosError);
  EXPECT_THROW(client_transport_.transport_command("assign", {}), QosError);
}

TEST_F(TransportTest, FactoryRegistryValidation) {
  auto& registry = ModuleFactoryRegistry::instance();
  EXPECT_THROW(registry.register_factory("bad", nullptr), QosError);
  EXPECT_THROW(registry.register_factory(
                   "reverse", [] { return std::make_unique<ReverseModule>(); }),
               QosError);
  // Factory producing a mismatched module name is rejected at load.
  registry.register_factory(
      "mismatch", [] { return std::make_unique<ReverseModule>(); });
  EXPECT_THROW(client_transport_.load_module("mismatch"), QosError);
  registry.unregister("mismatch");
}

}  // namespace
}  // namespace maqs::core

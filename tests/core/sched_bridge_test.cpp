// The policy bridge between the scheduler mechanism and the QoS
// management layer: class budgets follow ResourceManager capacity, and
// agreements bind their object to a class. (The overload ->
// notify_violation -> adaptation round trip is exercised end to end by
// the chaos suite's overload scenario.)
#include "core/sched_bridge.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "net/network.hpp"
#include "orb/orb.hpp"
#include "support/echo.hpp"

namespace maqs::core {
namespace {

class SchedBridgeTest : public ::testing::Test {
 protected:
  SchedBridgeTest() : net_(loop_), server_(net_, "server", 9000) {
    server_.adapter().activate("echo",
                               std::make_shared<maqs::testing::EchoImpl>());
  }

  sched::RequestScheduler& make_scheduler() {
    sched::SchedulerConfig config;
    sched::ClassConfig gold;
    gold.name = "gold";
    gold.resource = "bandwidth";
    config.classes.push_back(gold);
    sched::ClassConfig silver;
    silver.name = "silver";  // no resource coupling
    config.classes.push_back(silver);
    scheduler_ =
        std::make_unique<sched::RequestScheduler>(server_, std::move(config));
    return *scheduler_;
  }

  double class_rate(const sched::RequestScheduler& scheduler,
                    std::string_view name) {
    return scheduler.class_config(*scheduler.classifier().class_id(name))
        .rate_rps;
  }

  sim::EventLoop loop_;
  net::Network net_;
  orb::Orb server_;
  std::unique_ptr<sched::RequestScheduler> scheduler_;
};

TEST_F(SchedBridgeTest, ClassBudgetsInitializeFromAndTrackCapacity) {
  sched::RequestScheduler& scheduler = make_scheduler();
  ResourceManager resources;
  resources.declare("bandwidth", 50.0);
  attach_class_budgets(scheduler, resources);

  // gold's budget came from the declared capacity; the uncoupled classes
  // keep their configured (unlimited) rate.
  EXPECT_DOUBLE_EQ(class_rate(scheduler, "gold"), 50.0);
  EXPECT_DOUBLE_EQ(class_rate(scheduler, "silver"), 0.0);
  EXPECT_DOUBLE_EQ(class_rate(scheduler, sched::kBestEffortClassName), 0.0);

  // "The possible level of a QoS characteristic depends on the resource
  // availability": a capacity change re-budgets the coupled class.
  resources.set_capacity("bandwidth", 20.0);
  EXPECT_DOUBLE_EQ(class_rate(scheduler, "gold"), 20.0);
  resources.set_capacity("cpu", 7.0);  // unrelated resource: no effect
  EXPECT_DOUBLE_EQ(class_rate(scheduler, "gold"), 20.0);
  EXPECT_DOUBLE_EQ(class_rate(scheduler, "silver"), 0.0);
}

TEST_F(SchedBridgeTest, UndeclaredResourceLeavesTheClassUngated) {
  sched::RequestScheduler& scheduler = make_scheduler();
  ResourceManager resources;  // "bandwidth" never declared
  attach_class_budgets(scheduler, resources);
  EXPECT_DOUBLE_EQ(class_rate(scheduler, "gold"), 0.0);
}

TEST_F(SchedBridgeTest, BindAgreementClassMapsTheNegotiatedObject) {
  sched::RequestScheduler& scheduler = make_scheduler();
  Agreement agreement;
  agreement.id = 7;
  agreement.characteristic = "compression";
  agreement.object_key = "echo";

  EXPECT_FALSE(bind_agreement_class(scheduler, agreement, "no-such-class"));
  EXPECT_TRUE(bind_agreement_class(scheduler, agreement, "gold"));

  orb::RequestMessage req;
  req.object_key = "echo";
  EXPECT_EQ(scheduler.classifier().classify(req),
            *scheduler.classifier().class_id("gold"));
}

}  // namespace
}  // namespace maqs::core

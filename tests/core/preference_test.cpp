#include "core/preference.hpp"

#include <gtest/gtest.h>

#include "characteristics/compression.hpp"
#include "core/catalog_doc.hpp"
#include "net/network.hpp"
#include "support/qos_echo.hpp"

namespace maqs::core {
namespace {

using characteristics::compression_name;
using maqs::testing::EchoStub;
using maqs::testing::QosEchoImpl;

ContractProposal level(const std::string& label, std::int32_t value,
                       double utility, std::int64_t min_acceptable) {
  ContractProposal proposal;
  proposal.label = label;
  proposal.params = {{"level", cdr::Any::from_long(value)}};
  proposal.bounds.bounds["level"] = {min_acceptable, std::nullopt};
  proposal.utility = utility;
  return proposal;
}

class PreferenceTest : public ::testing::Test {
 protected:
  PreferenceTest()
      : net_(loop_),
        server_(net_, "server", 9000),
        client_(net_, "client", 9001),
        server_transport_(server_),
        client_transport_(client_),
        negotiation_(server_transport_, providers(), resources_),
        negotiator_(client_transport_, providers()) {
    resources_.declare("cpu", 100.0);
    resources_.declare("bandwidth", 1000.0);
    servant_ = std::make_shared<QosEchoImpl>();
    servant_->assign_characteristic(
        characteristics::compression_descriptor());
    orb::QosProfile profile;
    profile.characteristic = compression_name();
    ref_ = server_.adapter().activate("echo-1", servant_, {profile});
  }

  static const ProviderRegistry& providers() {
    static const ProviderRegistry registry = [] {
      ProviderRegistry r;
      r.add(characteristics::make_compression_provider());
      return r;
    }();
    return registry;
  }

  sim::EventLoop loop_;
  net::Network net_;
  orb::Orb server_;
  orb::Orb client_;
  QosTransport server_transport_;
  QosTransport client_transport_;
  ResourceManager resources_;
  NegotiationService negotiation_;
  Negotiator negotiator_;
  std::shared_ptr<QosEchoImpl> servant_;
  orb::ObjRef ref_;
};

TEST_F(PreferenceTest, MostPreferredLevelWinsWhenResourcesAllow) {
  PreferenceHierarchy hierarchy;
  hierarchy.add(level("bronze", 8, 0.3, 1));
  hierarchy.add(level("gold", 80, 1.0, 64));
  hierarchy.add(level("silver", 32, 0.6, 16));
  EchoStub stub(client_, ref_);
  const PreferredAgreement result = negotiate_preferred(
      negotiator_, stub, compression_name(), hierarchy);
  EXPECT_EQ(result.label, "gold");  // sorted by utility, tried first
  EXPECT_EQ(result.utility, 1.0);
  EXPECT_EQ(result.agreement.int_param("level"), 80);
}

TEST_F(PreferenceTest, FallsThroughToAdmissibleLevel) {
  resources_.declare("cpu", 40.0);  // gold (80) does not fit
  PreferenceHierarchy hierarchy;
  // Gold insists on the full lz77 algorithm, so the server's lattice
  // counter (degrade to rle at the same level) is out of bounds.
  ContractProposal gold = level("gold", 80, 1.0, 64);
  gold.bounds.allowed["algorithm"] = {cdr::Any::from_string("lz77")};
  hierarchy.add(gold);
  hierarchy.add(level("silver", 32, 0.6, 16));
  hierarchy.add(level("bronze", 8, 0.3, 1));
  EchoStub stub(client_, ref_);
  const PreferredAgreement result = negotiate_preferred(
      negotiator_, stub, compression_name(), hierarchy);
  // gold's counter-offer violates its allowed set -> refused;
  // silver (32) fits directly.
  EXPECT_EQ(result.label, "silver");
  EXPECT_EQ(result.agreement.int_param("level"), 32);
  // Traffic flows at the admitted level.
  EXPECT_EQ(stub.echo("preferred"), "preferred");
}

TEST_F(PreferenceTest, FailsWhenNoLevelAdmissible) {
  resources_.declare("cpu", 0.5);
  PreferenceHierarchy hierarchy;
  hierarchy.add(level("gold", 80, 1.0, 64));
  hierarchy.add(level("silver", 32, 0.6, 16));
  EchoStub stub(client_, ref_);
  EXPECT_THROW(
      negotiate_preferred(negotiator_, stub, compression_name(), hierarchy),
      NegotiationFailed);
}

TEST_F(PreferenceTest, EmptyHierarchyRejected) {
  EchoStub stub(client_, ref_);
  EXPECT_THROW(negotiate_preferred(negotiator_, stub, compression_name(),
                                   PreferenceHierarchy{}),
               NegotiationFailed);
}

TEST_F(PreferenceTest, LevelsSortedByUtility) {
  PreferenceHierarchy hierarchy;
  hierarchy.add(level("c", 1, 0.1, 1));
  hierarchy.add(level("a", 1, 0.9, 1));
  hierarchy.add(level("b", 1, 0.5, 1));
  ASSERT_EQ(hierarchy.levels().size(), 3u);
  EXPECT_EQ(hierarchy.levels()[0].label, "a");
  EXPECT_EQ(hierarchy.levels()[1].label, "b");
  EXPECT_EQ(hierarchy.levels()[2].label, "c");
}

// ---- catalog rendering (paper §6) ----

TEST(CatalogDoc, RendersEntries) {
  const std::string entry = catalog_entry_markdown(
      characteristics::compression_descriptor());
  EXPECT_NE(entry.find("## Compression"), std::string::npos);
  EXPECT_NE(entry.find("*Category:* bandwidth"), std::string::npos);
  EXPECT_NE(entry.find("`algorithm`"), std::string::npos);
  EXPECT_NE(entry.find("\"lz77\" > \"rle\" > \"none\""), std::string::npos);
  EXPECT_NE(entry.find("1 .. 128"), std::string::npos);
  EXPECT_NE(entry.find("`qos_compression_ratio` — mechanism"),
            std::string::npos);
}

TEST(CatalogDoc, RendersFullRegistryWithWeavingInfo) {
  ProviderRegistry providers;
  providers.add(characteristics::make_compression_provider());
  const std::string doc = catalog_markdown(providers);
  EXPECT_NE(doc.find("# QoS Characteristic Catalog"), std::string::npos);
  EXPECT_NE(doc.find("client mediator + server QoS implementation"),
            std::string::npos);
}

TEST(CatalogDoc, ModuleReuseDocumented) {
  ProviderRegistry providers;
  providers.add(characteristics::make_compression_module_provider());
  const std::string doc = catalog_markdown(providers);
  EXPECT_NE(doc.find("*Reuses transport module:* `compression`"),
            std::string::npos);
  EXPECT_NE(doc.find("transport only"), std::string::npos);
  EXPECT_NE(doc.find("*Bootstrap:*"), std::string::npos);
}

}  // namespace
}  // namespace maqs::core

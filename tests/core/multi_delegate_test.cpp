// Multi-category server weaving: per-characteristic delegate slots
// (our extension of Fig. 2's single exchanged delegate — required for
// simultaneously negotiated agreements of different categories).
#include <gtest/gtest.h>

#include "core/mediator.hpp"
#include "core/qos_skeleton.hpp"
#include "net/network.hpp"
#include "support/qos_echo.hpp"

namespace maqs::core {
namespace {

using maqs::testing::EchoStub;
using maqs::testing::QosEchoImpl;

CharacteristicDescriptor characteristic(const std::string& name) {
  return CharacteristicDescriptor(
      name, QosCategory::kOther, {},
      {QosOpDesc{"qos_" + name, QosOpKind::kMechanism}});
}

/// Tags the argument/result stream with one byte on each side so the
/// nesting order is observable.
class TaggingImpl : public QosImpl {
 public:
  TaggingImpl(const std::string& name, std::uint8_t tag,
              std::vector<std::string>& trace)
      : QosImpl(name), tag_(tag), trace_(trace) {}

  void prolog(orb::ServerContext&) override {
    trace_.push_back("prolog:" + characteristic());
  }
  void epilog(orb::ServerContext&) override {
    trace_.push_back("epilog:" + characteristic());
  }
  util::Bytes transform_args(util::Bytes args, orb::ServerContext&) override {
    // Inverse of the client transform: strip our tag from the end.
    trace_.push_back("args:" + characteristic());
    if (args.empty() || args.back() != tag_) {
      throw QosError(characteristic() + ": bad nesting");
    }
    args.pop_back();
    return args;
  }
  util::Bytes transform_result(util::Bytes result,
                               orb::ServerContext&) override {
    trace_.push_back("result:" + characteristic());
    result.push_back(tag_);
    return result;
  }
  void dispatch_qos_op(const std::string& op, cdr::Decoder& args,
                       cdr::Encoder& out, orb::ServerContext&) override {
    args.expect_end();
    out.write_string(op + "@" + characteristic());
  }

 private:
  std::uint8_t tag_;
  std::vector<std::string>& trace_;
};

class MultiDelegateTest : public ::testing::Test {
 protected:
  MultiDelegateTest() {
    servant_ = std::make_shared<QosEchoImpl>();
    servant_->assign_characteristic(characteristic("A"));
    servant_->assign_characteristic(characteristic("B"));
  }

  std::shared_ptr<QosEchoImpl> servant_;
  std::vector<std::string> trace_;
};

TEST_F(MultiDelegateTest, InstallTwoDelegatesKeepsBoth) {
  servant_->install_impl(std::make_shared<TaggingImpl>("A", 0xA, trace_));
  servant_->install_impl(std::make_shared<TaggingImpl>("B", 0xB, trace_));
  EXPECT_EQ(servant_->active_impls().size(), 2u);
  EXPECT_NE(servant_->impl_for("A"), nullptr);
  EXPECT_NE(servant_->impl_for("B"), nullptr);
  EXPECT_EQ(servant_->impl_for("C"), nullptr);
}

TEST_F(MultiDelegateTest, InstallReplacesSameCharacteristic) {
  auto first = std::make_shared<TaggingImpl>("A", 1, trace_);
  auto second = std::make_shared<TaggingImpl>("A", 2, trace_);
  servant_->install_impl(first);
  servant_->install_impl(second);
  EXPECT_EQ(servant_->active_impls().size(), 1u);
  EXPECT_EQ(servant_->impl_for("A"), second);
}

TEST_F(MultiDelegateTest, InstallNullOrUnassignedRejected) {
  EXPECT_THROW(servant_->install_impl(nullptr), QosError);
  EXPECT_THROW(
      servant_->install_impl(std::make_shared<TaggingImpl>("C", 1, trace_)),
      QosError);
}

TEST_F(MultiDelegateTest, SetActiveImplKeepsPaperSemantics) {
  // The paper-faithful API clears everything and installs one delegate.
  servant_->install_impl(std::make_shared<TaggingImpl>("A", 1, trace_));
  servant_->set_active_impl(std::make_shared<TaggingImpl>("B", 2, trace_));
  EXPECT_EQ(servant_->active_impls().size(), 1u);
  EXPECT_EQ(servant_->impl_for("A"), nullptr);
  EXPECT_EQ(servant_->active_impl()->characteristic(), "B");
}

TEST_F(MultiDelegateTest, RemoveImplDetaches) {
  servant_->install_impl(std::make_shared<TaggingImpl>("A", 1, trace_));
  servant_->install_impl(std::make_shared<TaggingImpl>("B", 2, trace_));
  servant_->remove_impl("A");
  EXPECT_EQ(servant_->impl_for("A"), nullptr);
  EXPECT_NE(servant_->impl_for("B"), nullptr);
  servant_->remove_impl("A");  // idempotent
  servant_->clear_impls();
  EXPECT_TRUE(servant_->active_impls().empty());
  EXPECT_EQ(servant_->active_impl(), nullptr);
}

class MultiDelegateRpcTest : public MultiDelegateTest {
 protected:
  MultiDelegateRpcTest()
      : net_(loop_),
        server_(net_, "server", 9000),
        client_(net_, "client", 9001) {
    ref_ = server_.adapter().activate("echo", servant_);
  }

  sim::EventLoop loop_;
  net::Network net_;
  orb::Orb server_;
  orb::Orb client_;
  orb::ObjRef ref_;
};

/// Client-side mirror of TaggingImpl: appends its tag to the request
/// body, strips it from the reply.
class TaggingMediator : public Mediator {
 public:
  TaggingMediator(const std::string& name, std::uint8_t tag)
      : Mediator(name), tag_(tag) {}
  void outbound(orb::RequestMessage& req, orb::ObjRef&) override {
    req.body.push_back(tag_);
  }
  void inbound(const orb::RequestMessage&, orb::ReplyMessage& rep) override {
    if (rep.status != orb::ReplyStatus::kOk) return;
    ASSERT_FALSE(rep.body.empty());
    ASSERT_EQ(rep.body.back(), tag_);
    rep.body.pop_back();
  }

 private:
  std::uint8_t tag_;
};

TEST_F(MultiDelegateRpcTest, TransformNestingMatchesMediatorChain) {
  // Client chain [A, B]: outbound appends A then B (B outermost).
  // Server must strip B first (reverse install order on args) and append
  // results in install order (A then B) so the client chain unwinds.
  servant_->install_impl(std::make_shared<TaggingImpl>("A", 0xA, trace_));
  servant_->install_impl(std::make_shared<TaggingImpl>("B", 0xB, trace_));
  EchoStub stub(client_, ref_);
  auto composite = std::make_shared<CompositeMediator>();
  composite->add(std::make_shared<TaggingMediator>("A", 0xA));
  composite->add(std::make_shared<TaggingMediator>("B", 0xB));
  stub.set_mediator(composite);

  EXPECT_EQ(stub.add(2, 3), 5);
  EXPECT_EQ(trace_,
            (std::vector<std::string>{"prolog:A", "prolog:B", "args:B",
                                      "args:A", "result:A", "result:B",
                                      "epilog:B", "epilog:A"}));
}

TEST_F(MultiDelegateRpcTest, EachCharacteristicsQosOpsDispatchToItsImpl) {
  servant_->install_impl(std::make_shared<TaggingImpl>("A", 0xA, trace_));
  servant_->install_impl(std::make_shared<TaggingImpl>("B", 0xB, trace_));
  for (const char* name : {"A", "B"}) {
    orb::RequestMessage req;
    req.object_key = "echo";
    req.operation = std::string("qos_") + name;
    orb::ReplyMessage rep = client_.invoke_plain(ref_.endpoint, std::move(req));
    ASSERT_EQ(rep.status, orb::ReplyStatus::kOk);
    cdr::Decoder dec(rep.body);
    EXPECT_EQ(dec.read_string(), std::string("qos_") + name + "@" + name);
  }
}

TEST_F(MultiDelegateRpcTest, RemovedCharacteristicRaisesNotNegotiatedAgain) {
  servant_->install_impl(std::make_shared<TaggingImpl>("A", 0xA, trace_));
  servant_->remove_impl("A");
  orb::RequestMessage req;
  req.object_key = "echo";
  req.operation = "qos_A";
  EXPECT_EQ(client_.invoke_plain(ref_.endpoint, std::move(req)).status,
            orb::ReplyStatus::kNotNegotiated);
}

}  // namespace
}  // namespace maqs::core

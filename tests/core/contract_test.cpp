#include "core/contract.hpp"

#include <gtest/gtest.h>

namespace maqs::core {
namespace {

Agreement sample_agreement() {
  Agreement agreement;
  agreement.characteristic = "Compression";
  agreement.object_key = "obj-1";
  agreement.params = {{"level", cdr::Any::from_long(3)},
                      {"algorithm", cdr::Any::from_string("lz77")},
                      {"integrity", cdr::Any::from_bool(true)}};
  agreement.state = AgreementState::kActive;
  return agreement;
}

TEST(Agreement, TypedParamAccessors) {
  const Agreement a = sample_agreement();
  EXPECT_EQ(a.int_param("level"), 3);
  EXPECT_EQ(a.string_param("algorithm"), "lz77");
  EXPECT_TRUE(a.bool_param("integrity"));
}

TEST(Agreement, MissingParamThrows) {
  EXPECT_THROW(sample_agreement().int_param("nope"), QosError);
}

TEST(Agreement, StateNames) {
  EXPECT_STREQ(agreement_state_name(AgreementState::kActive), "active");
  EXPECT_STREQ(agreement_state_name(AgreementState::kViolated), "violated");
}

TEST(AgreementRepository, CreateAssignsIncreasingIds) {
  AgreementRepository repo;
  const auto& a = repo.create(sample_agreement());
  const auto& b = repo.create(sample_agreement());
  EXPECT_GT(a.id, 0u);
  EXPECT_GT(b.id, a.id);
}

TEST(AgreementRepository, FindAndGet) {
  AgreementRepository repo;
  const auto id = repo.create(sample_agreement()).id;
  EXPECT_NE(repo.find(id), nullptr);
  EXPECT_EQ(repo.find(9999), nullptr);
  EXPECT_EQ(repo.get(id).id, id);
  EXPECT_THROW(repo.get(9999), QosError);
}

TEST(AgreementRepository, TerminateChangesState) {
  AgreementRepository repo;
  const auto id = repo.create(sample_agreement()).id;
  EXPECT_EQ(repo.active_count(), 1u);
  repo.terminate(id);
  EXPECT_EQ(repo.get(id).state, AgreementState::kTerminated);
  EXPECT_EQ(repo.active_count(), 0u);
  // Terminating again or terminating unknown ids is harmless.
  repo.terminate(id);
  repo.terminate(424242);
}

TEST(AgreementRepository, QueriesExcludeTerminated) {
  AgreementRepository repo;
  const auto id1 = repo.create(sample_agreement()).id;
  repo.create(sample_agreement());
  Agreement other = sample_agreement();
  other.characteristic = "Encryption";
  other.object_key = "obj-2";
  repo.create(other);

  EXPECT_EQ(repo.by_characteristic("Compression").size(), 2u);
  EXPECT_EQ(repo.by_characteristic("Encryption").size(), 1u);
  EXPECT_EQ(repo.by_object("obj-1").size(), 3u - 1u);
  repo.terminate(id1);
  EXPECT_EQ(repo.by_characteristic("Compression").size(), 1u);
}

}  // namespace
}  // namespace maqs::core

// The adaptation loop: server resource drop -> violation push -> client
// policy -> renegotiation -> rebound delegates; plus client-side
// monitor-driven adaptation.
#include <gtest/gtest.h>

#include "characteristics/compression.hpp"
#include "core/adaptation.hpp"
#include "net/network.hpp"
#include "orb/dii.hpp"
#include "support/qos_echo.hpp"

namespace maqs::core {
namespace {

using characteristics::compression_name;
using maqs::testing::EchoStub;
using maqs::testing::QosEchoImpl;

class AdaptationTest : public ::testing::Test {
 protected:
  AdaptationTest()
      : net_(loop_),
        server_(net_, "server", 9000),
        client_(net_, "client", 9001),
        server_transport_(server_),
        client_transport_(client_),
        negotiation_(server_transport_, providers(), resources_),
        negotiator_(client_transport_, providers()),
        adaptation_(client_transport_, negotiator_) {
    resources_.declare("cpu", 100.0);
    resources_.declare("bandwidth", 1000.0);
    servant_ = std::make_shared<QosEchoImpl>();
    servant_->assign_characteristic(
        characteristics::compression_descriptor());
    orb::QosProfile profile;
    profile.characteristic = compression_name();
    ref_ = server_.adapter().activate("echo-1", servant_, {profile});

    // Wire the server loop: capacity drops shed overload, which pushes
    // violations to clients.
    resources_.subscribe([this](const std::string& resource, double, double) {
      negotiation_.shed_overload(resource);
    });
  }

  static const ProviderRegistry& providers() {
    static const ProviderRegistry registry = [] {
      ProviderRegistry r;
      r.add(characteristics::make_compression_provider());
      return r;
    }();
    return registry;
  }

  /// Halve the level on every violation, down to 1.
  static AdaptationManager::Policy halving_policy() {
    return [](const Agreement& agreement, const std::string&)
               -> std::optional<std::map<std::string, cdr::Any>> {
      const std::int64_t level = agreement.int_param("level");
      if (level <= 1) return std::nullopt;  // give up -> terminate
      return std::map<std::string, cdr::Any>{
          {"level",
           cdr::Any::from_long(static_cast<std::int32_t>(level / 2))}};
    };
  }

  sim::EventLoop loop_;
  net::Network net_;
  orb::Orb server_;
  orb::Orb client_;
  QosTransport server_transport_;
  QosTransport client_transport_;
  ResourceManager resources_;
  NegotiationService negotiation_;
  Negotiator negotiator_;
  AdaptationManager adaptation_;
  std::shared_ptr<QosEchoImpl> servant_;
  orb::ObjRef ref_;
};

TEST_F(AdaptationTest, ResourceDropTriggersRenegotiation) {
  EchoStub stub(client_, ref_);
  Agreement agreement = negotiator_.negotiate(
      stub, compression_name(), {{"level", cdr::Any::from_long(64)}});
  adaptation_.manage(stub, agreement, halving_policy());

  // Capacity drops below the reserved 64: the server sheds the agreement,
  // the client adapts by halving (64 -> 32, fits into 40).
  resources_.set_capacity("cpu", 40.0);
  loop_.run_until_idle();  // deliver the violation push + renegotiation

  EXPECT_EQ(adaptation_.adaptations(), 1u);
  const Agreement* adapted = adaptation_.managed_agreement(agreement.id);
  ASSERT_NE(adapted, nullptr);
  EXPECT_EQ(adapted->int_param("level"), 32);
  EXPECT_EQ(resources_.reserved("cpu"), 32.0);
  EXPECT_FALSE(resources_.overloaded());
  // Traffic flows at the adapted level.
  EXPECT_EQ(stub.echo("adapted"), "adapted");
}

TEST_F(AdaptationTest, RepeatedDropsDegradeStepwise) {
  EchoStub stub(client_, ref_);
  Agreement agreement = negotiator_.negotiate(
      stub, compression_name(), {{"level", cdr::Any::from_long(64)}});
  adaptation_.manage(stub, agreement, halving_policy());

  resources_.set_capacity("cpu", 40.0);  // 64 -> 32
  loop_.run_until_idle();
  resources_.set_capacity("cpu", 20.0);  // 32 -> 16
  loop_.run_until_idle();
  resources_.set_capacity("cpu", 10.0);  // 16 -> 8
  loop_.run_until_idle();

  EXPECT_EQ(adaptation_.adaptations(), 3u);
  EXPECT_EQ(adaptation_.managed_agreement(agreement.id)->int_param("level"),
            8);
}

TEST_F(AdaptationTest, PolicyGivingUpTerminatesAgreement) {
  EchoStub stub(client_, ref_);
  Agreement agreement = negotiator_.negotiate(
      stub, compression_name(), {{"level", cdr::Any::from_long(1)}});
  adaptation_.manage(stub, agreement, halving_policy());

  resources_.set_capacity("cpu", 0.0);  // nothing fits anymore
  loop_.run_until_idle();

  EXPECT_EQ(adaptation_.terminations(), 1u);
  EXPECT_EQ(adaptation_.managed_agreement(agreement.id), nullptr);
  EXPECT_EQ(negotiation_.agreements().get(agreement.id).state,
            AgreementState::kTerminated);
  EXPECT_EQ(servant_->active_impl(), nullptr);
}

TEST_F(AdaptationTest, UnmanagedViolationsAreIgnored) {
  EchoStub stub(client_, ref_);
  Agreement agreement = negotiator_.negotiate(
      stub, compression_name(), {{"level", cdr::Any::from_long(64)}});
  (void)agreement;  // not managed
  resources_.set_capacity("cpu", 10.0);
  loop_.run_until_idle();
  EXPECT_EQ(adaptation_.adaptations(), 0u);
  // Server marked it violated regardless.
  EXPECT_EQ(negotiation_.agreements().get(agreement.id).state,
            AgreementState::kViolated);
}

TEST_F(AdaptationTest, NewestAgreementShedFirst) {
  EchoStub stub1(client_, ref_);
  auto servant2 = std::make_shared<QosEchoImpl>();
  servant2->assign_characteristic(characteristics::compression_descriptor());
  orb::QosProfile profile;
  profile.characteristic = compression_name();
  orb::ObjRef ref2 = server_.adapter().activate("echo-2", servant2, {profile});
  EchoStub stub2(client_, ref2);

  Agreement a1 = negotiator_.negotiate(stub1, compression_name(),
                                       {{"level", cdr::Any::from_long(40)}});
  Agreement a2 = negotiator_.negotiate(stub2, compression_name(),
                                       {{"level", cdr::Any::from_long(40)}});
  adaptation_.manage(stub1, a1, halving_policy());
  adaptation_.manage(stub2, a2, halving_policy());

  // 80 reserved; drop to 60: only the newer (a2) must adapt (40 -> 20).
  resources_.set_capacity("cpu", 60.0);
  loop_.run_until_idle();
  EXPECT_EQ(adaptation_.adaptations(), 1u);
  EXPECT_EQ(adaptation_.managed_agreement(a1.id)->int_param("level"), 40);
  EXPECT_EQ(adaptation_.managed_agreement(a2.id)->int_param("level"), 20);
}

TEST_F(AdaptationTest, MonitorDrivenAdaptation) {
  EchoStub stub(client_, ref_);
  Agreement agreement = negotiator_.negotiate(
      stub, compression_name(), {{"level", cdr::Any::from_long(64)}});
  adaptation_.manage(stub, agreement, halving_policy());

  Monitor monitor;
  adaptation_.watch_metric(monitor, "latency_ms", Threshold{.min = {}, .max = 50.0},
                           agreement.id);
  monitor.record("latency_ms", loop_.now(), 10.0);  // fine
  EXPECT_EQ(adaptation_.adaptations(), 0u);
  monitor.record("latency_ms", loop_.now(), 80.0);  // violation
  EXPECT_EQ(adaptation_.adaptations(), 1u);
  EXPECT_EQ(adaptation_.managed_agreement(agreement.id)->int_param("level"),
            32);
}

TEST_F(AdaptationTest, UnknownCommandRejected) {
  EXPECT_THROW(orb::send_command(server_, client_.endpoint(),
                                 AdaptationManager::command_target(),
                                 "frobnicate", {}),
               orb::SystemException);
}

}  // namespace
}  // namespace maqs::core

#include "sim/event_loop.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace maqs::sim {
namespace {

TEST(EventLoop, StartsAtTimeZero) {
  EventLoop loop;
  EXPECT_EQ(loop.now(), 0);
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(30, [&] { order.push_back(3); });
  loop.schedule(10, [&] { order.push_back(1); });
  loop.schedule(20, [&] { order.push_back(2); });
  EXPECT_EQ(loop.run_until_idle(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, SimultaneousEventsRunFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule(10, [&order, i] { order.push_back(i); });
  }
  loop.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, NegativeDelayClampsToNow) {
  EventLoop loop;
  loop.schedule(100, [] {});
  loop.run_until_idle();
  bool ran = false;
  loop.schedule(-5, [&] { ran = true; });
  loop.run_until_idle();
  EXPECT_TRUE(ran);
  EXPECT_EQ(loop.now(), 100);
}

TEST(EventLoop, ScheduleAtPastTimeRunsNow) {
  EventLoop loop;
  loop.schedule(50, [] {});
  loop.run_until_idle();
  std::int64_t observed = -1;
  loop.schedule_at(10, [&] { observed = loop.now(); });
  loop.run_until_idle();
  EXPECT_EQ(observed, 50);
}

TEST(EventLoop, HandlersMayScheduleMoreEvents) {
  EventLoop loop;
  int count = 0;
  std::function<void()> reschedule = [&] {
    if (++count < 5) loop.schedule(10, reschedule);
  };
  loop.schedule(10, reschedule);
  loop.run_until_idle();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(loop.now(), 50);
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const EventId id = loop.schedule(10, [&] { ran = true; });
  EXPECT_TRUE(loop.cancel(id));
  loop.run_until_idle();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, CancelUnknownReturnsFalse) {
  EventLoop loop;
  EXPECT_FALSE(loop.cancel(0));
  EXPECT_FALSE(loop.cancel(9999));
}

TEST(EventLoop, CancelAfterRunReturnsFalseViaDoubleCancel) {
  EventLoop loop;
  const EventId id = loop.schedule(1, [] {});
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));  // already marked
}

TEST(EventLoop, PendingCountExcludesCancelled) {
  EventLoop loop;
  const EventId a = loop.schedule(1, [] {});
  loop.schedule(2, [] {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.cancel(a);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoop, RunUntilPredicate) {
  EventLoop loop;
  int x = 0;
  for (int i = 0; i < 10; ++i) {
    loop.schedule(10 * (i + 1), [&] { ++x; });
  }
  EXPECT_TRUE(loop.run_until([&] { return x == 4; }));
  EXPECT_EQ(x, 4);
  EXPECT_EQ(loop.now(), 40);
  EXPECT_EQ(loop.pending(), 6u);
}

TEST(EventLoop, RunUntilReturnsFalseWhenQueueDrains) {
  EventLoop loop;
  loop.schedule(10, [] {});
  EXPECT_FALSE(loop.run_until([] { return false; }));
}

TEST(EventLoop, RunUntilAlreadySatisfiedDoesNothing) {
  EventLoop loop;
  bool ran = false;
  loop.schedule(10, [&] { ran = true; });
  EXPECT_TRUE(loop.run_until([] { return true; }));
  EXPECT_FALSE(ran);
}

// The nested-pumping pattern that blocking RPC relies on: a handler itself
// waits for a later event.
TEST(EventLoop, NestedRunUntil) {
  EventLoop loop;
  std::vector<int> order;
  bool inner_done = false;
  loop.schedule(10, [&] {
    order.push_back(1);
    loop.schedule(5, [&] {
      order.push_back(2);
      inner_done = true;
    });
    EXPECT_TRUE(loop.run_until([&] { return inner_done; }));
    order.push_back(3);
  });
  loop.schedule(100, [&] { order.push_back(4); });
  loop.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventLoop, RunForAdvancesExactDuration) {
  EventLoop loop;
  int count = 0;
  loop.schedule(10, [&] { ++count; });
  loop.schedule(20, [&] { ++count; });
  loop.schedule(30, [&] { ++count; });
  loop.run_for(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(loop.now(), 20);
  loop.run_for(5);  // nothing in window, clock still advances
  EXPECT_EQ(loop.now(), 25);
  EXPECT_EQ(count, 2);
}

TEST(EventLoop, RunForSkipsCancelledHeadWithoutOverrunning) {
  EventLoop loop;
  bool late_ran = false;
  const EventId head = loop.schedule(5, [] {});
  loop.schedule(50, [&] { late_ran = true; });
  loop.cancel(head);
  loop.run_for(10);
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(loop.now(), 10);
}

TEST(EventLoop, EventAtExactDeadlineRuns) {
  EventLoop loop;
  bool ran = false;
  loop.schedule(10, [&] { ran = true; });
  loop.run_for(10);
  EXPECT_TRUE(ran);
}

TEST(EventLoop, TombstoneBacklogStaysBoundedOverAMillionCancelCycles) {
  // Regression: with only the ratio-based purge, a large persistent live
  // backlog (here 100k armed far-future timers, standing in for one timer
  // per client in a population world) drags the purge threshold up with
  // the queue size, and a long-horizon schedule-and-cancel loop grows
  // cancelled_ids_ to half the population. The absolute cap must keep the
  // tombstone set bounded regardless of how big the live queue is.
  EventLoop loop;
  int fired = 0;
  for (int i = 0; i < 100'000; ++i) {
    loop.schedule(1'000'000'000 + i, [&] { ++fired; });
  }
  std::size_t max_backlog = 0;
  for (int i = 0; i < 1'000'000; ++i) {
    // The blocking-RPC shape: arm a far-future timeout, then cancel it
    // when the (instant) reply lands. Virtual time never reaches the
    // entry, so only compaction can reclaim it.
    const EventId timeout = loop.schedule(2'000'000'000, [] {});
    ASSERT_TRUE(loop.cancel(timeout));
    max_backlog = std::max(max_backlog, loop.cancelled_backlog());
  }
  EXPECT_LE(max_backlog, EventLoop::kMaxTombstones + 1);
  EXPECT_EQ(loop.pending(), 100'000u);
  EXPECT_EQ(fired, 0);
}

TEST(EventLoop, StaleCancelsCannotUnderflowPending) {
  EventLoop loop;
  std::vector<EventId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(loop.schedule(i, [] {}));
  }
  loop.run_until_idle();
  // Cancelling after execution is documented as a late no-op; the stale
  // tombstones it leaves must not wrap pending() below zero.
  for (EventId id : ids) loop.cancel(id);
  EXPECT_EQ(loop.pending(), 0u);
}

}  // namespace
}  // namespace maqs::sim

// Multi-shard trace merge: byte-identical output regardless of shard
// completion order or thread interleaving.
#include "trace/merge.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/event_loop.hpp"
#include "trace/trace.hpp"

namespace maqs::trace {
namespace {

// One shard's deterministic workload: a handful of spans at virtual
// times derived only from (shard, i).
void populate(sim::EventLoop& loop, TraceRecorder& recorder,
              std::uint32_t shard) {
  recorder.set_enabled(true);
  recorder.set_shard(shard);
  for (int i = 0; i < 5; ++i) {
    loop.schedule(10 + shard, [&recorder, shard, i] {
      const TraceContext root = recorder.make_trace();
      SpanScope scope(recorder, root, "load.request",
                      "shard" + std::to_string(shard));
      (void)i;
    });
    loop.run_until_idle();
  }
}

std::string merged(const std::vector<const TraceRecorder*>& shards) {
  std::ostringstream os;
  export_merged_chrome_trace(shards, os);
  return os.str();
}

TEST(TraceMerge, OutputIndependentOfRecorderListOrder) {
  sim::EventLoop loops[3];
  std::vector<TraceRecorder> recorders;
  recorders.reserve(3);
  for (std::uint32_t s = 0; s < 3; ++s) {
    recorders.emplace_back(loops[s]);
    populate(loops[s], recorders[s], s);
  }
  const std::string forward =
      merged({&recorders[0], &recorders[1], &recorders[2]});
  const std::string shuffled =
      merged({&recorders[2], &recorders[0], &recorders[1]});
  const std::string reversed =
      merged({&recorders[2], &recorders[1], &recorders[0]});
  EXPECT_EQ(forward, shuffled);
  EXPECT_EQ(forward, reversed);
  // Every shard actually contributed (pids 1..3 present).
  for (const char* pid : {"\"pid\":1", "\"pid\":2", "\"pid\":3"}) {
    EXPECT_NE(forward.find(pid), std::string::npos) << pid;
  }
}

TEST(TraceMerge, ThreadInterleavingDoesNotChangeTheBytes) {
  // Two full runs of the same 4-shard workload on parallel threads. The
  // OS is free to schedule them differently each time; each recorder is
  // thread-private and virtual-time-stamped, so the merged bytes must
  // come out identical — and identical to a serial run.
  auto run_parallel = [] {
    std::vector<sim::EventLoop> loops(4);
    std::vector<TraceRecorder> recorders;
    recorders.reserve(4);
    for (std::uint32_t s = 0; s < 4; ++s) recorders.emplace_back(loops[s]);
    std::vector<std::thread> threads;
    for (std::uint32_t s = 0; s < 4; ++s) {
      threads.emplace_back(
          [&loops, &recorders, s] { populate(loops[s], recorders[s], s); });
    }
    for (std::thread& t : threads) t.join();
    return merged(
        {&recorders[0], &recorders[1], &recorders[2], &recorders[3]});
  };
  auto run_serial = [] {
    std::vector<sim::EventLoop> loops(4);
    std::vector<TraceRecorder> recorders;
    recorders.reserve(4);
    for (std::uint32_t s = 0; s < 4; ++s) {
      recorders.emplace_back(loops[s]);
      populate(loops[s], recorders[s], s);
    }
    return merged(
        {&recorders[0], &recorders[1], &recorders[2], &recorders[3]});
  };
  const std::string parallel_a = run_parallel();
  const std::string parallel_b = run_parallel();
  const std::string serial = run_serial();
  EXPECT_EQ(parallel_a, parallel_b);
  EXPECT_EQ(parallel_a, serial);
  EXPECT_FALSE(parallel_a.empty());
}

TEST(TraceMerge, CanonicalOrderIsStartTimeThenShard) {
  sim::EventLoop loop_a;
  sim::EventLoop loop_b;
  TraceRecorder early(loop_a);
  TraceRecorder late(loop_b);
  early.set_enabled(true);
  late.set_enabled(true);
  early.set_shard(7);
  late.set_shard(2);
  // Shard 7's span starts earlier in virtual time than shard 2's: start
  // time wins over shard id in the merged order.
  early.record(1, 1, 0, "first", "", 100, 200);
  late.record(1, 1, 0, "second", "", 300, 400);
  late.record(1, 2, 0, "tied", "", 100, 150);  // same start as shard 7's
  const std::vector<Span> spans = merge_spans({&late, &early});
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].shard, 2u);  // tie on start=100: lower shard first
  EXPECT_STREQ(spans[0].name, "tied");
  EXPECT_EQ(spans[1].shard, 7u);
  EXPECT_STREQ(spans[1].name, "first");
  EXPECT_STREQ(spans[2].name, "second");
}

}  // namespace
}  // namespace maqs::trace

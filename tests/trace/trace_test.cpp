// TraceRecorder unit tests: sampling, ring eviction, scope nesting,
// error annotation, metrics sink, exports.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/event_loop.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"

namespace maqs::trace {
namespace {

TEST(TraceRecorderTest, MintAllocatesDistinctSampledTraces) {
  sim::EventLoop loop;
  TraceRecorder rec(loop);
  rec.set_enabled(true);
  const TraceContext a = rec.make_trace();
  const TraceContext b = rec.make_trace();
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(a.sampled());
  EXPECT_TRUE(b.sampled());
  EXPECT_NE(a.trace_id, b.trace_id);
  EXPECT_EQ(a.span_id, 0u);  // no parent yet
  EXPECT_EQ(rec.stats().traces_started, 2u);
  EXPECT_EQ(rec.stats().traces_sampled, 2u);
}

TEST(TraceRecorderTest, HeadSamplingEveryNth) {
  sim::EventLoop loop;
  TraceRecorder rec(loop);
  rec.set_sample_every(3);
  int sampled = 0;
  for (int i = 0; i < 9; ++i) {
    if (rec.make_trace().sampled()) ++sampled;
  }
  EXPECT_EQ(sampled, 3);
  EXPECT_EQ(rec.stats().traces_sampled, 3u);

  rec.set_sample_every(0);  // drop everything
  EXPECT_FALSE(rec.make_trace().sampled());
}

TEST(TraceRecorderTest, RingEvictsOldestFirst) {
  sim::EventLoop loop;
  TraceRecorder rec(loop, /*capacity=*/3);
  rec.set_enabled(true);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    rec.record(/*trace_id=*/i, rec.next_span_id(), 0, "s", "", 0, 0);
  }
  EXPECT_EQ(rec.span_count(), 3u);
  EXPECT_EQ(rec.stats().spans_recorded, 5u);
  EXPECT_EQ(rec.stats().spans_evicted, 2u);
  const std::vector<Span> spans = rec.spans();
  ASSERT_EQ(spans.size(), 3u);
  // Oldest-first iteration: traces 3, 4, 5 survive.
  EXPECT_EQ(spans[0].trace_id, 3u);
  EXPECT_EQ(spans[1].trace_id, 4u);
  EXPECT_EQ(spans[2].trace_id, 5u);
}

TEST(TraceRecorderTest, ZeroCapacityCountsButStoresNothing) {
  sim::EventLoop loop;
  TraceRecorder rec(loop, /*capacity=*/0);
  rec.record(1, 1, 0, "s", "", 0, 0);
  EXPECT_EQ(rec.span_count(), 0u);
  EXPECT_EQ(rec.stats().spans_recorded, 1u);
  EXPECT_EQ(rec.stats().spans_evicted, 1u);
}

TEST(SpanScopeTest, ChildScopesNestUnderRoot) {
  sim::EventLoop loop;
  TraceRecorder rec(loop);
  rec.set_enabled(true);
  const TraceContext minted = rec.make_trace();
  {
    SpanScope root(rec, minted, "root");
    ASSERT_TRUE(root.recording());
    EXPECT_TRUE(tracing_active());
    EXPECT_EQ(current_context().trace_id, minted.trace_id);
    {
      SpanScope child("child", "detail");
      SpanScope grandchild("grandchild");
      (void)grandchild;
    }
    (void)root;
  }
  EXPECT_FALSE(tracing_active());
  const std::vector<Span> spans = rec.spans();
  ASSERT_EQ(spans.size(), 3u);  // innermost closes (and records) first
  EXPECT_STREQ(spans[0].name, "grandchild");
  EXPECT_STREQ(spans[1].name, "child");
  EXPECT_STREQ(spans[2].name, "root");
  EXPECT_EQ(spans[2].parent_id, 0u);
  EXPECT_EQ(spans[1].parent_id, spans[2].span_id);
  EXPECT_EQ(spans[0].parent_id, spans[1].span_id);
  EXPECT_EQ(spans[1].detail, "detail");
  for (const Span& s : spans) EXPECT_EQ(s.trace_id, minted.trace_id);
}

TEST(SpanScopeTest, NoRecorderMeansScopesAreInert) {
  EXPECT_FALSE(tracing_active());
  SpanScope orphan("orphan");
  EXPECT_FALSE(orphan.recording());
  EXPECT_FALSE(tracing_active());
}

TEST(SpanScopeTest, DisabledRecorderOrUnsampledContextRecordsNothing) {
  sim::EventLoop loop;
  TraceRecorder rec(loop);
  // Disabled recorder: even a sampled context opens nothing.
  {
    SpanScope scope(rec, TraceContext{1, 0, kSampledFlag}, "x");
    EXPECT_FALSE(scope.recording());
  }
  rec.set_enabled(true);
  // Enabled but unsampled: the head decision is final.
  {
    SpanScope scope(rec, TraceContext{1, 0, 0}, "x");
    EXPECT_FALSE(scope.recording());
  }
  EXPECT_EQ(rec.span_count(), 0u);
}

TEST(SpanScopeTest, NoteErrorLandsOnInnermostOpenScope) {
  sim::EventLoop loop;
  TraceRecorder rec(loop);
  rec.set_enabled(true);
  {
    SpanScope root(rec, rec.make_trace(), "root");
    note_error("boom");
    (void)root;
  }
  note_error("ignored: nothing active");
  const std::vector<Span> spans = rec.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].error, "boom");
  EXPECT_EQ(rec.stats().span_errors, 1u);
}

TEST(SpanScopeTest, ErrorsThrownUnderScopeCarryTheTraceId) {
  sim::EventLoop loop;
  TraceRecorder rec(loop);
  rec.set_enabled(true);
  const TraceContext minted = rec.make_trace();
  {
    SpanScope root(rec, minted, "root");
    const Error inside("fail");
    EXPECT_EQ(inside.trace_id(), minted.trace_id);
    (void)root;
  }
  const Error outside("fail");
  EXPECT_EQ(outside.trace_id(), 0u);
}

TEST(TraceRecorderTest, MetricsSinkSeesEverySpanDuration) {
  sim::EventLoop loop;
  TraceRecorder rec(loop);
  rec.set_enabled(true);
  std::vector<std::pair<std::string, double>> samples;
  rec.set_metrics_sink(
      [&](const std::string& metric, sim::TimePoint, double millis) {
        samples.emplace_back(metric, millis);
      });
  rec.record(1, 1, 0, "stage", "", 0, 2 * sim::kMillisecond);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].first, "span.stage");
  EXPECT_DOUBLE_EQ(samples[0].second, 2.0);
}

TEST(TraceRecorderTest, ChromeExportListsEverySpan) {
  sim::EventLoop loop;
  TraceRecorder rec(loop);
  rec.set_enabled(true);
  rec.record(7, 1, 0, "alpha", "d\"etail", 1000, 2500);
  rec.record(7, 2, 1, "beta", "", 2500, 2500, "oops");
  std::ostringstream os;
  rec.export_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"beta\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\\\"etail"), std::string::npos);  // escaped quote
  EXPECT_NE(json.find("\"error\":\"oops\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":7"), std::string::npos);
}

TEST(TraceRecorderTest, TreeDumpIndentsChildrenAndSurvivesEviction) {
  sim::EventLoop loop;
  TraceRecorder rec(loop, /*capacity=*/2);
  rec.set_enabled(true);
  // Parent span gets evicted by the two children; the orphans must still
  // surface as roots instead of vanishing from the dump.
  rec.record(1, 1, 0, "parent", "", 0, 10);
  rec.record(1, 2, 1, "left", "", 1, 2);
  rec.record(1, 3, 1, "right", "", 3, 4);
  std::ostringstream os;
  rec.dump_tree(os);
  const std::string text = os.str();
  EXPECT_EQ(text.find("parent"), std::string::npos);
  EXPECT_NE(text.find("  left"), std::string::npos);
  EXPECT_NE(text.find("  right"), std::string::npos);
  EXPECT_NE(text.find("trace 1: 2 spans"), std::string::npos);
}

TEST(TraceRecorderTest, ClearDropsSpansButKeepsCounters) {
  sim::EventLoop loop;
  TraceRecorder rec(loop);
  rec.record(1, 1, 0, "s", "", 0, 0);
  rec.clear();
  EXPECT_EQ(rec.span_count(), 0u);
  EXPECT_EQ(rec.stats().spans_recorded, 1u);
}

}  // namespace
}  // namespace maqs::trace

// Compression characteristic at both integration layers (Fig. 1).
#include "characteristics/compression.hpp"

#include <gtest/gtest.h>

#include "core/negotiation.hpp"
#include "net/network.hpp"
#include "support/qos_echo.hpp"

namespace maqs::characteristics {
namespace {

using core::Agreement;
using maqs::testing::EchoStub;
using maqs::testing::QosEchoImpl;

class CompressionTest : public ::testing::Test {
 protected:
  CompressionTest()
      : net_(loop_),
        server_(net_, "server", 9000),
        client_(net_, "client", 9001),
        server_transport_(server_),
        client_transport_(client_) {
    servant_ = std::make_shared<QosEchoImpl>();
    servant_->assign_characteristic(compression_descriptor());
    orb::QosProfile profile;
    profile.characteristic = compression_name();
    ref_ = server_.adapter().activate("echo-1", servant_, {profile});
    resources_.declare("cpu", 1000.0);
    resources_.declare("bandwidth", 1000.0);
  }

  util::Bytes compressible(std::size_t n) const {
    util::Bytes data;
    const std::string phrase = "stock-quote update symbol=ACME ";
    while (data.size() < n) {
      for (char c : phrase) {
        if (data.size() >= n) break;
        data.push_back(static_cast<std::uint8_t>(c));
      }
    }
    return data;
  }

  sim::EventLoop loop_;
  net::Network net_;
  orb::Orb server_;
  orb::Orb client_;
  core::QosTransport server_transport_;
  core::QosTransport client_transport_;
  core::ResourceManager resources_;
  std::shared_ptr<QosEchoImpl> servant_;
  orb::ObjRef ref_;
};

TEST_F(CompressionTest, ApplicationCenteredRoundTrip) {
  core::ProviderRegistry providers;
  providers.add(make_compression_provider());
  core::NegotiationService negotiation(server_transport_, providers,
                                       resources_);
  core::Negotiator negotiator(client_transport_, providers);
  EchoStub stub(client_, ref_);
  negotiator.negotiate(stub, compression_name(), {});

  const util::Bytes payload = compressible(20000);
  EXPECT_EQ(stub.blob(payload), payload);
  EXPECT_EQ(stub.echo("small"), "small");
  EXPECT_EQ(stub.add(1, 2), 3);
}

TEST_F(CompressionTest, ApplicationCenteredSavesWireBytes) {
  core::ProviderRegistry providers;
  providers.add(make_compression_provider());
  core::NegotiationService negotiation(server_transport_, providers,
                                       resources_);
  core::Negotiator negotiator(client_transport_, providers);
  const util::Bytes payload = compressible(50000);

  EchoStub plain_stub(client_, ref_);
  plain_stub.blob(payload);
  const std::uint64_t plain_bytes = net_.bytes_between("client", "server");

  net_.reset_stats();
  EchoStub stub(client_, ref_);
  negotiator.negotiate(stub, compression_name(), {});
  stub.blob(payload);
  const std::uint64_t compressed_bytes =
      net_.bytes_between("client", "server");
  EXPECT_LT(compressed_bytes, plain_bytes / 3);
}

TEST_F(CompressionTest, MediatorReportsCompressionRatio) {
  auto mediator = std::make_shared<CompressionMediator>();
  Agreement agreement;
  agreement.characteristic = compression_name();
  agreement.params = compression_descriptor().default_params();
  mediator->bind_agreement(agreement);
  EXPECT_EQ(mediator->compression_ratio(), 1.0);

  orb::RequestMessage req;
  req.body = compressible(10000);
  orb::ObjRef target;
  mediator->outbound(req, target);
  EXPECT_LT(mediator->compression_ratio(), 0.5);
  EXPECT_EQ(
      mediator->qos_operation("qos_compression_ratio", {}).as_double(),
      mediator->compression_ratio());
  EXPECT_THROW(mediator->qos_operation("qos_nope", {}), core::QosError);
}

TEST_F(CompressionTest, SmallPayloadsShipRaw) {
  auto mediator = std::make_shared<CompressionMediator>();
  Agreement agreement;
  agreement.characteristic = compression_name();
  agreement.params = compression_descriptor().default_params();  // min 64
  mediator->bind_agreement(agreement);
  orb::RequestMessage req;
  req.body = util::to_bytes("tiny");
  orb::ObjRef target;
  mediator->outbound(req, target);
  EXPECT_EQ(req.body.size(), 5u);  // marker + 4 raw bytes
  EXPECT_EQ(req.body[0], 0x00);
}

TEST_F(CompressionTest, IncompressiblePayloadsShipRaw) {
  auto mediator = std::make_shared<CompressionMediator>();
  Agreement agreement;
  agreement.characteristic = compression_name();
  agreement.params = compression_descriptor().default_params();
  mediator->bind_agreement(agreement);
  util::Rng rng(7);
  util::Bytes noise(4096);
  for (auto& b : noise) b = static_cast<std::uint8_t>(rng.next());
  orb::RequestMessage req;
  req.body = noise;
  orb::ObjRef target;
  mediator->outbound(req, target);
  EXPECT_EQ(req.body.size(), noise.size() + 1);  // bounded expansion
}

TEST_F(CompressionTest, NetworkCenteredModuleRoundTrip) {
  core::ProviderRegistry providers;
  providers.add(make_compression_module_provider());
  core::NegotiationService negotiation(server_transport_, providers,
                                       resources_);
  core::Negotiator negotiator(client_transport_, providers);
  register_compression_module();

  EchoStub stub(client_, ref_);
  negotiator.negotiate(stub, compression_name(), {});
  EXPECT_TRUE(client_transport_.is_loaded(compression_module_name()));
  EXPECT_TRUE(server_transport_.is_loaded(compression_module_name()));

  const util::Bytes payload = compressible(20000);
  EXPECT_EQ(stub.blob(payload), payload);
  EXPECT_EQ(client_transport_.stats().requests_via_module, 1u);
}

TEST_F(CompressionTest, NetworkCenteredSavesWireBytes) {
  core::ProviderRegistry providers;
  providers.add(make_compression_module_provider());
  core::NegotiationService negotiation(server_transport_, providers,
                                       resources_);
  core::Negotiator negotiator(client_transport_, providers);
  register_compression_module();
  EchoStub stub(client_, ref_);
  negotiator.negotiate(stub, compression_name(), {});

  const util::Bytes payload = compressible(50000);
  net_.reset_stats();
  stub.blob(payload);
  EXPECT_LT(net_.bytes_between("client", "server"), payload.size() / 3);
}

TEST_F(CompressionTest, RleCodecSelectableViaParams) {
  core::ProviderRegistry providers;
  providers.add(make_compression_provider());
  core::NegotiationService negotiation(server_transport_, providers,
                                       resources_);
  core::Negotiator negotiator(client_transport_, providers);
  EchoStub stub(client_, ref_);
  negotiator.negotiate(stub, compression_name(),
                       {{"algorithm", cdr::Any::from_string("rle")}});
  const util::Bytes runs(10000, 0x7A);
  net_.reset_stats();
  EXPECT_EQ(stub.blob(runs), runs);
  EXPECT_LT(net_.bytes_between("client", "server"), 500u);
}

TEST_F(CompressionTest, ModuleCommands) {
  register_compression_module();
  auto& module = client_transport_.load_module(compression_module_name());
  module.command("set_codec", {cdr::Any::from_string("rle"),
                               cdr::Any::from_longlong(1)});
  module.command("set_min_size", {cdr::Any::from_longlong(10)});
  EXPECT_EQ(module.command("info", {}).as_string(), "rle/min=10");
  EXPECT_THROW(module.command("set_codec", {}), core::QosError);
  EXPECT_THROW(module.command("nope", {}), core::QosError);
}

TEST_F(CompressionTest, CorruptFrameRejected) {
  CompressionImpl impl;
  Agreement agreement;
  agreement.characteristic = compression_name();
  agreement.params = compression_descriptor().default_params();
  impl.bind_agreement(agreement);
  orb::RequestMessage req;
  net::Address from{"x", 1};
  orb::ServiceContext reply_ctx;
  orb::ServerContext ctx(req, from, reply_ctx);
  EXPECT_THROW(impl.transform_args({}, ctx), compress::CodecError);
  EXPECT_THROW(impl.transform_args({0x77, 1, 2}, ctx),
               compress::CodecError);
}

}  // namespace
}  // namespace maqs::characteristics

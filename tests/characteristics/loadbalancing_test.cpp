// Load-balancing characteristic: policy distribution, redirection through
// the mediator, load reporting via QoS operations.
#include "characteristics/loadbalancing.hpp"

#include <gtest/gtest.h>

#include "core/negotiation.hpp"
#include "net/network.hpp"
#include "support/qos_echo.hpp"
#include "util/strings.hpp"

namespace maqs::characteristics {
namespace {

using maqs::testing::EchoStub;
using maqs::testing::QosEchoImpl;

class LoadBalancingTest : public ::testing::Test {
 protected:
  LoadBalancingTest()
      : net_(loop_), client_(net_, "client", 1), client_transport_(client_) {}

  /// Brings up `n` workers, each with LoadBalancing assigned and the
  /// reporting impl armed.
  void start_workers(int n) {
    for (int i = 0; i < n; ++i) {
      auto orb = std::make_unique<orb::Orb>(net_, "w" + std::to_string(i),
                                            9000);
      auto servant = std::make_shared<QosEchoImpl>();
      servant->assign_characteristic(loadbalancing_descriptor());
      auto reporting = std::make_shared<LoadReportingImpl>();
      core::Agreement agreement;
      agreement.characteristic = loadbalancing_name();
      agreement.params = loadbalancing_descriptor().default_params();
      reporting->bind_agreement(agreement);
      servant->set_active_impl(reporting);
      refs_.push_back(orb->adapter().activate("worker", servant));
      workers_.push_back(std::move(orb));
      servants_.push_back(servant);
      reporting_.push_back(reporting);
    }
  }

  std::shared_ptr<LoadBalancingMediator> make_mediator(
      const std::string& policy, std::int64_t probe_interval = 16) {
    auto mediator = std::make_shared<LoadBalancingMediator>();
    mediator->attach_orb(&client_);
    std::vector<std::string> iors;
    for (const auto& ref : refs_) iors.push_back(ref.to_string());
    core::Agreement agreement;
    agreement.characteristic = loadbalancing_name();
    agreement.params = loadbalancing_descriptor().validate_params(
        {{"policy", cdr::Any::from_string(policy)},
         {"probe_interval",
          cdr::Any::from_long(static_cast<std::int32_t>(probe_interval))},
         {"replicas", cdr::Any::from_string(util::join(iors, ";"))}});
    mediator->bind_agreement(agreement);
    return mediator;
  }

  EchoStub stub_with(const std::shared_ptr<LoadBalancingMediator>& mediator) {
    EchoStub stub(client_, refs_.front());
    auto composite = std::make_shared<core::CompositeMediator>();
    composite->add(mediator);
    stub.set_mediator(composite);
    return stub;
  }

  sim::EventLoop loop_;
  net::Network net_;
  orb::Orb client_;
  core::QosTransport client_transport_;
  std::vector<std::unique_ptr<orb::Orb>> workers_;
  std::vector<std::shared_ptr<QosEchoImpl>> servants_;
  std::vector<std::shared_ptr<LoadReportingImpl>> reporting_;
  std::vector<orb::ObjRef> refs_;
};

TEST_F(LoadBalancingTest, RoundRobinSpreadsEvenly) {
  start_workers(4);
  auto mediator = make_mediator("round-robin");
  EchoStub stub = stub_with(mediator);
  for (int i = 0; i < 40; ++i) stub.echo("x");
  for (const auto& count : mediator->dispatch_counts()) {
    EXPECT_EQ(count, 10u);
  }
  // Each worker actually served its share (redirection happened).
  for (const auto& servant : servants_) {
    EXPECT_EQ(servant->calls, 10);
  }
}

TEST_F(LoadBalancingTest, RandomHitsEveryWorkerEventually) {
  start_workers(3);
  auto mediator = make_mediator("random");
  EchoStub stub = stub_with(mediator);
  for (int i = 0; i < 90; ++i) stub.echo("x");
  for (const auto& count : mediator->dispatch_counts()) {
    EXPECT_GT(count, 10u);  // roughly 30 each; 10 is a loose floor
  }
}

TEST_F(LoadBalancingTest, LeastLoadedAvoidsBusyWorker) {
  start_workers(3);
  // Worker 0 is very busy.
  reporting_[0]->add_synthetic_load(1000.0);
  auto mediator = make_mediator("least-loaded", /*probe_interval=*/8);
  EchoStub stub = stub_with(mediator);
  for (int i = 0; i < 60; ++i) stub.echo("x");
  const auto& counts = mediator->dispatch_counts();
  EXPECT_LT(counts[0], 5u);  // probes keep steering away from the busy one
  EXPECT_GT(counts[1] + counts[2], 55u);
}

TEST_F(LoadBalancingTest, QosLoadOperationReportsServerLoad) {
  start_workers(1);
  EchoStub stub(client_, refs_[0]);
  for (int i = 0; i < 5; ++i) stub.echo("warm");
  orb::RequestMessage probe;
  probe.object_key = "worker";
  probe.operation = "qos_load";
  orb::ReplyMessage rep =
      client_.invoke_plain(refs_[0].endpoint, std::move(probe));
  ASSERT_EQ(rep.status, orb::ReplyStatus::kOk);
  cdr::Decoder dec(rep.body);
  EXPECT_GT(dec.read_f64(), 0.0);
  EXPECT_EQ(reporting_[0]->served(), 5u);
}

TEST_F(LoadBalancingTest, EmptyReplicaSetKeepsOriginalTarget) {
  start_workers(1);
  auto mediator = std::make_shared<LoadBalancingMediator>();
  core::Agreement agreement;
  agreement.characteristic = loadbalancing_name();
  agreement.params = loadbalancing_descriptor().default_params();
  mediator->bind_agreement(agreement);
  EchoStub stub = stub_with(mediator);
  EXPECT_EQ(stub.echo("fallthrough"), "fallthrough");
}

TEST_F(LoadBalancingTest, UnknownPolicyRejected) {
  auto mediator = std::make_shared<LoadBalancingMediator>();
  core::Agreement agreement;
  agreement.characteristic = loadbalancing_name();
  agreement.params = loadbalancing_descriptor().validate_params(
      {{"policy", cdr::Any::from_string("chaotic")}});
  EXPECT_THROW(mediator->bind_agreement(agreement), core::QosError);
}

TEST_F(LoadBalancingTest, CrashedWorkerSteeredAroundByLeastLoaded) {
  start_workers(3);
  client_.set_default_timeout(50 * sim::kMillisecond);
  auto mediator = make_mediator("least-loaded", /*probe_interval=*/4);
  EchoStub stub = stub_with(mediator);
  net_.crash("w1");
  int failures = 0;
  for (int i = 0; i < 40; ++i) {
    try {
      stub.echo("x");
    } catch (const orb::TransportError&) {
      ++failures;  // calls routed at the dead worker before a probe ran
    }
  }
  const auto& counts = mediator->dispatch_counts();
  // After the first probe marks w1 unreachable, traffic avoids it.
  EXPECT_LT(counts[1], 8u);
  EXPECT_LT(failures, 8);
}

TEST_F(LoadBalancingTest, FullNegotiationInstallsBalancer) {
  start_workers(2);
  core::ResourceManager resources;
  resources.declare("cpu", 100.0);
  core::ProviderRegistry providers;
  providers.add(make_loadbalancing_provider());
  // Negotiation service lives on worker 0's ORB.
  core::QosTransport server_transport(*workers_[0]);
  core::NegotiationService negotiation(server_transport, providers,
                                       resources);
  core::Negotiator negotiator(client_transport_, providers);

  orb::QosProfile profile;
  profile.characteristic = loadbalancing_name();
  orb::ObjRef ref = refs_[0];
  ref.qos = {profile};
  EchoStub stub(client_, ref);
  std::vector<std::string> iors;
  for (const auto& r : refs_) iors.push_back(r.to_string());
  negotiator.negotiate(
      stub, loadbalancing_name(),
      {{"replicas", cdr::Any::from_string(util::join(iors, ";"))}});
  for (int i = 0; i < 10; ++i) stub.echo("x");
  EXPECT_EQ(servants_[0]->calls, 5);
  EXPECT_EQ(servants_[1]->calls, 5);
}

}  // namespace
}  // namespace maqs::characteristics

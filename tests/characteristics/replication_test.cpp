// Replication characteristic: k-availability under crash injection, state
// transfer to late joiners, majority voting against faulty replicas.
#include "characteristics/replication.hpp"

#include <gtest/gtest.h>

#include "core/negotiation.hpp"
#include "net/network.hpp"
#include "support/qos_echo.hpp"

namespace maqs::characteristics {
namespace {

using maqs::testing::EchoStub;
using maqs::testing::QosEchoImpl;

class ReplicationTest : public ::testing::Test {
 protected:
  ReplicationTest()
      : net_(loop_),
        client_(net_, "client", 1),
        client_transport_(client_),
        group_(net_, "grp-echo", "echo-svc") {
    register_replication_module();
  }

  /// Spins up a replica on its own host.
  std::shared_ptr<QosEchoImpl> add_replica() {
    const std::string node = "replica-" + std::to_string(replicas_.size());
    auto orb = std::make_unique<orb::Orb>(net_, node, 9000);
    auto servant = std::make_shared<QosEchoImpl>();
    servant->assign_characteristic(replication_descriptor());
    group_.add_replica(*orb, servant);
    replicas_.push_back(std::move(orb));
    servants_.push_back(servant);
    return servant;
  }

  /// Client stub wired through the replication module.
  EchoStub make_stub(const std::string& mode, int quorum) {
    orb::ObjRef ref = group_.group_reference();
    client_transport_.load_module(replication_module_name())
        .command("configure",
                 {cdr::Any::from_string(group_.group()),
                  cdr::Any::from_string(mode),
                  cdr::Any::from_longlong(quorum)});
    client_transport_.assign(group_.object_key(),
                             replication_module_name());
    return EchoStub(client_, ref);
  }

  sim::EventLoop loop_;
  net::Network net_;
  orb::Orb client_;
  core::QosTransport client_transport_;
  ReplicaGroup group_;
  std::vector<std::unique_ptr<orb::Orb>> replicas_;
  std::vector<std::shared_ptr<QosEchoImpl>> servants_;
};

TEST_F(ReplicationTest, FailoverMasksCrashes) {
  add_replica();
  add_replica();
  add_replica();
  EchoStub stub = make_stub("failover", 1);
  EXPECT_EQ(stub.echo("all up"), "all up");

  net_.crash("replica-0");
  EXPECT_EQ(stub.echo("one down"), "one down");
  net_.crash("replica-1");
  EXPECT_EQ(stub.echo("two down"), "two down");
}

TEST_F(ReplicationTest, AllReplicasDownTimesOut) {
  add_replica();
  add_replica();
  client_.set_default_timeout(100 * sim::kMillisecond);
  EchoStub stub = make_stub("failover", 1);
  net_.crash("replica-0");
  net_.crash("replica-1");
  EXPECT_THROW(stub.echo("anyone?"), orb::TransportError);
}

TEST_F(ReplicationTest, WritesReachAllReplicas) {
  auto s0 = add_replica();
  auto s1 = add_replica();
  auto s2 = add_replica();
  EchoStub stub = make_stub("failover", 1);
  stub.set_value(77);
  loop_.run_until_idle();  // let the multicast reach everyone
  EXPECT_EQ(s0->value(), 77);
  EXPECT_EQ(s1->value(), 77);
  EXPECT_EQ(s2->value(), 77);
}

TEST_F(ReplicationTest, LateJoinerReceivesStateTransfer) {
  auto s0 = add_replica();
  EchoStub stub = make_stub("failover", 1);
  stub.set_value(123);
  loop_.run_until_idle();
  // New replica joins after the write: must be initialized to the same
  // state ("new replicas need to be initialized to the same state as
  // already running replicas", §3.1).
  auto late = add_replica();
  EXPECT_EQ(late->value(), 123);
}

TEST_F(ReplicationTest, StateTransferSkipsCrashedSource) {
  auto s0 = add_replica();
  auto s1 = add_replica();
  EchoStub stub = make_stub("failover", 1);
  stub.set_value(55);
  loop_.run_until_idle();
  net_.crash("replica-0");
  // State must come from the surviving replica... replica-0 is first in
  // the member list but dead; the group helper skips it.
  auto late = add_replica();
  EXPECT_EQ(late->value(), 55);
}

TEST_F(ReplicationTest, CrashedReplicaRecoversViaStateTransfer) {
  auto s0 = add_replica();
  auto s1 = add_replica();
  EchoStub stub = make_stub("failover", 1);
  stub.set_value(10);
  loop_.run_until_idle();
  net_.crash("replica-1");
  group_.remove_replica(*replicas_[1]);
  stub.set_value(20);
  loop_.run_until_idle();
  // Recover node 1 with a fresh servant; it must pick up value 20.
  net_.restart("replica-1");
  auto recovered = std::make_shared<QosEchoImpl>();
  recovered->assign_characteristic(replication_descriptor());
  auto orb = std::make_unique<orb::Orb>(net_, "replica-1", 9001);
  group_.add_replica(*orb, recovered);
  replicas_.push_back(std::move(orb));
  EXPECT_EQ(recovered->value(), 20);
}

TEST_F(ReplicationTest, VotingReachesQuorumWithHealthyReplicas) {
  add_replica();
  add_replica();
  add_replica();
  EchoStub stub = make_stub("voting", 2);
  EXPECT_EQ(stub.add(20, 22), 42);
}

class FaultyEcho : public QosEchoImpl {
 public:
  std::int32_t add(std::int32_t a, std::int32_t b) override {
    return a + b + 1000;  // wrong result, not a crash
  }
};

TEST_F(ReplicationTest, VotingOutvotesFaultyReplica) {
  add_replica();
  add_replica();
  // Third replica returns wrong results ("diversity through majority
  // votes on results", §6).
  auto faulty = std::make_shared<FaultyEcho>();
  faulty->assign_characteristic(replication_descriptor());
  auto orb = std::make_unique<orb::Orb>(net_, "replica-faulty", 9000);
  group_.add_replica(*orb, faulty);
  replicas_.push_back(std::move(orb));

  EchoStub stub = make_stub("voting", 2);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(stub.add(i, i), 2 * i);  // the two honest replicas agree
  }
}

TEST_F(ReplicationTest, VotingWithoutQuorumFails) {
  add_replica();
  auto faulty = std::make_shared<FaultyEcho>();
  faulty->assign_characteristic(replication_descriptor());
  auto orb = std::make_unique<orb::Orb>(net_, "replica-faulty", 9000);
  group_.add_replica(*orb, faulty);
  replicas_.push_back(std::move(orb));

  client_.set_default_timeout(100 * sim::kMillisecond);
  // Quorum 2 but the two replicas disagree: no two identical replies.
  EchoStub stub = make_stub("voting", 2);
  EXPECT_THROW(stub.add(1, 1), orb::SystemException);
}

TEST_F(ReplicationTest, ModuleConfigurationValidation) {
  auto& module = client_transport_.load_module(replication_module_name());
  EXPECT_THROW(module.command("configure", {}), core::QosError);
  EXPECT_THROW(module.command("configure",
                              {cdr::Any::from_string("g"),
                               cdr::Any::from_string("bad-mode"),
                               cdr::Any::from_longlong(1)}),
               core::QosError);
  EXPECT_THROW(module.command("configure",
                              {cdr::Any::from_string("g"),
                               cdr::Any::from_string("voting"),
                               cdr::Any::from_longlong(0)}),
               core::QosError);
  module.command("configure", {cdr::Any::from_string("g"),
                               cdr::Any::from_string("voting"),
                               cdr::Any::from_longlong(3)});
  EXPECT_EQ(module.command("info", {}).as_string(), "g/voting/q=3");
}

TEST_F(ReplicationTest, UnconfiguredModuleRefusesTraffic) {
  add_replica();
  orb::ObjRef ref = group_.group_reference();
  client_transport_.assign(group_.object_key(), replication_module_name());
  EchoStub stub(client_, ref);
  EXPECT_THROW(stub.echo("x"), core::QosError);
}

TEST_F(ReplicationTest, GroupRequiresAssignedCharacteristic) {
  auto servant = std::make_shared<QosEchoImpl>();  // nothing assigned
  auto orb = std::make_unique<orb::Orb>(net_, "replica-x", 9000);
  EXPECT_THROW(group_.add_replica(*orb, servant), core::QosError);
}

TEST_F(ReplicationTest, EmptyGroupHasNoReference) {
  EXPECT_THROW(group_.group_reference(), core::QosError);
}

TEST_F(ReplicationTest, StateAspectReachableViaQosOps) {
  auto s0 = add_replica();
  s0->set_value(31);
  orb::RequestMessage req;
  req.object_key = "echo-svc";
  req.operation = "qos_get_state";
  orb::ReplyMessage rep =
      client_.invoke_plain(replicas_[0]->endpoint(), std::move(req));
  ASSERT_EQ(rep.status, orb::ReplyStatus::kOk);
  cdr::Decoder dec(rep.body);
  const util::Bytes state_bytes = dec.read_bytes();
  cdr::Decoder inner{util::BytesView(state_bytes)};
  EXPECT_EQ(inner.read_i32(), 31);
}

TEST_F(ReplicationTest, PassiveModePrimaryServesAlone) {
  auto primary = add_replica();
  auto backup_a = add_replica();
  auto backup_b = add_replica();

  // Passive (primary-backup): the request goes unicast to the reference's
  // leading profile; backups see no traffic.
  EchoStub stub = make_stub("passive", 1);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(stub.add(i, i), 2 * i);
  }
  EXPECT_EQ(primary->calls, 5);
  EXPECT_EQ(backup_a->calls, 0);
  EXPECT_EQ(backup_b->calls, 0);
}

TEST_F(ReplicationTest, GroupReferenceCarriesEveryMemberAsProfile) {
  add_replica();
  add_replica();
  add_replica();
  const orb::ObjRef ref = group_.group_reference();
  EXPECT_TRUE(ref.multi_profile());
  ASSERT_EQ(ref.profile_count(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ref.profile(i).endpoint, replicas_[i]->endpoint());
    EXPECT_EQ(ref.profile(i).object_key, group_.object_key());
  }
}

TEST_F(ReplicationTest, StateTransferAdvancesTheEpoch) {
  auto primary = add_replica();
  EchoStub seed_stub = make_stub("failover", 1);
  seed_stub.set_value(7);

  // The late joiner receives one state transfer: epoch 0 -> 1; the
  // long-running primary never received one and stays at 0. Both are
  // readable over the wire through the qos_epoch aspect op.
  add_replica();
  auto epoch_of = [&](std::size_t i) {
    orb::RequestMessage req;
    req.object_key = group_.object_key();
    req.operation = "qos_epoch";
    orb::ReplyMessage rep =
        client_.invoke_plain(replicas_[i]->endpoint(), std::move(req));
    EXPECT_EQ(rep.status, orb::ReplyStatus::kOk);
    cdr::Decoder dec(rep.body);
    const std::uint64_t epoch = dec.read_u64();
    dec.expect_end();
    return epoch;
  };
  EXPECT_EQ(epoch_of(0), 0u);
  EXPECT_EQ(epoch_of(1), 1u);
  (void)primary;
}

}  // namespace
}  // namespace maqs::characteristics

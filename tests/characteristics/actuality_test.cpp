// Actuality characteristic: freshness-bounded caching, server timestamps,
// write invalidation, traffic savings.
#include "characteristics/actuality.hpp"

#include <gtest/gtest.h>

#include "core/negotiation.hpp"
#include "net/network.hpp"
#include "support/qos_echo.hpp"

namespace maqs::characteristics {
namespace {

using maqs::testing::EchoStub;
using maqs::testing::QosEchoImpl;

class ActualityTest : public ::testing::Test {
 protected:
  ActualityTest()
      : net_(loop_),
        server_(net_, "server", 9000),
        client_(net_, "client", 9001),
        server_transport_(server_),
        client_transport_(client_) {
    servant_ = std::make_shared<QosEchoImpl>();
    servant_->assign_characteristic(actuality_descriptor());
    orb::QosProfile profile;
    profile.characteristic = actuality_name();
    ref_ = server_.adapter().activate("echo-1", servant_, {profile});
    resources_.declare("cpu", 100.0);
  }

  /// Negotiates Actuality with `value` cacheable and the given bound.
  std::pair<EchoStub, std::shared_ptr<ActualityMediator>> make_cached_stub(
      core::Negotiator& negotiator, std::int32_t max_age_ms) {
    EchoStub stub(client_, ref_);
    negotiator.negotiate(
        stub, actuality_name(),
        {{"max_age_ms", cdr::Any::from_long(max_age_ms)},
         {"cacheable_ops", cdr::Any::from_string("value,echo,blob")}});
    auto composite =
        std::dynamic_pointer_cast<core::CompositeMediator>(stub.mediator());
    auto mediator = std::dynamic_pointer_cast<ActualityMediator>(
        composite->find(actuality_name()));
    return {stub, mediator};
  }

  sim::EventLoop loop_;
  net::Network net_;
  orb::Orb server_;
  orb::Orb client_;
  core::QosTransport server_transport_;
  core::QosTransport client_transport_;
  core::ResourceManager resources_;
  std::shared_ptr<QosEchoImpl> servant_;
  orb::ObjRef ref_;
};

TEST_F(ActualityTest, FreshReadsServedFromCache) {
  core::ProviderRegistry providers;
  providers.add(make_actuality_provider());
  core::NegotiationService negotiation(server_transport_, providers,
                                       resources_);
  core::Negotiator negotiator(client_transport_, providers);
  auto [stub, mediator] = make_cached_stub(negotiator, 1000);

  stub.set_value(42);
  EXPECT_EQ(stub.value(), 42);  // miss, fills cache
  const int calls_after_fill = servant_->calls;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(stub.value(), 42);  // hits
  }
  EXPECT_EQ(servant_->calls, calls_after_fill);  // server untouched
  EXPECT_EQ(mediator->cache_hits(), 10u);
}

TEST_F(ActualityTest, StaleEntriesRefetchedAfterBound) {
  core::ProviderRegistry providers;
  providers.add(make_actuality_provider());
  core::NegotiationService negotiation(server_transport_, providers,
                                       resources_);
  core::Negotiator negotiator(client_transport_, providers);
  auto [stub, mediator] = make_cached_stub(negotiator, 100);

  stub.set_value(1);
  EXPECT_EQ(stub.value(), 1);
  const int calls_after_fill = servant_->calls;
  loop_.run_for(50 * sim::kMillisecond);
  EXPECT_EQ(stub.value(), 1);  // still fresh
  EXPECT_EQ(servant_->calls, calls_after_fill);
  loop_.run_for(200 * sim::kMillisecond);
  EXPECT_EQ(stub.value(), 1);  // stale -> refetch
  EXPECT_GT(servant_->calls, calls_after_fill);
}

TEST_F(ActualityTest, StalenessNeverExceedsBound) {
  core::ProviderRegistry providers;
  providers.add(make_actuality_provider());
  core::NegotiationService negotiation(server_transport_, providers,
                                       resources_);
  core::Negotiator negotiator(client_transport_, providers);
  const std::int32_t bound_ms = 80;
  auto [stub, mediator] = make_cached_stub(negotiator, bound_ms);
  stub.value();
  for (int i = 0; i < 50; ++i) {
    loop_.run_for(13 * sim::kMillisecond);
    stub.value();
    EXPECT_LE(mediator->last_staleness(), bound_ms * sim::kMillisecond);
  }
}

TEST_F(ActualityTest, WritesInvalidateCache) {
  core::ProviderRegistry providers;
  providers.add(make_actuality_provider());
  core::NegotiationService negotiation(server_transport_, providers,
                                       resources_);
  core::Negotiator negotiator(client_transport_, providers);
  auto [stub, mediator] = make_cached_stub(negotiator, 10000);

  stub.set_value(1);
  EXPECT_EQ(stub.value(), 1);
  stub.set_value(2);  // write through the same stub invalidates
  EXPECT_EQ(stub.value(), 2);  // must NOT serve the cached 1
}

TEST_F(ActualityTest, DistinctArgumentsCachedSeparately) {
  core::ProviderRegistry providers;
  providers.add(make_actuality_provider());
  core::NegotiationService negotiation(server_transport_, providers,
                                       resources_);
  core::Negotiator negotiator(client_transport_, providers);
  auto [stub, mediator] = make_cached_stub(negotiator, 10000);

  EXPECT_EQ(stub.echo("a"), "a");
  EXPECT_EQ(stub.echo("b"), "b");
  const int calls = servant_->calls;
  EXPECT_EQ(stub.echo("a"), "a");  // hit
  EXPECT_EQ(stub.echo("b"), "b");  // hit
  EXPECT_EQ(servant_->calls, calls);
  EXPECT_EQ(mediator->cache_misses(), 2u);
  EXPECT_EQ(mediator->cache_hits(), 2u);
}

TEST_F(ActualityTest, ServerTimestampsStampedByEpilog) {
  core::ProviderRegistry providers;
  providers.add(make_actuality_provider());
  core::NegotiationService negotiation(server_transport_, providers,
                                       resources_);
  core::Negotiator negotiator(client_transport_, providers);
  auto [stub, mediator] = make_cached_stub(negotiator, 1000);
  (void)mediator;
  // Raw request shows the timestamp context entry.
  orb::RequestMessage req;
  req.object_key = "echo-1";
  req.operation = "value";
  orb::ReplyMessage rep = client_.invoke_plain(ref_.endpoint, std::move(req));
  EXPECT_TRUE(rep.context.contains(actuality_timestamp_key()));
}

TEST_F(ActualityTest, CacheHitsSaveTraffic) {
  core::ProviderRegistry providers;
  providers.add(make_actuality_provider());
  core::NegotiationService negotiation(server_transport_, providers,
                                       resources_);
  core::Negotiator negotiator(client_transport_, providers);
  auto [stub, mediator] = make_cached_stub(negotiator, 100000);
  stub.value();
  net_.reset_stats();
  for (int i = 0; i < 100; ++i) stub.value();
  EXPECT_EQ(net_.stats().messages_sent, 0u);
}

TEST_F(ActualityTest, QosOperationReportsHits) {
  core::ProviderRegistry providers;
  providers.add(make_actuality_provider());
  core::NegotiationService negotiation(server_transport_, providers,
                                       resources_);
  core::Negotiator negotiator(client_transport_, providers);
  auto [stub, mediator] = make_cached_stub(negotiator, 10000);
  stub.value();
  stub.value();
  EXPECT_EQ(mediator->qos_operation("qos_cache_hits", {}).as_longlong(), 1);
}

TEST_F(ActualityTest, RenegotiationClearsCache) {
  core::ProviderRegistry providers;
  providers.add(make_actuality_provider());
  core::NegotiationService negotiation(server_transport_, providers,
                                       resources_);
  core::Negotiator negotiator(client_transport_, providers);
  EchoStub stub(client_, ref_);
  core::Agreement agreement = negotiator.negotiate(
      stub, actuality_name(),
      {{"max_age_ms", cdr::Any::from_long(10000)},
       {"cacheable_ops", cdr::Any::from_string("value")}});
  stub.set_value(9);
  stub.value();
  const int calls = servant_->calls;
  negotiator.renegotiate(stub, agreement,
                         {{"max_age_ms", cdr::Any::from_long(50)},
                          {"cacheable_ops", cdr::Any::from_string("value")}});
  stub.value();  // cache was cleared by rebinding
  EXPECT_GT(servant_->calls, calls);
}

}  // namespace
}  // namespace maqs::characteristics

// Encryption characteristic: DH handshake, payload confidentiality,
// on-the-fly key change, tamper detection, PSK app-layer variant.
#include "characteristics/encryption.hpp"

#include <gtest/gtest.h>

#include "core/negotiation.hpp"
#include "net/network.hpp"
#include "support/qos_echo.hpp"

namespace maqs::characteristics {
namespace {

using maqs::testing::EchoStub;
using maqs::testing::QosEchoImpl;

class EncryptionTest : public ::testing::Test {
 protected:
  EncryptionTest()
      : net_(loop_),
        server_(net_, "server", 9000),
        client_(net_, "client", 9001),
        server_transport_(server_),
        client_transport_(client_) {
    servant_ = std::make_shared<QosEchoImpl>();
    servant_->assign_characteristic(encryption_descriptor());
    orb::QosProfile profile;
    profile.characteristic = encryption_name();
    ref_ = server_.adapter().activate("echo-1", servant_, {profile});
    resources_.declare("cpu", 1000.0);
    register_encryption_module();
  }

  sim::EventLoop loop_;
  net::Network net_;
  orb::Orb server_;
  orb::Orb client_;
  core::QosTransport server_transport_;
  core::QosTransport client_transport_;
  core::ResourceManager resources_;
  std::shared_ptr<QosEchoImpl> servant_;
  orb::ObjRef ref_;
};

TEST_F(EncryptionTest, NegotiatedModuleRoundTrip) {
  core::ProviderRegistry providers;
  providers.add(make_encryption_provider());
  core::NegotiationService negotiation(server_transport_, providers,
                                       resources_);
  core::Negotiator negotiator(client_transport_, providers);
  EchoStub stub(client_, ref_);
  negotiator.negotiate(stub, encryption_name(), {});

  EXPECT_EQ(stub.echo("top secret"), "top secret");
  EXPECT_EQ(stub.add(20, 22), 42);
  EXPECT_EQ(client_transport_.stats().requests_via_module, 2u);
}

TEST_F(EncryptionTest, DhHandshakeAgreesAcrossTheWire) {
  auto& client_module = dynamic_cast<EncryptionModule&>(
      client_transport_.load_module(encryption_module_name()));
  const std::int64_t epoch =
      encryption_rotate_key(client_, client_transport_, ref_, 1, 0xAAA);
  EXPECT_EQ(epoch, 1);
  EXPECT_EQ(client_module.current_epoch(), 1);
  auto& server_module = dynamic_cast<EncryptionModule&>(
      *server_transport_.find_module(encryption_module_name()));
  EXPECT_EQ(server_module.current_epoch(), 1);

  // Same key on both sides: a frame sealed by one side opens on the other.
  orb::RequestMessage req;
  req.request_id = 99;
  req.body = util::to_bytes("probe");
  client_module.transform_request(req);
  EXPECT_NE(req.body, util::to_bytes("probe"));
  server_module.restore_request(req);
  EXPECT_EQ(req.body, util::to_bytes("probe"));
}

TEST_F(EncryptionTest, PayloadIsUnreadableOnTheWire) {
  core::ProviderRegistry providers;
  providers.add(make_encryption_provider());
  core::NegotiationService negotiation(server_transport_, providers,
                                       resources_);
  core::Negotiator negotiator(client_transport_, providers);
  EchoStub stub(client_, ref_);
  negotiator.negotiate(stub, encryption_name(), {});

  // Tap the wire by unbinding/rebinding the server endpoint with a
  // recording wrapper is intrusive; instead seal a known plaintext and
  // check the ciphertext hides it.
  auto& module = dynamic_cast<EncryptionModule&>(
      *client_transport_.find_module(encryption_module_name()));
  const std::string secret = "PIN=12345 PIN=12345 PIN=12345";
  orb::RequestMessage req;
  req.request_id = 7;
  req.body = util::to_bytes(secret);
  module.transform_request(req);
  const std::string wire = util::to_string(req.body);
  EXPECT_EQ(wire.find("PIN"), std::string::npos);
  EXPECT_EQ(wire.find("12345"), std::string::npos);
}

TEST_F(EncryptionTest, KeyChangeUnderTrafficIsSeamless) {
  core::ProviderRegistry providers;
  providers.add(make_encryption_provider());
  core::NegotiationService negotiation(server_transport_, providers,
                                       resources_);
  core::Negotiator negotiator(client_transport_, providers);
  EchoStub stub(client_, ref_);
  negotiator.negotiate(stub, encryption_name(), {});

  EXPECT_EQ(stub.echo("epoch1"), "epoch1");
  // Rotate on the fly (paper: "on the fly change of encryption keys").
  encryption_rotate_key(client_, client_transport_, ref_, 2, 0xBBB);
  EXPECT_EQ(stub.echo("epoch2"), "epoch2");
  encryption_rotate_key(client_, client_transport_, ref_, 3, 0xCCC);
  EXPECT_EQ(stub.echo("epoch3"), "epoch3");

  auto& server_module = dynamic_cast<EncryptionModule&>(
      *server_transport_.find_module(encryption_module_name()));
  EXPECT_EQ(server_module.current_epoch(), 3);
}

TEST_F(EncryptionTest, OldEpochFramesStillDecryptAfterRotation) {
  auto& client_module = dynamic_cast<EncryptionModule&>(
      client_transport_.load_module(encryption_module_name()));
  encryption_rotate_key(client_, client_transport_, ref_, 1, 0x1);
  orb::RequestMessage old_frame;
  old_frame.request_id = 5;
  old_frame.body = util::to_bytes("in flight");
  client_module.transform_request(old_frame);  // sealed under epoch 1

  encryption_rotate_key(client_, client_transport_, ref_, 2, 0x2);
  auto& server_module = dynamic_cast<EncryptionModule&>(
      *server_transport_.find_module(encryption_module_name()));
  // The old frame carries its epoch and still opens.
  server_module.restore_request(old_frame);
  EXPECT_EQ(old_frame.body, util::to_bytes("in flight"));
}

TEST_F(EncryptionTest, TamperingDetectedByIntegrityTag) {
  auto& client_module = dynamic_cast<EncryptionModule&>(
      client_transport_.load_module(encryption_module_name()));
  encryption_rotate_key(client_, client_transport_, ref_, 1, 0x9);
  orb::RequestMessage req;
  req.request_id = 11;
  req.body = util::to_bytes("transfer 100");
  client_module.transform_request(req);
  req.body[req.body.size() - 1] ^= 0x01;  // flip one ciphertext bit
  auto& server_module = dynamic_cast<EncryptionModule&>(
      *server_transport_.find_module(encryption_module_name()));
  EXPECT_THROW(server_module.restore_request(req), core::QosError);
}

TEST_F(EncryptionTest, TrafficWithoutKeyRefused) {
  auto& module = dynamic_cast<EncryptionModule&>(
      client_transport_.load_module(encryption_module_name()));
  orb::RequestMessage req;
  req.request_id = 1;
  req.body = util::to_bytes("x");
  EXPECT_THROW(module.transform_request(req), core::QosError);
}

TEST_F(EncryptionTest, UnknownEpochRefused) {
  auto& module = dynamic_cast<EncryptionModule&>(
      client_transport_.load_module(encryption_module_name()));
  module.install_key(1, util::to_bytes("k"));
  EXPECT_THROW(module.set_current_epoch(9), core::QosError);
}

TEST_F(EncryptionTest, ModuleCommandsValidation) {
  auto& module = client_transport_.load_module(encryption_module_name());
  EXPECT_THROW(module.command("dh_exchange", {}), core::QosError);
  EXPECT_THROW(module.command("set_epoch", {}), core::QosError);
  EXPECT_THROW(module.command("unknown", {}), core::QosError);
  EXPECT_EQ(module.command("current_epoch", {}).as_longlong(), -1);
}

TEST_F(EncryptionTest, PskVariantWeavesAtApplicationLayer) {
  core::ProviderRegistry providers;
  providers.add(make_encryption_psk_provider());
  core::NegotiationService negotiation(server_transport_, providers,
                                       resources_);
  core::Negotiator negotiator(client_transport_, providers);
  EchoStub stub(client_, ref_);
  negotiator.negotiate(
      stub, encryption_name(),
      {{"psk", cdr::Any::from_string("shared-secret-42")}});

  EXPECT_EQ(stub.echo("psk secret"), "psk secret");
  EXPECT_EQ(stub.add(3, 4), 7);
  // No transport module involved: pure app-layer weaving.
  EXPECT_EQ(client_transport_.stats().requests_via_module, 0u);
  EXPECT_EQ(client_transport_.stats().requests_fallback_plain, 2u);
}

TEST_F(EncryptionTest, PskMismatchFailsClosed) {
  // Client and server bound to different secrets: traffic must not pass.
  auto mediator = std::make_shared<EncryptionMediator>();
  core::Agreement client_side;
  client_side.characteristic = encryption_name();
  client_side.params = encryption_descriptor().validate_params(
      {{"psk", cdr::Any::from_string("alpha")}});
  mediator->bind_agreement(client_side);

  auto impl = std::make_shared<EncryptionImpl>();
  core::Agreement server_side = client_side;
  server_side.params = encryption_descriptor().validate_params(
      {{"psk", cdr::Any::from_string("beta")}});
  impl->bind_agreement(server_side);
  servant_->set_active_impl(impl);

  EchoStub stub(client_, ref_);
  auto composite = std::make_shared<core::CompositeMediator>();
  composite->add(mediator);
  stub.set_mediator(composite);
  EXPECT_THROW(stub.echo("x"), orb::SystemException);
}

}  // namespace
}  // namespace maqs::characteristics

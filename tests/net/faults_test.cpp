// Fault-injection semantics: crashes, restarts (incarnations), partitions.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "util/bytes.hpp"

namespace maqs::net {
namespace {

using util::Bytes;
using util::to_bytes;

class FaultsTest : public ::testing::Test {
 protected:
  FaultsTest() : net_(loop_) {
    net_.add_node("a");
    net_.add_node("b");
    net_.bind({"b", 1}, [this](const Address&, const Bytes&) { ++b_got_; });
  }

  sim::EventLoop loop_;
  Network net_;
  int b_got_ = 0;
};

TEST_F(FaultsTest, CrashedNodeReceivesNothing) {
  net_.crash("b");
  net_.send({"a", 1}, {"b", 1}, to_bytes("x"));
  loop_.run_until_idle();
  EXPECT_EQ(b_got_, 0);
  EXPECT_EQ(net_.stats().messages_dropped, 1u);
}

TEST_F(FaultsTest, CrashedNodeCannotSend) {
  net_.crash("a");
  net_.send({"a", 1}, {"b", 1}, to_bytes("x"));
  loop_.run_until_idle();
  EXPECT_EQ(b_got_, 0);
}

TEST_F(FaultsTest, InFlightMessageToCrashingNodeIsLost) {
  net_.set_link("a", "b", LinkParams{.latency = 10 * sim::kMillisecond,
                                     .bandwidth_bps = 0});
  net_.send({"a", 1}, {"b", 1}, to_bytes("x"));
  // Crash while the message is in flight.
  loop_.schedule(5 * sim::kMillisecond, [this] { net_.crash("b"); });
  loop_.run_until_idle();
  EXPECT_EQ(b_got_, 0);
}

TEST_F(FaultsTest, MessageSentBeforeRestartIsNotDeliveredAfter) {
  net_.set_link("a", "b", LinkParams{.latency = 10 * sim::kMillisecond,
                                     .bandwidth_bps = 0});
  net_.crash("b");
  net_.send({"a", 1}, {"b", 1}, to_bytes("x"));  // to dead incarnation
  loop_.schedule(2 * sim::kMillisecond, [this] { net_.restart("b"); });
  loop_.run_until_idle();
  // The restart creates a new incarnation; the old message must not leak
  // into it (connections were severed by the crash).
  EXPECT_EQ(b_got_, 0);
}

TEST_F(FaultsTest, RestartedNodeReceivesNewTraffic) {
  net_.crash("b");
  net_.restart("b");
  net_.send({"a", 1}, {"b", 1}, to_bytes("x"));
  loop_.run_until_idle();
  EXPECT_EQ(b_got_, 1);
  EXPECT_TRUE(net_.is_alive("b"));
}

TEST_F(FaultsTest, CrashIsVisibleInIsAlive) {
  EXPECT_TRUE(net_.is_alive("b"));
  net_.crash("b");
  EXPECT_FALSE(net_.is_alive("b"));
}

TEST_F(FaultsTest, CrashUnknownNodeThrows) {
  EXPECT_THROW(net_.crash("zz"), std::invalid_argument);
  EXPECT_THROW(net_.restart("zz"), std::invalid_argument);
}

TEST_F(FaultsTest, PartitionBlocksCrossTraffic) {
  net_.set_partition("a", 1);
  net_.set_partition("b", 2);
  net_.send({"a", 1}, {"b", 1}, to_bytes("x"));
  loop_.run_until_idle();
  EXPECT_EQ(b_got_, 0);
  EXPECT_EQ(net_.stats().messages_dropped, 1u);
}

TEST_F(FaultsTest, SamePartitionTrafficFlows) {
  net_.set_partition("a", 1);
  net_.set_partition("b", 1);
  net_.send({"a", 1}, {"b", 1}, to_bytes("x"));
  loop_.run_until_idle();
  EXPECT_EQ(b_got_, 1);
}

TEST_F(FaultsTest, HealPartitionsRestoresTraffic) {
  net_.set_partition("a", 1);
  net_.set_partition("b", 2);
  net_.heal_partitions();
  net_.send({"a", 1}, {"b", 1}, to_bytes("x"));
  loop_.run_until_idle();
  EXPECT_EQ(b_got_, 1);
}

TEST_F(FaultsTest, PartitionCheckedAtDeliveryTime) {
  net_.set_link("a", "b", LinkParams{.latency = 10 * sim::kMillisecond,
                                     .bandwidth_bps = 0});
  net_.send({"a", 1}, {"b", 1}, to_bytes("x"));
  // Partition forms while the message is in flight: it is lost.
  loop_.schedule(5 * sim::kMillisecond, [this] {
    net_.set_partition("b", 7);
  });
  loop_.run_until_idle();
  EXPECT_EQ(b_got_, 0);
}

}  // namespace
}  // namespace maqs::net

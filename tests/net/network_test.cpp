#include "net/network.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace maqs::net {
namespace {

using util::Bytes;
using util::to_bytes;
using util::to_string;

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(loop_) {
    net_.add_node("a");
    net_.add_node("b");
    net_.add_node("c");
  }

  sim::EventLoop loop_;
  Network net_;
};

TEST_F(NetworkTest, DeliversWithLinkLatency) {
  std::string got;
  sim::TimePoint at = -1;
  net_.bind({"b", 1}, [&](const Address& from, const Bytes& payload) {
    EXPECT_EQ(from, (Address{"a", 1}));
    got = to_string(payload);
    at = loop_.now();
  });
  net_.set_link("a", "b", LinkParams{.latency = 5 * sim::kMillisecond,
                                     .bandwidth_bps = 0});
  net_.send({"a", 1}, {"b", 1}, to_bytes("ping"));
  loop_.run_until_idle();
  EXPECT_EQ(got, "ping");
  EXPECT_EQ(at, 5 * sim::kMillisecond);
}

TEST_F(NetworkTest, BandwidthAddsSerializationDelay) {
  // 1000 bytes at 8000 bit/s = 1 s transmit, plus 1 ms default latency.
  net_.set_link("a", "b",
                LinkParams{.latency = sim::kMillisecond,
                           .bandwidth_bps = 8000.0});
  sim::TimePoint at = -1;
  net_.bind({"b", 1}, [&](const Address&, const Bytes&) { at = loop_.now(); });
  net_.send({"a", 1}, {"b", 1}, Bytes(1000, 0x55));
  loop_.run_until_idle();
  EXPECT_EQ(at, sim::kSecond + sim::kMillisecond);
}

TEST_F(NetworkTest, BackToBackMessagesQueueOnLink) {
  net_.set_link("a", "b",
                LinkParams{.latency = 0, .bandwidth_bps = 8000.0});
  std::vector<sim::TimePoint> arrivals;
  net_.bind({"b", 1}, [&](const Address&, const Bytes&) {
    arrivals.push_back(loop_.now());
  });
  // Two 1000-byte messages: second must wait for the first's transmission.
  net_.send({"a", 1}, {"b", 1}, Bytes(1000, 1));
  net_.send({"a", 1}, {"b", 1}, Bytes(1000, 2));
  loop_.run_until_idle();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], sim::kSecond);
  EXPECT_EQ(arrivals[1], 2 * sim::kSecond);
}

TEST_F(NetworkTest, ReverseDirectionDoesNotQueueBehindForward) {
  net_.set_link("a", "b",
                LinkParams{.latency = 0, .bandwidth_bps = 8000.0});
  net_.bind({"b", 1}, [](const Address&, const Bytes&) {});
  sim::TimePoint reverse_at = -1;
  net_.bind({"a", 1},
            [&](const Address&, const Bytes&) { reverse_at = loop_.now(); });
  net_.send({"a", 1}, {"b", 1}, Bytes(1000, 1));  // occupies a->b for 1 s
  net_.send({"b", 1}, {"a", 1}, Bytes(1000, 2));  // b->a is independent
  loop_.run_until_idle();
  EXPECT_EQ(reverse_at, sim::kSecond);
}

TEST_F(NetworkTest, LoopbackIsFast) {
  sim::TimePoint at = -1;
  net_.bind({"a", 2}, [&](const Address&, const Bytes&) { at = loop_.now(); });
  net_.send({"a", 1}, {"a", 2}, to_bytes("x"));
  loop_.run_until_idle();
  EXPECT_EQ(at, 10 * sim::kMicrosecond);
}

TEST_F(NetworkTest, UnboundDestinationCountsAsDropped) {
  net_.send({"a", 1}, {"b", 9}, to_bytes("x"));
  loop_.run_until_idle();
  EXPECT_EQ(net_.stats().messages_dropped, 1u);
  EXPECT_EQ(net_.stats().messages_delivered, 0u);
}

TEST_F(NetworkTest, SendToUnknownNodeThrows) {
  EXPECT_THROW(net_.send({"a", 1}, {"zz", 1}, to_bytes("x")),
               std::invalid_argument);
}

TEST_F(NetworkTest, DoubleBindThrows) {
  net_.bind({"a", 1}, [](const Address&, const Bytes&) {});
  EXPECT_THROW(net_.bind({"a", 1}, [](const Address&, const Bytes&) {}),
               std::invalid_argument);
}

TEST_F(NetworkTest, UnbindAllowsRebind) {
  net_.bind({"a", 1}, [](const Address&, const Bytes&) {});
  net_.unbind({"a", 1});
  EXPECT_FALSE(net_.is_bound({"a", 1}));
  net_.bind({"a", 1}, [](const Address&, const Bytes&) {});
  EXPECT_TRUE(net_.is_bound({"a", 1}));
}

TEST_F(NetworkTest, LossAddsRetransmissionDelayButDelivers) {
  net_.set_link("a", "b",
                LinkParams{.latency = sim::kMillisecond,
                           .bandwidth_bps = 0,
                           .loss_rate = 0.5});
  int delivered = 0;
  net_.bind({"b", 1},
            [&](const Address&, const Bytes&) { ++delivered; });
  for (int i = 0; i < 200; ++i) {
    net_.send({"a", 1}, {"b", 1}, to_bytes("m"));
  }
  loop_.run_until_idle();
  // Reliable transport: everything arrives (loss only costs time) except
  // pathological 16-in-a-row loss streaks, which are vanishingly rare.
  EXPECT_GE(delivered, 199);
  EXPECT_GT(net_.stats().retransmissions, 50u);
}

TEST_F(NetworkTest, JitterVariesDelivery) {
  net_.set_link("a", "b",
                LinkParams{.latency = sim::kMillisecond,
                           .bandwidth_bps = 0,
                           .jitter = sim::kMillisecond});
  std::vector<sim::TimePoint> arrivals;
  net_.bind({"b", 1}, [&](const Address&, const Bytes&) {
    arrivals.push_back(loop_.now());
  });
  sim::TimePoint send_at = 0;
  for (int i = 0; i < 50; ++i) {
    loop_.schedule_at(send_at, [&] {
      net_.send({"a", 1}, {"b", 1}, to_bytes("m"));
    });
    send_at += 10 * sim::kMillisecond;
  }
  loop_.run_until_idle();
  ASSERT_EQ(arrivals.size(), 50u);
  bool varied = false;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const sim::Duration delay =
        arrivals[i] - static_cast<sim::TimePoint>(i) * 10 * sim::kMillisecond;
    EXPECT_GE(delay, sim::kMillisecond);
    EXPECT_LE(delay, 2 * sim::kMillisecond);
    if (delay != sim::kMillisecond) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST_F(NetworkTest, StatsCountBytes) {
  net_.bind({"b", 1}, [](const Address&, const Bytes&) {});
  net_.send({"a", 1}, {"b", 1}, Bytes(100, 0));
  net_.send({"a", 1}, {"b", 1}, Bytes(50, 0));
  loop_.run_until_idle();
  EXPECT_EQ(net_.stats().messages_sent, 2u);
  EXPECT_EQ(net_.stats().bytes_sent, 150u);
  EXPECT_EQ(net_.stats().bytes_delivered, 150u);
  EXPECT_EQ(net_.bytes_between("a", "b"), 150u);
  EXPECT_EQ(net_.bytes_between("b", "a"), 0u);
}

TEST_F(NetworkTest, ResetStatsClearsCounters) {
  net_.bind({"b", 1}, [](const Address&, const Bytes&) {});
  net_.send({"a", 1}, {"b", 1}, Bytes(100, 0));
  loop_.run_until_idle();
  net_.reset_stats();
  EXPECT_EQ(net_.stats().messages_sent, 0u);
  EXPECT_EQ(net_.bytes_between("a", "b"), 0u);
}

TEST_F(NetworkTest, MulticastReachesAllMembersExceptSender) {
  net_.create_group("grp");
  int a_got = 0, b_got = 0, c_got = 0;
  net_.bind({"a", 1}, [&](const Address&, const Bytes&) { ++a_got; });
  net_.bind({"b", 1}, [&](const Address&, const Bytes&) { ++b_got; });
  net_.bind({"c", 1}, [&](const Address&, const Bytes&) { ++c_got; });
  net_.join_group("grp", {"a", 1});
  net_.join_group("grp", {"b", 1});
  net_.join_group("grp", {"c", 1});
  net_.multicast({"a", 1}, "grp", to_bytes("hello"));
  loop_.run_until_idle();
  EXPECT_EQ(a_got, 0);
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(c_got, 1);
}

TEST_F(NetworkTest, MulticastJoinIsIdempotent) {
  net_.create_group("grp");
  net_.join_group("grp", {"b", 1});
  net_.join_group("grp", {"b", 1});
  EXPECT_EQ(net_.group_members("grp").size(), 1u);
}

TEST_F(NetworkTest, LeaveGroupStopsDelivery) {
  net_.create_group("grp");
  int b_got = 0;
  net_.bind({"b", 1}, [&](const Address&, const Bytes&) { ++b_got; });
  net_.join_group("grp", {"b", 1});
  net_.leave_group("grp", {"b", 1});
  net_.multicast({"a", 1}, "grp", to_bytes("x"));
  loop_.run_until_idle();
  EXPECT_EQ(b_got, 0);
}

TEST_F(NetworkTest, MulticastToUnknownGroupIsNoop) {
  net_.multicast({"a", 1}, "nope", to_bytes("x"));
  loop_.run_until_idle();
  EXPECT_EQ(net_.stats().messages_sent, 0u);
}

}  // namespace
}  // namespace maqs::net

// ServiceDirectory: membership, lease expiry, epoch-ordered lookups, and
// the wire protocol through DirectoryClient/HeartbeatAgent.
#include <gtest/gtest.h>

#include "naming/directory.hpp"
#include "naming/directory_client.hpp"
#include "support/replica_world.hpp"

namespace maqs::testing {
namespace {

orb::AltProfile profile_of(const std::string& node, std::uint16_t port,
                           const std::string& key) {
  return orb::AltProfile{net::Address{node, port}, key};
}

TEST(DirectoryTest, RegisterLookupRoundTrip) {
  sim::EventLoop loop;
  naming::ServiceDirectory directory(loop);
  directory.register_member("svc", "IDL:test/Echo:1.0",
                            profile_of("a", 9000, "echo-a"), 0.5, 3);
  directory.register_member("svc", "IDL:test/Echo:1.0",
                            profile_of("b", 9000, "echo-b"), 0.1, 7);

  const orb::ObjRef ref = directory.lookup("svc");
  ASSERT_FALSE(ref.is_nil());
  EXPECT_EQ(ref.repo_id, "IDL:test/Echo:1.0");
  EXPECT_EQ(ref.profile_count(), 2u);
  // Highest epoch leads: b (epoch 7) is the primary.
  EXPECT_EQ(ref.object_key, "echo-b");
  EXPECT_EQ(ref.endpoint.node, "b");
  EXPECT_EQ(ref.profile(1).object_key, "echo-a");
  EXPECT_EQ(directory.member_count("svc"), 2u);
}

TEST(DirectoryTest, UnknownServiceLooksUpNil) {
  sim::EventLoop loop;
  naming::ServiceDirectory directory(loop);
  EXPECT_TRUE(directory.lookup("nope").is_nil());
  EXPECT_EQ(directory.member_count("nope"), 0u);
}

TEST(DirectoryTest, MissedHeartbeatsExpireTheLease) {
  sim::EventLoop loop;
  naming::DirectoryConfig config;
  config.member_ttl = 100 * sim::kMillisecond;
  naming::ServiceDirectory directory(loop, config);
  directory.register_member("svc", "r", profile_of("a", 9000, "k-a"), 0, 0);
  directory.register_member("svc", "r", profile_of("b", 9000, "k-b"), 0, 0);

  // One member keeps beating, the other goes silent.
  loop.run_for(60 * sim::kMillisecond);
  EXPECT_TRUE(directory.heartbeat("svc", profile_of("a", 9000, "k-a"), 0, 0));
  loop.run_for(60 * sim::kMillisecond);

  EXPECT_EQ(directory.member_count("svc"), 1u);
  EXPECT_EQ(directory.lookup("svc").object_key, "k-a");
  EXPECT_EQ(directory.stats().expirations, 1u);
}

TEST(DirectoryTest, HeartbeatForExpiredMemberAsksForReRegister) {
  sim::EventLoop loop;
  naming::DirectoryConfig config;
  config.member_ttl = 50 * sim::kMillisecond;
  naming::ServiceDirectory directory(loop, config);
  directory.register_member("svc", "r", profile_of("a", 9000, "k"), 0, 0);
  loop.run_for(100 * sim::kMillisecond);
  EXPECT_FALSE(directory.heartbeat("svc", profile_of("a", 9000, "k"), 0, 0));
  EXPECT_EQ(directory.stats().unknown_heartbeats, 1u);
}

TEST(DirectoryTest, DeregisterRemovesTheMember) {
  sim::EventLoop loop;
  naming::ServiceDirectory directory(loop);
  directory.register_member("svc", "r", profile_of("a", 9000, "k-a"), 0, 0);
  directory.register_member("svc", "r", profile_of("b", 9000, "k-b"), 0, 0);
  directory.deregister("svc", profile_of("a", 9000, "k-a"));
  EXPECT_EQ(directory.member_count("svc"), 1u);
  EXPECT_EQ(directory.lookup("svc").object_key, "k-b");
}

TEST(DirectoryTest, WireLookupCarriesLoadsAndEpochs) {
  ReplicaWorld world(3);
  world.register_all();
  world.directory->heartbeat(
      kReplicaService,
      orb::AltProfile{world.replicas[1].orb->endpoint(), "echo-2"}, 0.75, 9);

  std::optional<naming::ServiceView> view =
      world.directory_client.lookup(kReplicaService);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->ref.profile_count(), 3u);
  // echo-2 beat with epoch 9: it leads as primary, its load rides along.
  EXPECT_EQ(view->ref.object_key, "echo-2");
  ASSERT_EQ(view->loads.size(), 3u);
  EXPECT_DOUBLE_EQ(view->loads[0], 0.75);
  EXPECT_EQ(view->epochs[0], 9u);
}

TEST(DirectoryTest, HeartbeatAgentKeepsLeaseAliveAndReRegistersAfterExpiry) {
  ReplicaWorld world(1);
  naming::DirectoryConfig ttl;
  ttl.member_ttl = 120 * sim::kMillisecond;
  world.directory->set_config(ttl);

  world.start_heartbeats(50 * sim::kMillisecond);
  world.loop.run_for(10 * sim::kMillisecond);
  EXPECT_EQ(world.directory->member_count(kReplicaService), 1u);

  // Beats every 50ms against a 120ms TTL: the lease never lapses.
  world.loop.run_for(400 * sim::kMillisecond);
  EXPECT_EQ(world.directory->member_count(kReplicaService), 1u);

  // Crash long enough for the lease to expire, then restart: the next
  // beat is answered "unknown" and the agent re-registers.
  world.net.crash("server-1");
  world.loop.run_for(200 * sim::kMillisecond);
  EXPECT_EQ(world.directory->member_count(kReplicaService), 0u);
  world.net.restart("server-1");
  world.loop.run_for(150 * sim::kMillisecond);
  EXPECT_EQ(world.directory->member_count(kReplicaService), 1u);
  EXPECT_GE(world.replicas[0].agent->stats().reregisters, 1u);
}

TEST(DirectoryTest, UnknownOperationIsBadOperation) {
  ReplicaWorld world(1);
  orb::RequestMessage req;
  req.object_key = naming::directory_object_key();
  req.operation = "gossip";
  const orb::ReplyMessage rep =
      world.client.invoke_plain(world.registry.endpoint(), std::move(req));
  EXPECT_EQ(rep.status, orb::ReplyStatus::kBadOperation);
}

}  // namespace
}  // namespace maqs::testing

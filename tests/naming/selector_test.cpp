// ReplicaSelector: per-invocation profile choice (round-robin,
// least-loaded, locality), breaker-aware skipping, and transparent
// failover on synthesized faults.
#include <gtest/gtest.h>

#include "support/replica_world.hpp"
#include "trace/trace.hpp"

namespace maqs::testing {
namespace {

TEST(SelectorTest, RoundRobinSpreadsInvocationsEvenly) {
  ReplicaWorld world(3);
  world.register_all();
  const orb::ObjRef ref = world.lookup();
  ASSERT_EQ(ref.profile_count(), 3u);

  EchoStub stub(world.client, ref);
  for (int i = 0; i < 30; ++i) {
    ASSERT_EQ(stub.echo("m"), "m");
    world.loop.run_until_idle();
  }
  EXPECT_EQ(world.selector.stats().selections, 30u);
  for (const auto& replica : world.replicas) {
    EXPECT_EQ(replica.servant->calls, 10);
  }
}

TEST(SelectorTest, LeastLoadedPrefersTheIdleReplica) {
  naming::SelectorConfig config;
  config.policy = naming::SelectPolicy::kLeastLoaded;
  ReplicaWorld world(3, chaos_seed(), config);
  world.register_all();
  const orb::ObjRef ref = world.lookup();

  // Skewed load reports: replica 3 (index 2) is idle.
  world.selector.update_loads(ref.object_key, {5.0, 3.0, 0.0});
  EchoStub stub(world.client, ref);
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(stub.echo("m"), "m");
    world.loop.run_until_idle();
  }
  EXPECT_EQ(world.replicas[2].servant->calls, 10);
  EXPECT_EQ(world.replicas[0].servant->calls, 0);
}

TEST(SelectorTest, LocalityPrefersTheCallersNode) {
  naming::SelectorConfig config;
  config.policy = naming::SelectPolicy::kLocality;
  ReplicaWorld world(2, chaos_seed(), config);
  world.register_all();
  // A collocated replica on the client's own node.
  orb::Orb local(world.net, "client", 9100);
  auto local_servant = std::make_shared<EchoImpl>();
  local.adapter().activate("echo-local", local_servant);
  world.directory->register_member(
      kReplicaService, local_servant->repo_id(),
      orb::AltProfile{local.endpoint(), "echo-local"}, 0.0, 0);

  const orb::ObjRef ref = world.lookup();
  ASSERT_EQ(ref.profile_count(), 3u);
  EchoStub stub(world.client, ref);
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(stub.echo("m"), "m");
    world.loop.run_until_idle();
  }
  EXPECT_EQ(local_servant->calls, 6);
  EXPECT_EQ(world.replicas[0].servant->calls, 0);
  EXPECT_EQ(world.replicas[1].servant->calls, 0);
}

TEST(SelectorTest, CircuitOpenFailsOverToNextReplicaTransparently) {
  ReplicaWorld world(2);
  world.register_all();
  const orb::ObjRef ref = world.lookup();

  world.client.set_default_timeout(5 * sim::kMillisecond);
  orb::BreakerConfig breaker;
  breaker.failure_threshold = 1;
  breaker.open_period = sim::kSecond;
  world.client.set_breaker_config(breaker);

  // The timeout on the dead replica opens its breaker, the retried
  // attempt fast-fails with CIRCUIT_OPEN, and the failover interceptor
  // re-targets the live replica — the caller never sees a fault.
  core::RetryPolicy policy = core::RetryPolicy::idempotent();
  policy.max_attempts = 2;
  policy.initial_backoff = 0;
  core::RetryGovernor governor(policy, chaos_seed());
  world.client.set_retry_advisor(&governor);

  EchoStub stub(world.client, ref);
  ASSERT_EQ(stub.echo("warm"), "warm");  // replica 1 (round-robin start)
  world.net.crash("server-1");

  // Cursor: warm advanced it to replica 2, so call 1 lands live, call 2
  // round-robins onto the dead replica 1 and fails over.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(stub.echo("x"), "x");
  }
  EXPECT_GE(world.selector.stats().failovers, 1u);
  // Once quarantined/open, selection skips the dead replica: replica 2
  // serves the whole loop.
  EXPECT_EQ(world.replicas[1].servant->calls, 4);
  EXPECT_EQ(world.client.breaker_state(world.replicas[0].orb->endpoint(),
                                       "echo-1"),
            orb::BreakerState::kOpen);
}

TEST(SelectorTest, TimeoutFailoverIsIdempotencyGated) {
  // Without the opt-in, a timeout surfaces as TransportError (the call
  // may have executed); with it, the selector re-targets.
  for (const bool idempotent : {false, true}) {
    naming::SelectorConfig config;
    config.failover_on_timeout = idempotent;
    ReplicaWorld world(2, chaos_seed(), config);
    world.register_all();
    const orb::ObjRef ref = world.lookup();
    world.client.set_default_timeout(5 * sim::kMillisecond);

    EchoStub stub(world.client, ref);
    ASSERT_EQ(stub.echo("warm"), "warm");
    // Round-robin points the next call at replica 2 — crash it.
    world.net.crash("server-2");
    if (idempotent) {
      EXPECT_EQ(stub.echo("x"), "x");
      EXPECT_EQ(world.selector.stats().failovers, 1u);
    } else {
      EXPECT_THROW(stub.echo("x"), orb::TransportError);
      EXPECT_EQ(world.selector.stats().failovers, 0u);
      EXPECT_EQ(world.selector.stats().exhausted, 0u);
    }
  }
}

TEST(SelectorTest, AllReplicasDeadExhaustsAndSurfacesTheFault) {
  naming::SelectorConfig config;
  config.failover_on_timeout = true;
  ReplicaWorld world(2, chaos_seed(), config);
  world.register_all();
  const orb::ObjRef ref = world.lookup();
  world.client.set_default_timeout(5 * sim::kMillisecond);

  EchoStub stub(world.client, ref);
  world.net.crash("server-1");
  world.net.crash("server-2");
  EXPECT_THROW(stub.echo("x"), orb::TransportError);
  EXPECT_EQ(world.selector.stats().failovers, 1u);
  EXPECT_EQ(world.selector.stats().exhausted, 1u);
}

TEST(SelectorTest, SingleProfileRefsBypassSelection) {
  ReplicaWorld world(1);
  world.register_all();
  // A direct (single-profile) reference: the selector must stay inert.
  const orb::ObjRef direct = world.replicas[0].orb->adapter().reference(
      world.replicas[0].object_key);
  ASSERT_FALSE(direct.multi_profile());
  EchoStub stub(world.client, direct);
  ASSERT_EQ(stub.echo("m"), "m");
  EXPECT_EQ(world.selector.stats().selections, 0u);
}

TEST(SelectorTest, SelectionAndFailoverEmitTraceSpans) {
  naming::SelectorConfig config;
  config.failover_on_timeout = true;
  ReplicaWorld world(2, chaos_seed(), config);
  world.register_all();
  const orb::ObjRef ref = world.lookup();
  world.client.set_default_timeout(5 * sim::kMillisecond);

  trace::TraceRecorder recorder(world.loop);
  recorder.set_enabled(true);
  world.client.set_trace_recorder(&recorder);

  EchoStub stub(world.client, ref);
  ASSERT_EQ(stub.echo("warm"), "warm");
  // Next selection lands on the (crashed) replica 2 and fails over.
  world.net.crash("server-2");
  ASSERT_EQ(stub.echo("x"), "x");

  bool saw_select = false;
  bool saw_failover = false;
  for (const trace::Span& span : recorder.spans()) {
    if (std::string_view(span.name) == "replica.select") saw_select = true;
    if (std::string_view(span.name) == "replica.failover") {
      saw_failover = true;
    }
  }
  EXPECT_TRUE(saw_select);
  EXPECT_TRUE(saw_failover);
}

}  // namespace
}  // namespace maqs::testing

#include <gtest/gtest.h>

#include <set>

#include "crypto/dh.hpp"
#include "crypto/mac.hpp"
#include "crypto/xtea.hpp"
#include "util/rng.hpp"

namespace maqs::crypto {
namespace {

using util::Bytes;

TEST(Xtea, ReferenceVector) {
  // XTEA with zero key, zero plaintext, 32 rounds:
  // well-known result DE E9 D4 D8 F7 13 1E D9 (big-endian v0,v1).
  const Key128 key{0, 0, 0, 0};
  const std::uint64_t ct = XteaCtr::encrypt_block(0, key);
  const std::uint32_t v0 = static_cast<std::uint32_t>(ct);
  const std::uint32_t v1 = static_cast<std::uint32_t>(ct >> 32);
  EXPECT_EQ(v0, 0xDEE9D4D8u);
  EXPECT_EQ(v1, 0xF7131ED9u);
}

TEST(Xtea, CtrIsInvolution) {
  const Key128 key = derive_key(util::to_bytes("secret"));
  XteaCtr ctr(key, /*nonce=*/7);
  util::Rng rng(1);
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 1000u}) {
    Bytes plain(n);
    for (auto& b : plain) b = static_cast<std::uint8_t>(rng.next());
    const Bytes cipher = ctr.apply(plain);
    EXPECT_EQ(ctr.apply(cipher), plain) << "size " << n;
    if (n >= 8) {
      EXPECT_NE(cipher, plain);
    }
  }
}

TEST(Xtea, DifferentNoncesGiveDifferentStreams) {
  const Key128 key = derive_key(util::to_bytes("secret"));
  const Bytes plain(64, 0);
  EXPECT_NE(XteaCtr(key, 1).apply(plain), XteaCtr(key, 2).apply(plain));
}

TEST(Xtea, DifferentKeysGiveDifferentStreams) {
  const Bytes plain(64, 0);
  const Key128 k1 = derive_key(util::to_bytes("a"));
  const Key128 k2 = derive_key(util::to_bytes("b"));
  EXPECT_NE(XteaCtr(k1, 1).apply(plain), XteaCtr(k2, 1).apply(plain));
}

TEST(DeriveKey, DeterministicAndSensitive) {
  EXPECT_EQ(derive_key(util::to_bytes("x")), derive_key(util::to_bytes("x")));
  EXPECT_NE(derive_key(util::to_bytes("x")), derive_key(util::to_bytes("y")));
}

TEST(Modpow, SmallKnownValues) {
  EXPECT_EQ(modpow(2, 10, 1000), 24u);  // 1024 mod 1000
  EXPECT_EQ(modpow(3, 0, 7), 1u);
  EXPECT_EQ(modpow(5, 1, 7), 5u);
  EXPECT_EQ(modpow(7, 3, 11), 343 % 11);
  EXPECT_EQ(modpow(9, 5, 1), 0u);  // degenerate modulus
}

TEST(Modpow, LargeOperandsNoOverflow) {
  const std::uint64_t p = default_group().p;
  // Fermat: g^(p-1) = 1 mod p for prime p.
  EXPECT_EQ(modpow(default_group().g, p - 1, p), 1u);
}

TEST(Dh, SharedSecretAgrees) {
  util::Rng rng(99);
  const DhGroup& group = default_group();
  for (int i = 0; i < 20; ++i) {
    DhParty alice(group, 2 + rng.next_below(group.p - 4));
    DhParty bob(group, 2 + rng.next_below(group.p - 4));
    EXPECT_EQ(alice.shared_secret(bob.public_value()),
              bob.shared_secret(alice.public_value()));
  }
}

TEST(Dh, DifferentPrivatesDisagreeWithEavesdropper) {
  const DhGroup& group = default_group();
  DhParty alice(group, 123456789);
  DhParty bob(group, 987654321);
  DhParty eve(group, 55555);
  EXPECT_NE(eve.shared_secret(bob.public_value()),
            alice.shared_secret(bob.public_value()));
}

TEST(Dh, SecretBytesFeedKeyDerivation) {
  const DhGroup& group = default_group();
  DhParty alice(group, 111), bob(group, 222);
  const Bytes sa = alice.shared_secret_bytes(bob.public_value());
  const Bytes sb = bob.shared_secret_bytes(alice.public_value());
  EXPECT_EQ(sa, sb);
  EXPECT_EQ(sa.size(), 8u);
  EXPECT_EQ(derive_key(sa), derive_key(sb));
}

TEST(Mac, DetectsTampering) {
  const Bytes data = util::to_bytes("transfer 100 to account 7");
  const std::uint64_t tag = mac64(42, data);
  EXPECT_TRUE(mac_verify(42, data, tag));
  Bytes tampered = data;
  tampered[9] = '9';
  EXPECT_FALSE(mac_verify(42, tampered, tag));
}

TEST(Mac, KeyDependent) {
  const Bytes data = util::to_bytes("hello");
  EXPECT_NE(mac64(1, data), mac64(2, data));
}

TEST(Mac, EmptyDataStillKeyed) {
  EXPECT_NE(mac64(1, Bytes{}), mac64(2, Bytes{}));
}

TEST(Xtea, BulkKeystreamMatchesScalarReference) {
  // apply() routes through the vectorized 16-block kernel (plus the wide
  // tail path); every byte must still equal the scalar CTR reference
  // built from encrypt_block. Sizes straddle the kernel's boundaries:
  // sub-block, one-block, the 32-byte tail threshold, 128-byte chunk
  // edges, and a multi-chunk payload with a ragged tail.
  const Key128 key = derive_key(util::to_bytes("kernel-parity"));
  const std::uint64_t nonce = 0x0123456789ABCDEFULL;
  util::Rng rng(7);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                        std::size_t{8}, std::size_t{31}, std::size_t{32},
                        std::size_t{33}, std::size_t{127}, std::size_t{128},
                        std::size_t{129}, std::size_t{336}, std::size_t{4096},
                        std::size_t{4097}}) {
    Bytes plain(n);
    for (auto& b : plain) b = static_cast<std::uint8_t>(rng.next());
    Bytes expected = plain;
    std::uint64_t counter = 0;
    for (std::size_t i = 0; i < expected.size(); counter++) {
      const std::uint64_t ks = XteaCtr::encrypt_block(nonce ^ counter, key);
      for (int b = 0; b < 8 && i < expected.size(); ++b, ++i) {
        expected[i] ^= static_cast<std::uint8_t>(ks >> (8 * b));
      }
    }
    EXPECT_EQ(XteaCtr(key, nonce).apply(plain), expected) << "size " << n;
  }
}

TEST(Mac, EveryBitPositionAffectsTag) {
  // Word-wide processing must not create dead bits: flipping any single
  // bit of the message — head word, middle, or zero-padded tail — changes
  // the tag.
  Bytes data(41, 0);
  util::Rng rng(11);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  const std::uint64_t tag = mac64(99, data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes flipped = data;
      flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(mac64(99, flipped), tag) << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(Mac, TrailingZerosDistinguishedByLength) {
  // The tail word is zero-padded, so only the folded length separates
  // "...x00" from its shorter prefix; every prefix of an all-zero buffer
  // must still hash differently.
  Bytes zeros(24, 0);
  std::set<std::uint64_t> tags;
  for (std::size_t n = 0; n <= zeros.size(); ++n) {
    tags.insert(mac64(5, util::BytesView(zeros.data(), n)));
  }
  EXPECT_EQ(tags.size(), zeros.size() + 1);
}

}  // namespace
}  // namespace maqs::crypto

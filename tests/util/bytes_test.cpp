#include "util/bytes.hpp"

#include <gtest/gtest.h>

namespace maqs::util {
namespace {

TEST(Bytes, StringRoundTrip) {
  const std::string s = "hello \0 world";
  EXPECT_EQ(to_string(to_bytes(s)), s);
}

TEST(Bytes, EmptyStringRoundTrip) {
  EXPECT_TRUE(to_bytes("").empty());
  EXPECT_EQ(to_string(Bytes{}), "");
}

TEST(Bytes, Append) {
  Bytes a = to_bytes("ab");
  append(a, to_bytes("cd"));
  EXPECT_EQ(to_string(a), "abcd");
}

TEST(Bytes, AppendEmpty) {
  Bytes a = to_bytes("ab");
  append(a, Bytes{});
  EXPECT_EQ(to_string(a), "ab");
}

TEST(Hex, Encode) {
  EXPECT_EQ(to_hex(Bytes{0xDE, 0xAD, 0xBE, 0xEF}), "deadbeef");
  EXPECT_EQ(to_hex(Bytes{}), "");
  EXPECT_EQ(to_hex(Bytes{0x00, 0x0F}), "000f");
}

TEST(Hex, DecodeLowerAndUpper) {
  EXPECT_EQ(from_hex("deadBEEF"), (Bytes{0xDE, 0xAD, 0xBE, 0xEF}));
  EXPECT_EQ(from_hex(""), Bytes{});
}

TEST(Hex, RoundTrip) {
  Bytes all;
  for (int i = 0; i < 256; ++i) all.push_back(static_cast<std::uint8_t>(i));
  EXPECT_EQ(from_hex(to_hex(all)), all);
}

TEST(Hex, RejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Hex, RejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
  EXPECT_THROW(from_hex("0g"), std::invalid_argument);
}

TEST(Fnv1a, KnownVector) {
  // FNV-1a("") = offset basis; FNV-1a("a") from the reference spec.
  EXPECT_EQ(fnv1a(Bytes{}), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a(to_bytes("a")), 0xaf63dc4c8601ec8cULL);
}

TEST(Fnv1a, DiffersOnContent) {
  EXPECT_NE(fnv1a(to_bytes("abc")), fnv1a(to_bytes("abd")));
}

}  // namespace
}  // namespace maqs::util

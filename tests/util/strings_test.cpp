#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace maqs::util {
namespace {

TEST(Split, Basic) {
  EXPECT_EQ(split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Split, PreservesEmptyFields) {
  EXPECT_EQ(split(",a,,b,", ','),
            (std::vector<std::string>{"", "a", "", "b", ""}));
}

TEST(Split, NoSeparator) {
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(Split, EmptyInput) {
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b", "c"}, "::"), "a::b::c");
}

TEST(Join, SingleAndEmpty) {
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({}, ","), "");
}

TEST(JoinSplit, RoundTrip) {
  const std::vector<std::string> v{"x", "", "yz", "w"};
  EXPECT_EQ(split(join(v, "|"), '|'), v);
}

TEST(Trim, Basic) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Trim, InteriorWhitespaceKept) {
  EXPECT_EQ(trim(" a b "), "a b");
}

TEST(StartsEndsWith, Basic) {
  EXPECT_TRUE(starts_with("IOR:abcd", "IOR:"));
  EXPECT_FALSE(starts_with("IO", "IOR:"));
  EXPECT_TRUE(ends_with("file.qidl", ".qidl"));
  EXPECT_FALSE(ends_with("qidl", ".qidl"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_TRUE(ends_with("x", ""));
}

}  // namespace
}  // namespace maqs::util

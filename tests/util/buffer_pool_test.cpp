#include "util/buffer_pool.hpp"

#include <gtest/gtest.h>

#include <utility>

namespace maqs::util {
namespace {

/// The pool is a process-wide singleton; every test starts it empty and
/// with zeroed counters.
class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override { BufferPool::instance().clear(); }
  void TearDown() override { BufferPool::instance().clear(); }
};

TEST_F(BufferPoolTest, RecyclesReleasedStorage) {
  BufferPool& pool = BufferPool::instance();
  Bytes a = pool.acquire(256);
  EXPECT_TRUE(a.empty());
  EXPECT_GE(a.capacity(), 256u);
  a.assign(200, 0x7E);
  const std::uint8_t* storage = a.data();

  pool.release(std::move(a));
  EXPECT_EQ(pool.pooled(), 1u);

  // A smaller request reuses the same storage, handed back cleared.
  Bytes b = pool.acquire(100);
  EXPECT_EQ(b.data(), storage);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(pool.pooled(), 0u);
  EXPECT_EQ(pool.hits(), 1u);
}

TEST_F(BufferPoolTest, MissesWhenNothingFits) {
  BufferPool& pool = BufferPool::instance();
  Bytes small = pool.acquire(128);
  pool.release(std::move(small));
  const std::uint64_t misses_before = pool.misses();

  // The pooled 128-capacity buffer cannot serve a 64K request.
  Bytes big = pool.acquire(64 * 1024);
  EXPECT_GE(big.capacity(), 64u * 1024u);
  EXPECT_EQ(pool.misses(), misses_before + 1);
  // The unusable pooled buffer stays for future smaller requests.
  EXPECT_EQ(pool.pooled(), 1u);
}

TEST_F(BufferPoolTest, TinyBuffersAreDroppedNotPooled) {
  BufferPool& pool = BufferPool::instance();
  Bytes tiny;
  tiny.reserve(16);  // below the minimum useful capacity
  pool.release(std::move(tiny));
  EXPECT_EQ(pool.pooled(), 0u);
}

TEST_F(BufferPoolTest, PoolSizeIsBounded) {
  BufferPool& pool = BufferPool::instance();
  for (int i = 0; i < 100; ++i) {
    Bytes buf;
    buf.reserve(128);
    pool.release(std::move(buf));
  }
  EXPECT_LE(pool.pooled(), 32u);
}

}  // namespace
}  // namespace maqs::util

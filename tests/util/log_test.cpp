#include "util/log.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace maqs::util {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::instance().set_sink(
        [this](LogLevel level, const std::string& message) {
          captured_.emplace_back(level, message);
        });
    saved_level_ = Logger::instance().level();
  }
  void TearDown() override {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(saved_level_);
  }

  std::vector<std::pair<LogLevel, std::string>> captured_;
  LogLevel saved_level_{};
};

TEST_F(LogTest, RespectsLevelThreshold) {
  Logger::instance().set_level(LogLevel::kWarn);
  MAQS_DEBUG() << "hidden";
  MAQS_WARN() << "shown";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "shown");
  EXPECT_EQ(captured_[0].first, LogLevel::kWarn);
}

TEST_F(LogTest, StreamsComposeValues) {
  Logger::instance().set_level(LogLevel::kInfo);
  MAQS_INFO() << "x=" << 42 << " y=" << 1.5;
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "x=42 y=1.5");
}

TEST_F(LogTest, OffSilencesEverything) {
  Logger::instance().set_level(LogLevel::kOff);
  MAQS_ERROR() << "nope";
  EXPECT_TRUE(captured_.empty());
}

TEST(LogLevelName, AllNamed) {
  EXPECT_STREQ(log_level_name(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(log_level_name(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
  EXPECT_STREQ(log_level_name(LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace maqs::util

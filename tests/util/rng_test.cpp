#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace maqs::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DiffersAcrossSeeds) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowOneIsZero) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, UniformCoversRangeInclusive) {
  Rng rng(19);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDegenerateRange) {
  Rng rng(23);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(5, 5), 5);
}

TEST(Rng, ExponentialMean) {
  Rng rng(29);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, ExponentialNonNegative) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

}  // namespace
}  // namespace maqs::util

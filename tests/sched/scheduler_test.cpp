// Unit tests for the QoS-class request scheduler: token-bucket refill on
// the virtual clock, classifier precedence, WFQ service order, and the
// scheduler's admission/park/shed/signal behavior on a live ORB pair.
#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "orb/orb.hpp"
#include "sched/classifier.hpp"
#include "sched/token_bucket.hpp"
#include "sched/wfq.hpp"
#include "support/echo.hpp"
#include "util/bytes.hpp"

namespace maqs::sched {
namespace {

// ---- token bucket ----

TEST(TokenBucket, StartsFullAndRefillsOnVirtualClock) {
  TokenBucket bucket(10.0, 5.0);  // 10 tokens per virtual second, burst 5
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(bucket.try_take(0)) << "initial burst token " << i;
  }
  EXPECT_FALSE(bucket.try_take(0));
  EXPECT_DOUBLE_EQ(bucket.available(0), 0.0);

  // Refill is a pure function of elapsed virtual time: 100ms at 10/s is
  // exactly one token, however often we ask.
  EXPECT_DOUBLE_EQ(bucket.available(100 * sim::kMillisecond), 1.0);
  EXPECT_TRUE(bucket.try_take(100 * sim::kMillisecond));
  EXPECT_FALSE(bucket.try_take(100 * sim::kMillisecond));

  // Idle forever: the balance clamps at the burst, never beyond.
  EXPECT_DOUBLE_EQ(bucket.available(100 * sim::kSecond), 5.0);
}

TEST(TokenBucket, SetRateBanksTokensAtTheOldRateFirst) {
  TokenBucket bucket(10.0, 100.0);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(bucket.try_take(0));
  }
  // One virtual second at the old 10/s banks 10 tokens before the rate
  // changes; afterwards accrual runs at 100/s.
  bucket.set_rate(100.0, sim::kSecond);
  EXPECT_DOUBLE_EQ(bucket.available(sim::kSecond), 10.0);
  EXPECT_DOUBLE_EQ(bucket.available(sim::kSecond + sim::kSecond / 2), 60.0);
}

// ---- classifier ----

TEST(Classifier, PrecedenceRules) {
  RequestClassifier classifier({"gold", "silver", kBestEffortClassName}, 2);
  EXPECT_TRUE(classifier.bind_object("obj", "silver"));
  EXPECT_TRUE(classifier.bind_module("zip", "gold"));
  EXPECT_FALSE(classifier.bind_object("x", "no-such-class"));
  EXPECT_FALSE(classifier.set_qos_default("no-such-class"));

  orb::RequestMessage req;
  req.object_key = "other";
  EXPECT_EQ(classifier.classify(req), 2u);  // rule 5: untagged -> best_effort

  req.qos_aware = true;
  EXPECT_EQ(classifier.classify(req), 2u);  // rule 4 default is best_effort
  EXPECT_TRUE(classifier.set_qos_default("silver"));
  EXPECT_EQ(classifier.classify(req), 1u);  // rule 4: configured default

  req.context.set(kModuleContextKey, util::to_bytes("zip"));
  EXPECT_EQ(classifier.classify(req), 0u);  // rule 3: module binding

  req.object_key = "obj";
  EXPECT_EQ(classifier.classify(req), 1u);  // rule 2 beats the module tag

  req.context.set(kClassContextKey, util::to_bytes("gold"));
  EXPECT_EQ(classifier.classify(req), 0u);  // rule 1: explicit class tag

  // An explicit tag naming an unknown class is ignored, not an error.
  req.context.set(kClassContextKey, util::to_bytes("bogus"));
  EXPECT_EQ(classifier.classify(req), 1u);
}

// ---- weighted fair queue ----

TEST(Wfq, ServesBackloggedClassesInWeightRatio) {
  WeightedFairQueue<int> queue({3.0, 1.0});
  for (int i = 0; i < 40; ++i) {
    queue.push(0, i, i);
    queue.push(1, i, i);
  }
  // Both classes stay backlogged for 40 pops: the 3:1 strides make the
  // service pattern g,g,g,b exactly (class 0 wins finish-tag ties).
  int served[2] = {0, 0};
  for (int i = 0; i < 40; ++i) {
    ++served[queue.pop().cls];
  }
  EXPECT_EQ(served[0], 30);
  EXPECT_EQ(served[1], 10);
}

TEST(Wfq, DeadlineOrderWithinClassAndSeqTieBreak) {
  WeightedFairQueue<std::string> queue({1.0});
  queue.push(0, 30 * sim::kMillisecond, "late");
  queue.push(0, 10 * sim::kMillisecond, "early");
  queue.push(0, 20 * sim::kMillisecond, "mid");
  queue.push(0, 20 * sim::kMillisecond, "mid2");  // same deadline, later seq
  EXPECT_EQ(queue.pop().payload, "early");
  EXPECT_EQ(queue.pop().payload, "mid");
  EXPECT_EQ(queue.pop().payload, "mid2");
  EXPECT_EQ(queue.pop().payload, "late");
  EXPECT_TRUE(queue.empty());
}

TEST(Wfq, EvictLatestDropsTheLatestDeadlineWithoutServiceCharge) {
  WeightedFairQueue<int> queue({2.0, 1.0});
  queue.push(0, 10, 1);
  queue.push(0, 30, 3);
  queue.push(0, 20, 2);
  EXPECT_FALSE(queue.evict_latest(1).has_value());  // idle class

  auto victim = queue.evict_latest(0);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->payload, 3);
  // Eviction is not a service: the remaining entries still pop in
  // deadline order, and the class kept its WFQ position.
  EXPECT_EQ(queue.pop().payload, 1);
  EXPECT_EQ(queue.pop().payload, 2);
  EXPECT_EQ(queue.size(), 0u);
}

// ---- scheduler on a live ORB pair ----

orb::RequestMessage echo_request(const std::string& payload) {
  orb::RequestMessage req;
  req.operation = "echo";
  req.object_key = "echo";
  cdr::Encoder enc;
  enc.write_string(payload);
  req.body = enc.take();
  return req;
}

struct Tally {
  int ok = 0;
  int overload = 0;
  int other = 0;
  std::vector<std::string> exceptions;

  int answered() const { return ok + overload + other; }
};

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest()
      : net_(loop_), server_(net_, "server", 9000), client_(net_, "client", 9001) {
    server_.adapter().activate("echo",
                               std::make_shared<maqs::testing::EchoImpl>());
  }

  void send(int n, Tally& tally) {
    for (int i = 0; i < n; ++i) {
      client_.send_request(server_.endpoint(), echo_request("x"),
                           [&tally](const orb::ReplyMessage& rep) {
                             if (rep.status == orb::ReplyStatus::kOk) {
                               ++tally.ok;
                             } else if (rep.exception.rfind(
                                            kOverloadException, 0) == 0) {
                               ++tally.overload;
                               tally.exceptions.push_back(rep.exception);
                             } else {
                               ++tally.other;
                               tally.exceptions.push_back(rep.exception);
                             }
                           });
    }
  }

  sim::EventLoop loop_;
  net::Network net_;
  orb::Orb server_;
  orb::Orb client_;
};

TEST_F(SchedulerTest, UnpacedIdleServerDispatchesInline) {
  RequestScheduler scheduler(server_, SchedulerConfig{});
  Tally tally;
  send(5, tally);
  loop_.run_until_idle();
  EXPECT_EQ(tally.ok, 5);
  EXPECT_EQ(scheduler.stats().dispatched_inline, 5u);
  EXPECT_EQ(scheduler.stats().parked, 0u);
  EXPECT_EQ(scheduler.stats().total_shed(), 0u);
  EXPECT_EQ(scheduler.queue_depth(), 0u);
}

TEST_F(SchedulerTest, PacedServerParksAndDrainsByVirtualTime) {
  SchedulerConfig config;
  config.service_rate_rps = 100.0;  // 10ms of virtual time per request
  RequestScheduler scheduler(server_, config);

  Tally tally;
  send(3, tally);  // a burst: one inline, two parked
  loop_.run_until_idle();

  EXPECT_EQ(tally.ok, 3);
  EXPECT_EQ(scheduler.stats().dispatched_inline, 1u);
  EXPECT_EQ(scheduler.stats().parked, 2u);
  EXPECT_EQ(scheduler.stats().dispatched_queued, 2u);
  EXPECT_EQ(scheduler.queue_depth(), 0u);
  // The two queued requests were paced 10ms apart on the virtual clock.
  EXPECT_GE(loop_.now(), 20 * sim::kMillisecond);
}

TEST_F(SchedulerTest, FullClassQueueShedsWithClassifiedOverload) {
  SchedulerConfig config;
  config.service_rate_rps = 10.0;
  ClassConfig best;
  best.name = kBestEffortClassName;
  best.queue_limit = 1;
  best.deadline_budget = sim::kSecond;
  config.classes.push_back(best);
  RequestScheduler scheduler(server_, config);

  Tally tally;
  send(4, tally);  // 1 inline, 1 parked, 2 shed
  loop_.run_until_idle();

  EXPECT_EQ(tally.ok, 2);
  EXPECT_EQ(tally.overload, 2);
  EXPECT_EQ(tally.answered(), 4);  // the overload contract: never silent
  EXPECT_EQ(scheduler.stats().shed_queue_full, 2u);
  for (const std::string& exception : tally.exceptions) {
    EXPECT_EQ(exception, "maqs/OVERLOAD: class=best_effort cause=queue_full");
  }
}

TEST_F(SchedulerTest, TokenBucketAdmissionShedsBeforeQueueing) {
  SchedulerConfig config;  // unpaced: admission is the only gate
  ClassConfig best;
  best.name = kBestEffortClassName;
  best.rate_rps = 10.0;
  best.burst = 2.0;
  config.classes.push_back(best);
  RequestScheduler scheduler(server_, config);

  Tally tally;
  send(5, tally);  // burst of 5 against 2 tokens
  loop_.run_until_idle();
  EXPECT_EQ(tally.ok, 2);
  EXPECT_EQ(tally.overload, 3);
  EXPECT_EQ(scheduler.stats().shed_no_tokens, 3u);

  // 100ms of virtual idle accrues exactly one more token.
  loop_.run_for(100 * sim::kMillisecond);
  send(2, tally);
  loop_.run_until_idle();
  EXPECT_EQ(tally.ok, 3);
  EXPECT_EQ(tally.overload, 4);
}

TEST_F(SchedulerTest, OverloadSignalsOncePerEpisodeAndReArmsAfterDrain) {
  SchedulerConfig config;
  config.service_rate_rps = 100.0;
  ClassConfig gold;
  gold.name = "gold";
  gold.weight = 2.0;
  gold.queue_limit = 1;
  gold.deadline_budget = sim::kSecond;
  config.classes.push_back(gold);
  RequestScheduler scheduler(server_, config);
  ASSERT_TRUE(scheduler.classifier().bind_object("echo", "gold"));

  std::vector<std::string> signals;
  scheduler.set_overload_handler([&signals](const std::string& cls,
                                            const std::string& object_key,
                                            const std::string& cause) {
    signals.push_back(cls + "/" + object_key + "/" + cause);
  });

  Tally tally;
  send(4, tally);  // 1 inline, 1 parked, 2 shed -> one episode, one signal
  loop_.run_until_idle();
  EXPECT_EQ(tally.overload, 2);
  ASSERT_EQ(signals.size(), 1u);
  EXPECT_EQ(signals[0], "gold/echo/queue_full");
  EXPECT_EQ(scheduler.stats().overload_signals, 1u);

  // The queue drained above, closing the episode: the next overload is a
  // fresh episode and signals exactly once more.
  send(4, tally);
  loop_.run_until_idle();
  EXPECT_EQ(signals.size(), 2u);
  EXPECT_EQ(scheduler.stats().overload_signals, 2u);
}

TEST_F(SchedulerTest, BestEffortShedsNeverSignal) {
  SchedulerConfig config;
  config.service_rate_rps = 100.0;
  ClassConfig best;
  best.name = kBestEffortClassName;
  best.queue_limit = 1;
  best.deadline_budget = sim::kSecond;
  config.classes.push_back(best);
  RequestScheduler scheduler(server_, config);

  int signals = 0;
  scheduler.set_overload_handler(
      [&signals](const std::string&, const std::string&, const std::string&) {
        ++signals;
      });

  Tally tally;
  send(6, tally);
  loop_.run_until_idle();
  EXPECT_GT(tally.overload, 0);
  EXPECT_EQ(signals, 0);
  EXPECT_EQ(scheduler.stats().overload_signals, 0u);
}

TEST_F(SchedulerTest, CommandsBypassTheQueuesEvenUnderBacklog) {
  SchedulerConfig config;
  config.service_rate_rps = 10.0;
  ClassConfig best;
  best.name = kBestEffortClassName;
  // Generous budget: at 10 rps the backlog drains over 200ms, and this
  // test is about command bypass, not deadline shedding.
  best.deadline_budget = sim::kSecond;
  config.classes.push_back(best);
  RequestScheduler scheduler(server_, config);

  Tally tally;
  send(3, tally);  // build a backlog: 1 inline, 2 parked

  // A control-plane command issued into the backlog must not queue behind
  // it (no QoS transport is installed here, so the ORB answers it with an
  // exception — the point is that the scheduler passed it through).
  orb::RequestMessage cmd;
  cmd.kind = orb::RequestKind::kCommand;
  cmd.operation = "noop";
  cmd.target_module = "maqs.test";
  int command_replies = 0;
  client_.send_request(server_.endpoint(), std::move(cmd),
                       [&command_replies](const orb::ReplyMessage& rep) {
                         ++command_replies;
                         EXPECT_NE(rep.exception.substr(0, 13),
                                   "maqs/OVERLOAD");
                       });
  loop_.run_until_idle();

  EXPECT_EQ(command_replies, 1);
  EXPECT_EQ(scheduler.stats().commands_bypassed, 1u);
  EXPECT_EQ(tally.ok, 3);
}

TEST_F(SchedulerTest, SetClassRateValidatesTheClassName) {
  RequestScheduler scheduler(server_, SchedulerConfig{});
  EXPECT_FALSE(scheduler.set_class_rate("no-such-class", 5.0));
  EXPECT_TRUE(scheduler.set_class_rate(kBestEffortClassName, 5.0));
  const auto id = scheduler.classifier().class_id(kBestEffortClassName);
  ASSERT_TRUE(id.has_value());
  EXPECT_DOUBLE_EQ(scheduler.class_config(*id).rate_rps, 5.0);
  // Rate 0 removes the gate again.
  EXPECT_TRUE(scheduler.set_class_rate(kBestEffortClassName, 0.0));
  EXPECT_DOUBLE_EQ(scheduler.class_config(*id).rate_rps, 0.0);
}

}  // namespace
}  // namespace maqs::sched

// Scheduler stress scenario (ctest label: sched-stress; run under ASan in
// the chaos CI job): a sustained 2-class overload at exactly 2x the
// server's capacity. Verifies the ISSUE's acceptance bars at scale:
//   - the high-weight class keeps at least its WFQ weight share (3 of 4)
//     of all completions,
//   - every one of the 2000 requests is answered — served or rejected
//     with a classified maqs/OVERLOAD — zero silent drops,
//   - the whole run is deterministic: a second identical run produces
//     identical counters and outcomes.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "net/network.hpp"
#include "orb/orb.hpp"
#include "sched/scheduler.hpp"
#include "support/echo.hpp"

namespace maqs::sched {
namespace {

orb::RequestMessage echo_request(const std::string& object_key) {
  orb::RequestMessage req;
  req.operation = "echo";
  req.object_key = object_key;
  cdr::Encoder enc;
  enc.write_string("stress");
  req.body = enc.take();
  return req;
}

struct Outcome {
  int gold_ok = 0;
  int gold_overload = 0;
  int best_ok = 0;
  int best_overload = 0;
  int other = 0;
  SchedStats stats;

  int answered() const {
    return gold_ok + gold_overload + best_ok + best_overload + other;
  }
};

/// One full overload run: 1000 gold + 1000 best-effort requests offered
/// over 1s of virtual time against a 1000 rps server (2x capacity).
Outcome overload_run() {
  sim::EventLoop loop;
  net::Network net(loop, /*seed=*/42);
  orb::Orb server(net, "server", 9000);
  orb::Orb client(net, "client", 9001);
  server.adapter().activate("gold-echo",
                            std::make_shared<maqs::testing::EchoImpl>());
  server.adapter().activate("plain-echo",
                            std::make_shared<maqs::testing::EchoImpl>());

  SchedulerConfig config;
  config.service_rate_rps = 1000.0;
  ClassConfig gold;
  gold.name = "gold";
  gold.weight = 3.0;
  gold.queue_limit = 2048;  // gold never overflows: its backlog peaks ~250
  gold.deadline_budget = 10 * sim::kSecond;
  config.classes.push_back(gold);
  ClassConfig best;
  best.name = kBestEffortClassName;
  best.weight = 1.0;
  best.queue_limit = 32;  // best-effort takes the shedding
  best.deadline_budget = 10 * sim::kSecond;
  config.classes.push_back(best);
  config.total_limit = 4096;
  RequestScheduler scheduler(server, config);
  EXPECT_TRUE(scheduler.classifier().bind_object("gold-echo", "gold"));

  Outcome out;
  auto fire = [&](const std::string& object_key, int* ok, int* overload) {
    client.send_request(server.endpoint(), echo_request(object_key),
                        [&out, ok, overload](const orb::ReplyMessage& rep) {
                          if (rep.status == orb::ReplyStatus::kOk) {
                            ++*ok;
                          } else if (rep.exception.rfind(kOverloadException,
                                                         0) == 0) {
                            ++*overload;
                          } else {
                            ++out.other;
                          }
                        });
  };
  for (int i = 0; i < 1000; ++i) {
    loop.schedule(i * sim::kMillisecond, [&fire, &out] {
      fire("gold-echo", &out.gold_ok, &out.gold_overload);
      fire("plain-echo", &out.best_ok, &out.best_overload);
    });
  }
  loop.run_until_idle();
  out.stats = scheduler.stats();
  return out;
}

TEST(SchedStressTest, TwoClassOverloadKeepsWeightShareAndShedsLoudly) {
  const Outcome out = overload_run();

  // Zero silent drops: all 2000 requests answered, none with anything
  // other than a success or a classified OVERLOAD.
  EXPECT_EQ(out.answered(), 2000);
  EXPECT_EQ(out.other, 0);
  EXPECT_EQ(out.stats.total_dispatched() + out.stats.total_shed(), 2000u);

  // Overload was real and best-effort bore it; gold lost nothing.
  EXPECT_GT(out.best_overload, 0);
  EXPECT_EQ(out.gold_overload, 0);
  EXPECT_EQ(out.gold_ok, 1000);

  // The weight-share bar: gold keeps >= 3/4 of all completions.
  EXPECT_GE(out.gold_ok * 4, (out.gold_ok + out.best_ok) * 3)
      << "gold=" << out.gold_ok << " best=" << out.best_ok;

  // Queues fully drained, and the per-class ledgers balance.
  for (const ClassStats& cls : out.stats.classes) {
    EXPECT_EQ(cls.arrived, cls.dispatched + cls.shed) << cls.name;
    EXPECT_EQ(cls.arrived, 1000u) << cls.name;
  }
}

TEST(SchedStressTest, OverloadRunIsDeterministic) {
  const Outcome a = overload_run();
  const Outcome b = overload_run();
  EXPECT_EQ(a.gold_ok, b.gold_ok);
  EXPECT_EQ(a.gold_overload, b.gold_overload);
  EXPECT_EQ(a.best_ok, b.best_ok);
  EXPECT_EQ(a.best_overload, b.best_overload);
  EXPECT_EQ(a.stats.dispatched_inline, b.stats.dispatched_inline);
  EXPECT_EQ(a.stats.parked, b.stats.parked);
  EXPECT_EQ(a.stats.dispatched_queued, b.stats.dispatched_queued);
  EXPECT_EQ(a.stats.shed_no_tokens, b.stats.shed_no_tokens);
  EXPECT_EQ(a.stats.shed_queue_full, b.stats.shed_queue_full);
  EXPECT_EQ(a.stats.shed_deadline, b.stats.shed_deadline);
  EXPECT_EQ(a.stats.shed_evicted, b.stats.shed_evicted);
}

}  // namespace
}  // namespace maqs::sched
